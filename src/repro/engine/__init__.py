"""repro.engine — batched parallel execution and scenario campaigns.

The referee model is embarrassingly parallel twice over: within one round
every ``Γ^l_n(i, N(i))`` call is independent, and across a study every
``(graph, protocol, seed)`` run is independent.  This package exploits
both:

* :mod:`~repro.engine.executor` — the :class:`Executor` interface with
  serial, thread-pool, and process-pool backends; plugs into
  :class:`~repro.model.referee.Referee` (``executor=``) to batch local
  calls, and into campaigns to fan out whole runs across cores;
* :mod:`~repro.engine.faults` — dropped / duplicated / bit-flipped
  messages on the node→referee link, so protocol robustness is a
  measurable scenario rather than an assumption;
* :mod:`~repro.engine.scenario` — declarative :class:`Scenario` grids
  (graph family × sizes × protocol × seeds × referee options) expanded
  into small picklable :class:`RunSpec` records, plus the worker-side
  :func:`execute_run`;
* :mod:`~repro.engine.campaign` — the :class:`Campaign` runner: grid
  expansion, content-hash result caching, durable JSONL streaming under
  ``results/`` (fsync per record), and the builtin campaigns the CLI
  exposes as ``python -m repro campaign <name>``;
* :mod:`~repro.engine.shard` — sharded, checkpointed execution: one
  campaign split across worker processes / machines / CI matrix jobs by
  deterministic content-hash assignment, an atomic checkpoint manifest,
  crash-tolerant per-shard streams with completion marks, and the
  :func:`merge_shards` step (CLI ``python -m repro merge``) that
  reassembles the canonical JSONL.  ``Campaign.run(shards=, shard_index=,
  resume=)`` / ``Session.shard(n).resume()`` are the front doors.

Reproducibility contract: every random draw anywhere in the engine comes
from a per-run ``random.Random`` seeded by the spec; the global ``random``
module is never read or written (``tests/engine/test_no_global_rng.py``
enforces this), so a campaign's JSONL is byte-stable modulo timing across
backends, machines, and worker schedules.
"""

from repro.engine.executor import (
    EXECUTOR_KINDS,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    default_jobs,
    make_executor,
)
from repro.engine.faults import FaultCounters, FaultInjector, FaultSpec
from repro.engine.scenario import (
    RunRecord,
    RunSpec,
    Scenario,
    execute_run,
    output_digest,
)
from repro.engine.campaign import (
    Campaign,
    CampaignResult,
    builtin_campaign,
    load_campaign,
)
from repro.engine.shard import (
    MANIFEST_VERSION,
    JsonlStreamWriter,
    ShardManifest,
    load_partial_records,
    manifest_path,
    merge_shards,
    shard_done_path,
    shard_of,
    shard_specs,
    shard_stream_path,
)


def __getattr__(name: str):
    # Deprecated registry-dict names (GRAPH_FAMILIES, PROTOCOL_BUILDERS,
    # BUILTIN_CAMPAIGNS) resolve lazily so `import repro` stays silent;
    # the first touch warns DeprecationWarning via the compat views.
    if name in ("GRAPH_FAMILIES", "PROTOCOL_BUILDERS"):
        from repro.engine import scenario

        return getattr(scenario, name)
    if name == "BUILTIN_CAMPAIGNS":
        from repro.engine import campaign

        return campaign.BUILTIN_CAMPAIGNS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "EXECUTOR_KINDS",
    "default_jobs",
    "make_executor",
    "FaultSpec",
    "FaultInjector",
    "FaultCounters",
    "Scenario",
    "RunSpec",
    "RunRecord",
    "execute_run",
    "output_digest",
    "Campaign",
    "CampaignResult",
    "builtin_campaign",
    "load_campaign",
    "MANIFEST_VERSION",
    "JsonlStreamWriter",
    "ShardManifest",
    "load_partial_records",
    "manifest_path",
    "merge_shards",
    "shard_done_path",
    "shard_of",
    "shard_specs",
    "shard_stream_path",
]
