"""Execution backends: batch local-phase calls, fan out whole runs.

The referee model is embarrassingly parallel at two granularities:

* **within one round** — ``Γ^l_n(i, N(i))`` is a pure function per vertex,
  so the n local calls can be evaluated in batches on any backend
  (:meth:`Executor.map_local`); the referee then re-indexes by ID exactly
  as Definition 1 prescribes, so the outcome is independent of which
  worker evaluated which batch;
* **across runs** — a campaign is a grid of independent ``(graph,
  protocol, seed)`` runs; :meth:`Executor.map` fans complete runs out to
  workers (:mod:`repro.engine.campaign` sends picklable
  :class:`~repro.engine.scenario.RunSpec` values, so process workers
  rebuild graphs locally instead of deserializing them).

Three backends share the :class:`Executor` interface:

* :class:`SerialExecutor` — plain loop; the reference semantics.  A serial
  engine run is bit-for-bit identical to ``Referee.run`` (tested).
* :class:`ThreadPoolExecutor` — threads; useful when the local/global
  functions release the GIL (numpy-heavy sketches) or for IO-bound result
  sinks, and as a sanity point between serial and processes.
* :class:`ProcessPoolExecutor` — processes; the backend that actually
  saturates cores on pure-Python protocol code.

All three preserve input order in their results, which keeps campaign
output deterministic regardless of completion order.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
from abc import ABC, abstractmethod
from array import array
from collections.abc import Callable, Iterable, Iterator, Sequence
from functools import partial
from typing import Any, TypeVar

from repro.errors import ProtocolError
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import OneRoundProtocol

try:  # stdlib, but absent on exotic platforms — fall back to pickling
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "Executor",
    "ObservedResult",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "SharedGraphRef",
    "default_jobs",
    "make_executor",
    "EXECUTOR_KINDS",
]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count when the caller does not choose: one per visible core."""
    return max(1, os.cpu_count() or 1)


def _chunk_ids(ids: Sequence[int], n_chunks: int) -> list[list[int]]:
    """Split ``ids`` into at most ``n_chunks`` contiguous, ordered batches."""
    n_chunks = max(1, min(n_chunks, len(ids)))
    size, extra = divmod(len(ids), n_chunks)
    chunks, start = [], 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(list(ids[start:end]))
        start = end
    return chunks


def _worker_tag() -> str:
    """Identify the worker a call ran on, across every backend.

    ``pid:thread-name`` distinguishes process workers (different pids),
    thread workers (same pid, different thread names), and the serial
    backend (same pid, MainThread).
    """
    return f"{os.getpid()}:{threading.current_thread().name}"


def _observed_call(fn: Callable[[T], R], item: T) -> "ObservedResult":
    """Run ``fn(item)`` and report where and for how long (picklable).

    Module-level (not a closure) so process pools can ship it; the clock
    is ``time.perf_counter`` — the same timebase as
    :data:`repro.model.referee.monotonic_clock` — measured *inside* the
    worker, so the duration is busy-time, not queue time.
    """
    t0 = time.perf_counter()
    result = fn(item)
    return ObservedResult(result, _worker_tag(), time.perf_counter() - t0)


class ObservedResult:
    """One :meth:`Executor.imap_observed` yield: result + provenance."""

    __slots__ = ("result", "worker", "seconds")

    def __init__(self, result: Any, worker: str, seconds: float) -> None:
        self.result = result
        self.worker = worker
        self.seconds = seconds

    def __iter__(self) -> Iterator[Any]:  # supports tuple unpacking
        return iter((self.result, self.worker, self.seconds))

    def __repr__(self) -> str:
        return f"ObservedResult(worker={self.worker!r}, seconds={self.seconds:.6f})"


class SharedGraphRef:
    """A pickle-free handle to a graph published in shared memory.

    The process executor's :meth:`Executor.map_local` used to pickle the
    whole :class:`LabeledGraph` into every batch — ``jobs × batches`` round
    trips through ``pickle`` for the same adjacency.  Instead the parent
    serializes the adjacency once into a ``multiprocessing.shared_memory``
    block (a flat int64 degree table followed by the concatenated,
    sorted neighbor lists — stdlib ``array``, no numpy), and batches carry
    only this tiny named handle.  Each worker attaches, rebuilds the graph
    once, and caches it by block name, so n batches cost one rebuild.

    The parent owns the block's lifetime: it unlinks after the map
    completes.  Workers copy out of the buffer before closing, so the
    cached graph never dangles into unmapped memory.
    """

    __slots__ = ("name", "n", "m", "n_neighbors")

    #: Per-worker cache of rebuilt graphs, keyed by shared-memory block
    #: name (unique per publish).  Bounded: referee rounds reuse one graph,
    #: so a worker only ever needs the most recent few.
    _CACHE: dict[str, LabeledGraph] = {}
    _CACHE_MAX = 4

    def __init__(self, name: str, n: int, m: int, n_neighbors: int) -> None:
        self.name = name
        self.n = n
        self.m = m
        self.n_neighbors = n_neighbors

    def __getstate__(self) -> tuple[str, int, int, int]:
        return (self.name, self.n, self.m, self.n_neighbors)

    def __setstate__(self, state: tuple[str, int, int, int]) -> None:
        self.name, self.n, self.m, self.n_neighbors = state

    @classmethod
    def publish(cls, g: LabeledGraph) -> "tuple[SharedGraphRef, Any]":
        """Serialize ``g`` into a fresh shared-memory block.

        Returns ``(ref, shm)``; the caller must ``shm.close()`` and
        ``shm.unlink()`` once every consumer is done.
        """
        degrees = array("q")
        neighbors = array("q")
        for v in g.vertices():
            ns = sorted(g.neighbors(v))
            degrees.append(len(ns))
            neighbors.extend(ns)
        deg_bytes = degrees.tobytes()
        nb_bytes = neighbors.tobytes()
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, len(deg_bytes) + len(nb_bytes))
        )
        shm.buf[: len(deg_bytes)] = deg_bytes
        shm.buf[len(deg_bytes): len(deg_bytes) + len(nb_bytes)] = nb_bytes
        return cls(shm.name, g.n, g.m, len(neighbors)), shm

    def materialize(self) -> LabeledGraph:
        """Attach, rebuild the :class:`LabeledGraph`, and cache it."""
        cached = self._CACHE.get(self.name)
        if cached is not None:
            return cached
        shm = _shared_memory.SharedMemory(name=self.name)
        try:
            # With a spawn start method each worker has its own resource
            # tracker, and on 3.11 an *attach* registers with it — the
            # worker's tracker would then unlink the parent-owned block at
            # worker exit, so untrack our attachment there.  Under fork
            # (and in the publishing process itself) the tracker cache is
            # shared with the creator, where unregistering here would
            # erase the creator's own registration — leave it alone.
            try:
                import multiprocessing

                if multiprocessing.get_start_method(allow_none=True) == "spawn":
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            degrees = array("q")
            degrees.frombytes(bytes(shm.buf[: self.n * 8]))
            neighbors = array("q")
            neighbors.frombytes(
                bytes(shm.buf[self.n * 8: (self.n + self.n_neighbors) * 8])
            )
        finally:
            shm.close()
        adj: list[set[int]] = [set()]
        pos = 0
        for d in degrees:
            adj.append(set(neighbors[pos: pos + d]))
            pos += d
        g = LabeledGraph.__new__(LabeledGraph)
        g._n = self.n
        g._adj = adj
        g._m = self.m
        while len(self._CACHE) >= self._CACHE_MAX:
            self._CACHE.pop(next(iter(self._CACHE)))
        self._CACHE[self.name] = g
        return g


def _local_batch(
    args: "tuple[OneRoundProtocol, LabeledGraph | SharedGraphRef, list[int]]"
) -> list[tuple[int, Message]]:
    """Evaluate one batch of local calls (module-level: picklable)."""
    protocol, g, ids = args
    if isinstance(g, SharedGraphRef):
        g = g.materialize()
    return [(i, protocol.local(g.n, i, g.neighbors(i))) for i in ids]


class Executor(ABC):
    """Common interface over the serial, thread, and process backends."""

    #: Backend name used by the CLI and in campaign records.
    kind: str = "executor"

    #: Worker count (1 for the serial backend).
    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the first one,
        for pooled backends).
        """

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Yield results in input order; override to yield as they finish.

        The streaming primitive sharded campaigns build on — with a
        streaming override, each record can be made durable the moment it
        exists instead of after the whole batch.  This *base*
        implementation is a plain ``iter(self.map(...))`` — correct for
        any subclass but fully eager, so custom executors that want
        crash-durability mid-batch must override it (all three builtin
        backends do: the serial backend runs one item per ``next``, the
        pooled ones submit everything up front and yield lazily).
        """
        return iter(self.map(fn, items))

    def imap_observed(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[ObservedResult]:
        """Like :meth:`imap`, yielding ``(result, worker, seconds)`` triples.

        The observability variant the campaign layer streams through: each
        yield is an :class:`ObservedResult` carrying the worker tag
        (``pid:thread-name``) and the in-worker busy time, measured on the
        shared ``perf_counter`` timebase.  Built on :meth:`imap`, so it
        inherits whatever laziness/durability the backend provides — a
        subclass overriding only ``imap`` gets observation for free.
        """
        observed = partial(_observed_call, fn)
        return self.imap(observed, items)

    def map_local(
        self, protocol: OneRoundProtocol, g: LabeledGraph, *, batches_per_job: int = 4
    ) -> list[tuple[int, Message]]:
        """The whole local phase of one round, as ``(id, message)`` pairs.

        Vertices are split into contiguous ID-ordered batches (a few per
        worker so stragglers rebalance); results are concatenated back in
        ID order, so every backend returns the exact list the serial loop
        produces.
        """
        ids = list(g.vertices())
        if not ids:
            return []
        chunks = _chunk_ids(ids, self.jobs * batches_per_job)
        results = self.map(_local_batch, [(protocol, g, chunk) for chunk in chunks])
        return [pair for batch in results for pair in batch]

    def close(self, *, cancel_pending: bool = False) -> None:
        """Release pooled workers; the serial backend has nothing to do.

        ``cancel_pending`` discards work that has not started yet before
        joining the in-flight workers — the shutdown-hygiene path for
        KeyboardInterrupt and daemon teardown, where chewing through a
        queued backlog just to exit would hang the process (and, for
        process pools, leave children alive well past the interrupt).
        In-flight tasks always run to completion either way: workers are
        joined, never orphaned.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type: object = None, *exc: object) -> None:
        # An exceptional exit (KeyboardInterrupt, a crashed run) must not
        # execute the rest of a queued backlog before releasing workers.
        self.close(cancel_pending=exc_type is not None)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    kind = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        # Truly lazy: each item runs only when consumed, so a crash while
        # streaming leaves earlier results durable and later ones unrun.
        return (fn(item) for item in items)

    def map_local(
        self, protocol: OneRoundProtocol, g: LabeledGraph, *, batches_per_job: int = 4
    ) -> list[tuple[int, Message]]:
        # One batch, no chunking bookkeeping — identical to Referee's loop.
        return _local_batch((protocol, g, list(g.vertices())))


class _PooledExecutor(Executor):
    """Shared plumbing for the two concurrent.futures-backed executors."""

    _pool_factory: Callable[..., concurrent.futures.Executor]

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ProtocolError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or default_jobs()
        self._pool: concurrent.futures.Executor | None = None

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = type(self)._pool_factory(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return list(self._ensure_pool().map(fn, items))

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        # concurrent.futures submits everything eagerly and yields in
        # input order as results complete — lazy consumption, full fan-out.
        return self._ensure_pool().map(fn, items)

    def close(self, *, cancel_pending: bool = False) -> None:
        # Thread-safe and idempotent: concurrent.futures' shutdown may be
        # called from any thread, any number of times — the serve daemon
        # closes active executors from its event loop while the owning
        # worker thread is still iterating results.
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel_pending)


class ThreadPoolExecutor(_PooledExecutor):
    """Thread-backed executor (GIL-bound for pure-Python local functions)."""

    kind = "thread"
    _pool_factory = concurrent.futures.ThreadPoolExecutor


class ProcessPoolExecutor(_PooledExecutor):
    """Process-backed executor — the backend that saturates cores.

    Work functions and their arguments must be picklable; the campaign
    layer sends :class:`~repro.engine.scenario.RunSpec` values (graphs are
    rebuilt inside the worker), and :meth:`Executor.map_local` sends
    ``(protocol, graph, ids)`` batches.
    """

    kind = "process"
    _pool_factory = concurrent.futures.ProcessPoolExecutor

    def map_local(
        self, protocol: OneRoundProtocol, g: LabeledGraph, *, batches_per_job: int = 4
    ) -> list[tuple[int, Message]]:
        """Local phase with pickle-free graph handoff.

        The graph is published once to shared memory and every batch
        carries a :class:`SharedGraphRef` instead of the graph itself —
        results are the exact list the base implementation produces (same
        batching, same order).  Falls back to the pickling path when
        shared memory is unavailable or publishing fails (e.g. ``/dev/shm``
        exhausted).
        """
        if _shared_memory is None:
            return super().map_local(protocol, g, batches_per_job=batches_per_job)
        ids = list(g.vertices())
        if not ids:
            return []
        try:
            ref, shm = SharedGraphRef.publish(g)
        except OSError:  # pragma: no cover - shm exhaustion
            return super().map_local(protocol, g, batches_per_job=batches_per_job)
        try:
            chunks = _chunk_ids(ids, self.jobs * batches_per_job)
            results = self.map(
                _local_batch, [(protocol, ref, chunk) for chunk in chunks]
            )
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        return [pair for batch in results for pair in batch]


#: CLI-selectable backends by name.
EXECUTOR_KINDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


def make_executor(kind: str, jobs: int | None = None) -> Executor:
    """Instantiate a backend by name (``serial``/``thread``/``process``).

    ``jobs`` is validated for every kind; the serial backend always runs
    with one worker (callers wanting parallelism must pick a pooled kind).
    """
    try:
        cls = EXECUTOR_KINDS[kind]
    except KeyError:
        raise ProtocolError(
            f"unknown executor kind {kind!r}; known: {', '.join(EXECUTOR_KINDS)}"
        ) from None
    if jobs is not None and jobs < 1:
        raise ProtocolError(f"jobs must be >= 1, got {jobs}")
    if cls is SerialExecutor:
        return cls()
    return cls(jobs)
