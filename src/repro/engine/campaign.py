"""Campaigns: expand scenario grids, fan out runs, cache and persist results.

A :class:`Campaign` is a named list of :class:`~repro.engine.scenario.Scenario`
blocks.  :meth:`Campaign.run`:

1. expands every scenario into :class:`~repro.engine.scenario.RunSpec`
   values and deduplicates them by content hash (grids often overlap —
   identical work is done once);
2. replays cache hits from ``<results_dir>/cache/<hash>.json`` (the hash
   covers the spec and :data:`~repro.engine.scenario.SPEC_VERSION`, so a
   semantics bump invalidates stale entries);
3. fans the misses out through any :class:`~repro.engine.executor.Executor`;
4. streams every record, in deterministic spec order, to
   ``<results_dir>/<name>.jsonl`` — one JSON object per line with
   ``spec`` / ``result`` / ``timing`` sections, ``sort_keys`` so the bytes
   are stable (the determinism test strips only ``timing`` and ``cached``).
   Each line is flushed and fsynced as it lands, so a crash tears at most
   the final line; every persisted run also writes the checkpoint manifest
   from :mod:`repro.engine.shard`, making it resumable
   (``run(resume=True)``) and shardable (``run(shards=n, shard_index=i)``
   plus ``python -m repro merge``).

Campaign specs are plain JSON (see :func:`load_campaign`)::

    {"name": "my-sweep",
     "scenarios": [
       {"name": "deg-k2", "family": "random_k_degenerate", "sizes": [64, 128],
        "protocol": "degeneracy", "seeds": [0, 1, 2],
        "family_params": {"k": 2}, "protocol_params": {"k": 2}}]}

Builtin campaigns (kind ``campaign`` in :mod:`repro.registry`) cover the smoke test, the
reconstruction and connectivity sweeps, the fault-robustness study, and the
fixed benchmark load used by ``benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import concurrent.futures
import functools
import json
import pathlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro import registry
from repro.errors import ObsError, ProtocolError, ShardError, WorkerCrash
from repro.model.referee import monotonic_clock
from repro.obs.events import events_path as _events_path
from repro.obs.events import load_partial_events as _load_partial_events
from repro.obs.events import metrics_path as _metrics_path
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.faults import FaultSpec
from repro.engine.scenario import RunRecord, RunSpec, Scenario, execute_run
from repro.sketching import kernels as kernel_backends
from repro.engine.shard import (
    JsonlStreamWriter,
    ShardManifest,
    atomic_write_json,
    atomic_write_jsonl,
    load_partial_records,
    merge_shards,
    shard_done_path,
    shard_specs,
    shard_stream_path,
    write_done_marker,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "builtin_campaign",
    "load_campaign",
]


def __getattr__(name: str):
    # PEP 562 deprecation shim: the old builtin-campaign dict is now a
    # read-only registry view that warns DeprecationWarning once.
    if name == "BUILTIN_CAMPAIGNS":
        view = registry.BUILTIN_CAMPAIGNS_VIEW
        view._warn()
        return view
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class CampaignResult:
    """What one :meth:`Campaign.run` produced."""

    name: str
    records: list[RunRecord]
    jsonl_path: pathlib.Path | None
    cache_hits: int
    cache_misses: int
    executor_kind: str
    wall_seconds: float
    #: Shard geometry when the run was sharded (``None`` = monolithic).
    shards: int | None = None
    #: The one shard this result covers (``None`` = all of them).
    shard_index: int | None = None
    #: Records replayed from a durable partial stream on ``resume=True``.
    resumed: int = 0
    #: :class:`~repro.obs.metrics.MetricsRegistry` snapshot for the run.
    metrics: dict[str, Any] | None = None
    #: Where the trace event stream landed (``None`` unless ``trace=True``).
    events_path: pathlib.Path | None = None
    #: Where the metrics snapshot landed (``None`` when not persisted).
    metrics_path: pathlib.Path | None = None

    @property
    def ok(self) -> int:
        """Number of runs that completed without violation or error."""
        return sum(1 for r in self.records if r.status == "ok")

    def summary(self) -> dict[str, Any]:
        """Aggregate view for the CLI."""
        statuses: dict[str, int] = {}
        for r in self.records:
            statuses[r.status] = statuses.get(r.status, 0) + 1
        exact = [r.exact for r in self.records if r.exact is not None]
        out = {
            "campaign": self.name,
            "runs": len(self.records),
            "statuses": statuses,
            "exact": sum(exact),
            "inexact": len(exact) - sum(exact),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executor": self.executor_kind,
            "wall_seconds": round(self.wall_seconds, 3),
            "jsonl": str(self.jsonl_path) if self.jsonl_path else None,
        }
        if self.shards is not None:
            out["shards"] = self.shards
            out["shard_index"] = self.shard_index
        if self.resumed:
            out["resumed"] = self.resumed
        if self.events_path is not None:
            out["events"] = str(self.events_path)
        if self.metrics_path is not None:
            out["metrics"] = str(self.metrics_path)
        return out


class Campaign:
    """A named grid of scenarios plus the run/cache/persist machinery.

    Parameters
    ----------
    scenarios:
        The scenario blocks; expanded in order.
    name:
        Campaign name; also the JSONL file stem.
    results_dir:
        Where the JSONL and the cache live; created on demand.  ``None``
        disables persistence entirely (records are only returned).
    use_cache:
        When set (and ``results_dir`` is given), finished runs are stored
        under ``cache/`` and replayed on the next expansion of an
        identical spec.
    """

    def __init__(
        self,
        scenarios: Iterable[Scenario],
        *,
        name: str = "campaign",
        results_dir: str | pathlib.Path | None = "results",
        use_cache: bool = True,
    ) -> None:
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ProtocolError("a campaign needs at least one scenario")
        self.name = name
        self.results_dir = pathlib.Path(results_dir) if results_dir is not None else None
        self.use_cache = use_cache and self.results_dir is not None

    # ------------------------------------------------------------------ #
    # expansion and caching
    # ------------------------------------------------------------------ #

    def specs(self) -> list[RunSpec]:
        """The full grid, deduplicated by content hash, in stable order."""
        seen: set[str] = set()
        out: list[RunSpec] = []
        for scenario in self.scenarios:
            for spec in scenario.expand():
                h = spec.content_hash()
                if h not in seen:
                    seen.add(h)
                    out.append(spec)
        return out

    def _cache_path(self, spec: RunSpec) -> pathlib.Path:
        assert self.results_dir is not None
        return self.results_dir / "cache" / f"{spec.content_hash()}.json"

    def _cache_load(self, spec: RunSpec) -> RunRecord | None:
        if not self.use_cache:
            return None
        path = self._cache_path(spec)
        if not path.exists():
            return None
        try:
            record = RunRecord.from_json_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError, ProtocolError):
            return None  # corrupt or stale entry: recompute
        # The hash covers only the physical run; restamp the requesting
        # spec so the emitted record carries this campaign's provenance.
        record.spec = spec
        record.cached = True
        return record

    def _cache_store(self, record: RunRecord) -> None:
        if not self.use_cache:
            return
        path = self._cache_path(record.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        stored = record.to_json_dict()
        stored["cached"] = False  # replays mark themselves at load time
        path.write_text(json.dumps(stored, sort_keys=True))

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def _observe_record(
        self,
        record: RunRecord,
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry,
        t0: float,
        landed: float,
        worker: str | None,
        busy: float | None,
    ) -> None:
        """Account one landed record: metrics always, retro spans when traced.

        The run span's duration is the record's ``wall_seconds`` — the
        worker-measured truth, copied bit-for-bit — for executed records,
        and the in-process landed time for cache hits.  Phase children
        (setup/local/referee/global) anchor consecutively at the run's
        ``t0`` with the record's exact ``*_seconds`` durations, so a
        trace's per-phase totals reconcile with the records exactly;
        cache hits did no phase work *in this campaign*, so they get none.
        """
        spec = record.spec
        if record.cached:
            metrics.inc("runs_cached")
        else:
            metrics.inc("runs_started")
            metrics.inc("runs_completed", status=record.status)
            metrics.observe("run_seconds", record.timing.get("wall_seconds", landed))
            if worker is not None:
                metrics.inc("worker_tasks", worker=worker)
                metrics.inc("worker_busy_seconds", busy or 0.0, worker=worker)
        for fault_kind, count in (
            ("dropped", record.faults.dropped),
            ("duplicated", record.faults.duplicated),
            ("flipped", record.faults.flipped),
        ):
            if count:
                metrics.inc("faults_injected", count, kind=fault_kind)
        metrics.inc("bits_total", record.total_message_bits)

        if not tracer.enabled:
            return
        dur = landed if record.cached else float(
            record.timing.get("wall_seconds", landed)
        )
        run_id = tracer.emit_span(
            "run", t0, dur,
            spec=spec.content_hash(), scenario=spec.scenario,
            protocol=spec.protocol, n=spec.n, seed=spec.seed,
            status=record.status, cached=record.cached,
            worker=worker, busy_seconds=busy, landed_seconds=landed,
        )
        if record.cached:
            return
        offset = t0
        for key, phase in (
            ("setup_seconds", "setup"),
            ("local_seconds", "local"),
            ("referee_seconds", "referee"),
            ("global_seconds", "global"),
        ):
            if key not in record.timing:
                continue
            phase_dur = record.timing[key]
            if phase == "setup":
                tracer.emit_span(phase, offset, phase_dur, parent=run_id)
            else:
                tracer.emit_span(phase, offset, phase_dur, parent=run_id,
                                 protocol=spec.protocol, n=spec.n)
            offset += phase_dur

    def _run_stream(
        self,
        specs: list[RunSpec],
        executor: Executor,
        stream_path: pathlib.Path | None,
        *,
        resume: bool = False,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        metrics: MetricsRegistry | None = None,
        shard_index: int | None = None,
        kernels: str | None = None,
    ) -> tuple[list[RunRecord], int, int, int]:
        """Execute ``specs`` in order, making each record durable as it lands.

        Records are streamed to ``stream_path`` through
        :class:`~repro.engine.shard.JsonlStreamWriter` (flush + fsync per
        line, so a crash tears at most the final line).  With ``resume``,
        every durable record of an interrupted stream whose spec is still
        in the grid is replayed instead of re-executed — matched by
        content hash, so completed work survives scenario reordering and
        grid edits, not just a clean kill.  A torn tail is truncated and
        its spec re-run.  New records always *append* (durability is never
        traded away mid-run); if replay found the stream out of grid order
        or holding stale specs, the finished stream is rewritten
        canonically in one atomic replace at the end.

        Returns ``(records, cache_hits, cache_misses, resumed)``.
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        order = [s.content_hash() for s in specs]
        durable: dict[str, RunRecord] = {}
        canonical = True  # does the on-disk stream equal canonical order?
        if resume and stream_path is not None:
            loaded, _torn, good_bytes = load_partial_records(stream_path)
            current = set(order)
            kept: list[str] = []
            for record in loaded:
                h = record.spec.content_hash()
                if h in current:  # stale specs (grid edits) are dropped
                    durable[h] = record
                    kept.append(h)
            canonical = (
                len(kept) == len(loaded) and kept == order[: len(kept)]
            )
            # Drop any torn tail so appended records start on a clean line.
            if stream_path.exists() and stream_path.stat().st_size > good_bytes:
                with stream_path.open("rb+") as fh:
                    fh.truncate(good_bytes)
            # Replayed records keep their original payload; restamp the
            # requesting spec so provenance matches this campaign (the
            # content hash is identical either way).
            by_hash = {h: s for h, s in zip(order, specs)}
            for h, record in durable.items():
                record.spec = by_hash[h]

        if durable:
            # Replayed records emit NO events (their events survived the
            # crash in the stream) — the mark is how progress consumers
            # learn the grid jumped ahead without re-running anything.
            tracer.mark("resume-replay", replayed=len(durable))
            metrics.inc("runs_resumed", len(durable))

        pending = [s for s, h in zip(specs, order) if h not in durable]
        slots: list[RunRecord | None] = [self._cache_load(s) for s in pending]
        misses = [s for s, r in zip(pending, slots) if r is None]
        run_fn = (
            execute_run if kernels is None
            else functools.partial(execute_run, kernels=kernels)
        )
        miss_iter = executor.imap_observed(run_fn, misses)

        writer = None
        if stream_path is not None:
            writer = JsonlStreamWriter(stream_path, append=resume)
        try:
            for spec, record in zip(pending, slots):
                t_land = monotonic_clock()
                worker = busy = None
                if record is None:
                    try:
                        record, worker, busy = next(miss_iter)
                    except Exception as exc:
                        h = spec.content_hash()
                        where = (
                            f"spec {h} ({spec.scenario}/{spec.protocol} "
                            f"n={spec.n} seed={spec.seed}"
                            + (f", shard {shard_index}" if shard_index is not None
                               else "") + ")"
                        )
                        tracer.mark(
                            "worker-crash", spec=h, shard=shard_index,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        metrics.inc("worker_crashes")
                        if isinstance(exc, concurrent.futures.BrokenExecutor):
                            # The pool itself died (a worker was killed,
                            # ran out of memory, ...): the task's own code
                            # never got to raise, so wrap with the context
                            # the stack trace cannot carry.
                            raise WorkerCrash(
                                f"executor pool broke running {where}: "
                                f"{type(exc).__name__}: {exc}",
                                spec_hash=h,
                                shard_index=shard_index,
                            ) from exc
                        # A task exception is part of the engine's contract
                        # (it escapes unchanged — resume relies on the
                        # type); annotate it with run context instead.
                        exc.add_note(f"while running {where}")
                        raise
                    self._cache_store(record)
                durable[spec.content_hash()] = record
                if writer is not None:
                    writer.write(record.to_json_dict())
                self._observe_record(
                    record, tracer, metrics,
                    t_land, monotonic_clock() - t_land, worker, busy,
                )
        finally:
            if writer is not None:
                writer.close()

        records = [durable[h] for h in order]
        if stream_path is not None and not canonical:
            # Reordered/edited grid: impose canonical order atomically now
            # that every record is durable in the append-ordered stream.
            atomic_write_jsonl(
                stream_path, (r.to_json_dict() for r in records)
            )
        return records, len(pending) - len(misses), len(misses), len(durable) - len(pending)

    def run(
        self,
        executor: Executor | None = None,
        *,
        shards: int | None = None,
        shard_index: int | None = None,
        resume: bool = False,
        trace: bool = False,
        progress: "bool | ProgressReporter | None" = None,
        kernels: str | None = None,
    ) -> CampaignResult:
        """Execute the grid (or one shard of it) and persist JSONL records.

        Parameters
        ----------
        shards:
            Split the deduplicated grid into this many shards by spec
            content hash (:func:`~repro.engine.shard.shard_of`).  ``None``
            keeps the monolithic single-file layout.
        shard_index:
            Run only this shard, streaming to
            ``<name>.shard-<i>-of-<n>.jsonl`` plus an atomic completion
            mark.  ``None`` with ``shards`` set runs every shard in this
            process and merges them into the canonical ``<name>.jsonl``.
        resume:
            Replay the durable records of an interrupted stream and
            execute only what is missing.  Requires the checkpoint
            manifest written by the interrupted run; a manifest whose
            ``SPEC_VERSION``, campaign name, or shard count no longer
            matches is refused with an actionable
            :class:`~repro.errors.ShardError`.  Grid edits and scenario
            reordering are tolerated: records are matched by spec content
            hash, stale ones dropped, and the stream rewritten in
            canonical order if it drifted.
        trace:
            Stream span/mark/metrics events (DESIGN.md §8) to
            ``<results_dir>/<name>[.shard-…].events.jsonl`` through the
            same fsync-per-line writer as the records, so traces survive
            ``kill -9`` too.  Requires a ``results_dir``
            (:class:`~repro.errors.ObsError` otherwise).  On ``resume``,
            completed-run events survive and new ones append; replayed
            records emit nothing, so nothing duplicates.
        progress:
            Live progress on stderr: ``True`` for a default
            :class:`~repro.obs.progress.ProgressReporter`, or an instance
            for custom streams.  Runs off the same event bus as tracing
            but needs no ``results_dir`` (events stay in-process).
        kernels:
            Kernel backend for the sketch hot paths (``"pure"`` or
            ``"numpy"``, see :mod:`repro.sketching.kernels`).  ``None``
            keeps the ambient backend.  Guaranteed digest-neutral (the
            parity gate pins it), so it is an execution-level choice like
            the executor kind and never enters spec content hashes or the
            cache key.  Validated up front: requesting ``"numpy"`` without
            numpy installed raises :class:`~repro.errors.KernelError`.

        Every persisted run (sharded or not) writes
        ``<results_dir>/<name>.manifest.json`` atomically (with a final
        metrics snapshot embedded), plus ``<name>[.shard-…].metrics.json``
        — metrics are collected unconditionally; only *event streaming*
        is opt-in.
        """
        t0 = monotonic_clock()
        executor = executor or SerialExecutor()
        if kernels is not None:
            kernels = kernel_backends.resolve_kernels(kernels)
        if shards is None and shard_index is not None:
            raise ShardError("shard_index requires shards")
        if shards is not None:
            if shards < 1:
                raise ShardError(f"shards must be >= 1, got {shards}")
            if shard_index is not None and not 0 <= shard_index < shards:
                raise ShardError(
                    f"shard index {shard_index} out of range for {shards} "
                    "shard(s) (valid: 0.."
                    f"{shards - 1})"
                )
        if (shards is not None or resume) and self.results_dir is None:
            raise ShardError(
                "sharded or resumed campaigns need a results_dir "
                "(durable streams and the checkpoint manifest live there)"
            )
        if trace and self.results_dir is None:
            raise ObsError(
                "traced campaigns need a results_dir (the event stream "
                "lives there); pass results_dir= or drop trace=True"
            )
        specs = self.specs()

        reporter: ProgressReporter | None
        if progress is None or progress is False:
            reporter = None
        elif progress is True:
            reporter = ProgressReporter()
        else:
            reporter = progress

        metrics = MetricsRegistry()
        ev_path = None
        writer = None
        if trace:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            ev_path = _events_path(
                self.results_dir, self.name,
                shard_index=shard_index, shards=shards,
            )
            if resume:
                # Drop a torn tail so appended events start on a clean
                # line; completed-run events survive the crash (replays
                # emit nothing, so appending cannot duplicate them).
                _evs, _torn, good_bytes = _load_partial_events(ev_path)
                if ev_path.exists() and ev_path.stat().st_size > good_bytes:
                    with ev_path.open("rb+") as fh:
                        fh.truncate(good_bytes)
            writer = JsonlStreamWriter(ev_path, append=resume)
        tracer: Tracer | NullTracer = NULL_TRACER
        if writer is not None or reporter is not None:
            tracer = Tracer(
                writer, subscribers=(reporter.on_event,) if reporter else ()
            )

        try:
            manifest = None
            if self.results_dir is not None:
                self.results_dir.mkdir(parents=True, exist_ok=True)
                n_shards = 1 if shards is None else shards
                if resume:
                    ShardManifest.load(self.results_dir, self.name).validate_for(
                        self.name, n_shards
                    )
                manifest = ShardManifest.from_specs(self.name, specs, n_shards)
                manifest.write(self.results_dir)

            with tracer.span("campaign", campaign=self.name,
                             executor=executor.kind):
                if shards is None:
                    stream = (
                        self.results_dir / f"{self.name}.jsonl"
                        if self.results_dir is not None else None
                    )
                    tracer.mark("campaign-start", campaign=self.name,
                                runs=len(specs), shards=None, resume=resume)
                    records, hits, misses, resumed = self._run_stream(
                        specs, executor, stream, resume=resume,
                        tracer=tracer, metrics=metrics, kernels=kernels,
                    )
                    jsonl_path = stream
                else:
                    per_shard = shard_specs(specs, shards)
                    indices = (
                        [shard_index] if shard_index is not None
                        else list(range(shards))
                    )
                    tracer.mark(
                        "campaign-start", campaign=self.name,
                        runs=sum(len(per_shard[i]) for i in indices),
                        shards=shards, resume=resume,
                    )
                    records = []
                    hits = misses = resumed = 0
                    stream = None
                    for i in indices:
                        stream = shard_stream_path(
                            self.results_dir, self.name, i, shards
                        )
                        # A stale mark must not claim completion while the
                        # shard reruns.
                        shard_done_path(
                            self.results_dir, self.name, i, shards
                        ).unlink(missing_ok=True)
                        with tracer.span("shard", shard=i, shards=shards):
                            tracer.mark("shard-start", shard=i, shards=shards,
                                        runs=len(per_shard[i]))
                            recs, h, m, r = self._run_stream(
                                per_shard[i], executor, stream, resume=resume,
                                tracer=tracer, metrics=metrics, shard_index=i,
                                kernels=kernels,
                            )
                        write_done_marker(
                            self.results_dir, self.name, i, shards,
                            records=len(recs), metrics=metrics.to_dict(),
                        )
                        records += recs
                        hits, misses, resumed = hits + h, misses + m, resumed + r

                    if shard_index is None:
                        # All shards ran here: publish the canonical merged
                        # file and hand records back in deduplicated grid
                        # order.
                        jsonl_path, _count = merge_shards(
                            self.results_dir, self.name
                        )
                        by_hash = {
                            rec.spec.content_hash(): rec for rec in records
                        }
                        records = [by_hash[h] for h in manifest.spec_hashes]
                    else:
                        jsonl_path = stream
                tracer.mark("campaign-end", campaign=self.name)

            # The pinned definition of cache_hit_ratio (see
            # tests/engine/test_cache_hit_ratio.py): hits over *landed*
            # runs only — resumed replays are excluded from both sides,
            # exactly as the progress reporter excludes cached+resumed
            # from its rate.  Equivalently it is always derivable from the
            # additive counters as runs_cached / (runs_cached +
            # runs_started), which is how the serve scheduler recomputes
            # the fleet-level gauge after merging shard registries.
            landed = hits + misses
            metrics.set_gauge(
                "cache_hit_ratio", (hits / landed) if landed else 0.0
            )
            metrics.set_gauge("campaign_wall_seconds", monotonic_clock() - t0)
            snapshot = metrics.to_dict()
            tracer.metrics_snapshot(snapshot)

            m_path = None
            if self.results_dir is not None:
                m_path = _metrics_path(
                    self.results_dir, self.name,
                    shard_index=shard_index, shards=shards,
                )
                atomic_write_json(
                    m_path, {"campaign": self.name, "metrics": snapshot}
                )
                # Refresh the completion snapshot, metrics embedded.
                manifest.write(self.results_dir, metrics=snapshot)

            return CampaignResult(
                name=self.name,
                records=records,
                jsonl_path=jsonl_path,
                cache_hits=hits,
                cache_misses=misses,
                executor_kind=executor.kind,
                wall_seconds=monotonic_clock() - t0,
                shards=shards,
                shard_index=shard_index,
                resumed=resumed,
                metrics=snapshot,
                events_path=ev_path,
                metrics_path=m_path,
            )
        finally:
            tracer.close()

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON object form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "scenarios": [s.to_dict() for s in self.scenarios]}

    @classmethod
    def from_dict(
        cls,
        d: Mapping[str, Any],
        *,
        results_dir: str | pathlib.Path | None = "results",
        use_cache: bool = True,
    ) -> "Campaign":
        """Build from a JSON object with ``name`` and ``scenarios`` keys."""
        if "scenarios" not in d or not d["scenarios"]:
            raise ProtocolError("campaign spec needs a non-empty 'scenarios' list")
        return cls(
            [Scenario.from_dict(s) for s in d["scenarios"]],
            name=str(d.get("name", "campaign")),
            results_dir=results_dir,
            use_cache=use_cache,
        )


# --------------------------------------------------------------------- #
# builtin campaigns
# --------------------------------------------------------------------- #


@registry.register("smoke", kind="campaign")
def _builtin_smoke() -> list[Scenario]:
    """Seconds-long sanity sweep touching reconstruction, sketching, faults."""
    return [
        Scenario(name="smoke-forest", family="random_forest", sizes=(12, 16),
                 protocol="forest", seeds=(0, 1)),
        Scenario(name="smoke-degeneracy", family="random_k_degenerate", sizes=(16,),
                 protocol="degeneracy", seeds=(0,),
                 family_params={"k": 2}, protocol_params={"k": 2}),
        Scenario(name="smoke-connectivity", family="two_components", sizes=(16,),
                 protocol="agm_connectivity", seeds=(0,), shuffle_delivery=True),
        Scenario(name="smoke-faulty", family="random_forest", sizes=(12,),
                 protocol="forest", seeds=(0, 1),
                 faults=FaultSpec(drop=0.2, flip=0.2, seed=7)),
    ]


@registry.register("degeneracy-sweep", kind="campaign")
def _builtin_degeneracy_sweep() -> list[Scenario]:
    """Theorem 5 at campaign scale: k ∈ {1,2,3} across sizes and seeds."""
    return [
        Scenario(name=f"deg-k{k}", family="random_k_degenerate", sizes=(64, 128, 256),
                 protocol="degeneracy", seeds=(0, 1, 2, 3),
                 family_params={"k": k}, protocol_params={"k": k})
        for k in (1, 2, 3)
    ]


@registry.register("connectivity-sweep", kind="campaign")
def _builtin_connectivity_sweep() -> list[Scenario]:
    """AGM sketch accuracy: connected vs two-component inputs, many seeds."""
    sketch_seeds = tuple(range(8))
    return [
        Scenario(name="conn-tree", family="random_tree", sizes=(32, 64, 128),
                 protocol="agm_connectivity", seeds=(0, 1),
                 protocol_params={"sketch_seed": s})
        for s in sketch_seeds
    ] + [
        Scenario(name="conn-split", family="two_components", sizes=(32, 64, 128),
                 protocol="agm_connectivity", seeds=(0, 1),
                 protocol_params={"sketch_seed": s})
        for s in sketch_seeds
    ]


@registry.register("faults", kind="campaign")
def _builtin_faults() -> list[Scenario]:
    """Robustness: reconstruction and sketching under increasing fault rates."""
    out = []
    for rate in (0.01, 0.05, 0.2):
        fs = FaultSpec(drop=rate, duplicate=rate, flip=rate, seed=11)
        out.append(Scenario(name=f"faulty-forest-{rate}", family="random_forest",
                            sizes=(32, 64), protocol="forest", seeds=(0, 1, 2), faults=fs))
        out.append(Scenario(name=f"faulty-deg-{rate}", family="random_k_degenerate",
                            sizes=(32, 64), protocol="degeneracy", seeds=(0, 1, 2),
                            family_params={"k": 2}, protocol_params={"k": 2}, faults=fs))
        out.append(Scenario(name=f"faulty-conn-{rate}", family="random_tree",
                            sizes=(32, 64), protocol="agm_connectivity", seeds=(0, 1, 2),
                            faults=fs))
    return out


@registry.register("bench", kind="campaign")
def _builtin_bench() -> list[Scenario]:
    """The fixed load bench_engine.py times: 32 reconstructions at n=512."""
    return [
        Scenario(name="bench-deg", family="random_k_degenerate", sizes=(512,),
                 protocol="degeneracy", seeds=tuple(range(32)),
                 family_params={"k": 2}, protocol_params={"k": 2}),
    ]


def builtin_campaign(
    name: str,
    *,
    results_dir: str | pathlib.Path | None = "results",
    use_cache: bool = True,
) -> Campaign:
    """Instantiate a builtin campaign by name (from the campaign registry)."""
    canonical = registry.CAMPAIGN.resolve(name)  # UnknownRegistryEntry on typos
    return Campaign(registry.CAMPAIGN.get(canonical)(), name=canonical,
                    results_dir=results_dir, use_cache=use_cache)


def load_campaign(
    source: str | pathlib.Path,
    *,
    results_dir: str | pathlib.Path | None = "results",
    use_cache: bool = True,
) -> Campaign:
    """A builtin name, or a path to a JSON campaign spec."""
    if isinstance(source, str) and source in registry.CAMPAIGN:
        return builtin_campaign(source, results_dir=results_dir, use_cache=use_cache)
    path = pathlib.Path(source)
    if not path.exists():
        known = ", ".join(registry.CAMPAIGN.names())
        raise ProtocolError(
            f"{source!r} is neither a builtin campaign ({known}) "
            "nor an existing spec file"
        )
    return Campaign.from_dict(
        json.loads(path.read_text()), results_dir=results_dir, use_cache=use_cache
    )
