"""Campaigns: expand scenario grids, fan out runs, cache and persist results.

A :class:`Campaign` is a named list of :class:`~repro.engine.scenario.Scenario`
blocks.  :meth:`Campaign.run`:

1. expands every scenario into :class:`~repro.engine.scenario.RunSpec`
   values and deduplicates them by content hash (grids often overlap —
   identical work is done once);
2. replays cache hits from ``<results_dir>/cache/<hash>.json`` (the hash
   covers the spec and :data:`~repro.engine.scenario.SPEC_VERSION`, so a
   semantics bump invalidates stale entries);
3. fans the misses out through any :class:`~repro.engine.executor.Executor`;
4. streams every record, in deterministic spec order, to
   ``<results_dir>/<name>.jsonl`` — one JSON object per line with
   ``spec`` / ``result`` / ``timing`` sections, ``sort_keys`` so the bytes
   are stable (the determinism test strips only ``timing`` and ``cached``).
   Each line is flushed and fsynced as it lands, so a crash tears at most
   the final line; every persisted run also writes the checkpoint manifest
   from :mod:`repro.engine.shard`, making it resumable
   (``run(resume=True)``) and shardable (``run(shards=n, shard_index=i)``
   plus ``python -m repro merge``).

Campaign specs are plain JSON (see :func:`load_campaign`)::

    {"name": "my-sweep",
     "scenarios": [
       {"name": "deg-k2", "family": "random_k_degenerate", "sizes": [64, 128],
        "protocol": "degeneracy", "seeds": [0, 1, 2],
        "family_params": {"k": 2}, "protocol_params": {"k": 2}}]}

Builtin campaigns (kind ``campaign`` in :mod:`repro.registry`) cover the smoke test, the
reconstruction and connectivity sweeps, the fault-robustness study, and the
fixed benchmark load used by ``benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro import registry
from repro.errors import ProtocolError, ShardError
from repro.model.referee import monotonic_clock
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.faults import FaultSpec
from repro.engine.scenario import RunRecord, RunSpec, Scenario, execute_run
from repro.engine.shard import (
    JsonlStreamWriter,
    ShardManifest,
    atomic_write_jsonl,
    load_partial_records,
    merge_shards,
    shard_done_path,
    shard_specs,
    shard_stream_path,
    write_done_marker,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "builtin_campaign",
    "load_campaign",
]


def __getattr__(name: str):
    # PEP 562 deprecation shim: the old builtin-campaign dict is now a
    # read-only registry view that warns DeprecationWarning once.
    if name == "BUILTIN_CAMPAIGNS":
        view = registry.BUILTIN_CAMPAIGNS_VIEW
        view._warn()
        return view
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class CampaignResult:
    """What one :meth:`Campaign.run` produced."""

    name: str
    records: list[RunRecord]
    jsonl_path: pathlib.Path | None
    cache_hits: int
    cache_misses: int
    executor_kind: str
    wall_seconds: float
    #: Shard geometry when the run was sharded (``None`` = monolithic).
    shards: int | None = None
    #: The one shard this result covers (``None`` = all of them).
    shard_index: int | None = None
    #: Records replayed from a durable partial stream on ``resume=True``.
    resumed: int = 0

    @property
    def ok(self) -> int:
        """Number of runs that completed without violation or error."""
        return sum(1 for r in self.records if r.status == "ok")

    def summary(self) -> dict[str, Any]:
        """Aggregate view for the CLI."""
        statuses: dict[str, int] = {}
        for r in self.records:
            statuses[r.status] = statuses.get(r.status, 0) + 1
        exact = [r.exact for r in self.records if r.exact is not None]
        out = {
            "campaign": self.name,
            "runs": len(self.records),
            "statuses": statuses,
            "exact": sum(exact),
            "inexact": len(exact) - sum(exact),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executor": self.executor_kind,
            "wall_seconds": round(self.wall_seconds, 3),
            "jsonl": str(self.jsonl_path) if self.jsonl_path else None,
        }
        if self.shards is not None:
            out["shards"] = self.shards
            out["shard_index"] = self.shard_index
        if self.resumed:
            out["resumed"] = self.resumed
        return out


class Campaign:
    """A named grid of scenarios plus the run/cache/persist machinery.

    Parameters
    ----------
    scenarios:
        The scenario blocks; expanded in order.
    name:
        Campaign name; also the JSONL file stem.
    results_dir:
        Where the JSONL and the cache live; created on demand.  ``None``
        disables persistence entirely (records are only returned).
    use_cache:
        When set (and ``results_dir`` is given), finished runs are stored
        under ``cache/`` and replayed on the next expansion of an
        identical spec.
    """

    def __init__(
        self,
        scenarios: Iterable[Scenario],
        *,
        name: str = "campaign",
        results_dir: str | pathlib.Path | None = "results",
        use_cache: bool = True,
    ) -> None:
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ProtocolError("a campaign needs at least one scenario")
        self.name = name
        self.results_dir = pathlib.Path(results_dir) if results_dir is not None else None
        self.use_cache = use_cache and self.results_dir is not None

    # ------------------------------------------------------------------ #
    # expansion and caching
    # ------------------------------------------------------------------ #

    def specs(self) -> list[RunSpec]:
        """The full grid, deduplicated by content hash, in stable order."""
        seen: set[str] = set()
        out: list[RunSpec] = []
        for scenario in self.scenarios:
            for spec in scenario.expand():
                h = spec.content_hash()
                if h not in seen:
                    seen.add(h)
                    out.append(spec)
        return out

    def _cache_path(self, spec: RunSpec) -> pathlib.Path:
        assert self.results_dir is not None
        return self.results_dir / "cache" / f"{spec.content_hash()}.json"

    def _cache_load(self, spec: RunSpec) -> RunRecord | None:
        if not self.use_cache:
            return None
        path = self._cache_path(spec)
        if not path.exists():
            return None
        try:
            record = RunRecord.from_json_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError, ProtocolError):
            return None  # corrupt or stale entry: recompute
        # The hash covers only the physical run; restamp the requesting
        # spec so the emitted record carries this campaign's provenance.
        record.spec = spec
        record.cached = True
        return record

    def _cache_store(self, record: RunRecord) -> None:
        if not self.use_cache:
            return
        path = self._cache_path(record.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        stored = record.to_json_dict()
        stored["cached"] = False  # replays mark themselves at load time
        path.write_text(json.dumps(stored, sort_keys=True))

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def _run_stream(
        self,
        specs: list[RunSpec],
        executor: Executor,
        stream_path: pathlib.Path | None,
        *,
        resume: bool = False,
    ) -> tuple[list[RunRecord], int, int, int]:
        """Execute ``specs`` in order, making each record durable as it lands.

        Records are streamed to ``stream_path`` through
        :class:`~repro.engine.shard.JsonlStreamWriter` (flush + fsync per
        line, so a crash tears at most the final line).  With ``resume``,
        every durable record of an interrupted stream whose spec is still
        in the grid is replayed instead of re-executed — matched by
        content hash, so completed work survives scenario reordering and
        grid edits, not just a clean kill.  A torn tail is truncated and
        its spec re-run.  New records always *append* (durability is never
        traded away mid-run); if replay found the stream out of grid order
        or holding stale specs, the finished stream is rewritten
        canonically in one atomic replace at the end.

        Returns ``(records, cache_hits, cache_misses, resumed)``.
        """
        order = [s.content_hash() for s in specs]
        durable: dict[str, RunRecord] = {}
        canonical = True  # does the on-disk stream equal canonical order?
        if resume and stream_path is not None:
            loaded, _torn, good_bytes = load_partial_records(stream_path)
            current = set(order)
            kept: list[str] = []
            for record in loaded:
                h = record.spec.content_hash()
                if h in current:  # stale specs (grid edits) are dropped
                    durable[h] = record
                    kept.append(h)
            canonical = (
                len(kept) == len(loaded) and kept == order[: len(kept)]
            )
            # Drop any torn tail so appended records start on a clean line.
            if stream_path.exists() and stream_path.stat().st_size > good_bytes:
                with stream_path.open("rb+") as fh:
                    fh.truncate(good_bytes)
            # Replayed records keep their original payload; restamp the
            # requesting spec so provenance matches this campaign (the
            # content hash is identical either way).
            by_hash = {h: s for h, s in zip(order, specs)}
            for h, record in durable.items():
                record.spec = by_hash[h]

        pending = [s for s, h in zip(specs, order) if h not in durable]
        slots: list[RunRecord | None] = [self._cache_load(s) for s in pending]
        misses = [s for s, r in zip(pending, slots) if r is None]
        miss_iter = executor.imap(execute_run, misses)

        writer = None
        if stream_path is not None:
            writer = JsonlStreamWriter(stream_path, append=resume)
        try:
            for spec, record in zip(pending, slots):
                if record is None:
                    record = next(miss_iter)
                    self._cache_store(record)
                durable[spec.content_hash()] = record
                if writer is not None:
                    writer.write(record.to_json_dict())
        finally:
            if writer is not None:
                writer.close()

        records = [durable[h] for h in order]
        if stream_path is not None and not canonical:
            # Reordered/edited grid: impose canonical order atomically now
            # that every record is durable in the append-ordered stream.
            atomic_write_jsonl(
                stream_path, (r.to_json_dict() for r in records)
            )
        return records, len(pending) - len(misses), len(misses), len(durable) - len(pending)

    def run(
        self,
        executor: Executor | None = None,
        *,
        shards: int | None = None,
        shard_index: int | None = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute the grid (or one shard of it) and persist JSONL records.

        Parameters
        ----------
        shards:
            Split the deduplicated grid into this many shards by spec
            content hash (:func:`~repro.engine.shard.shard_of`).  ``None``
            keeps the monolithic single-file layout.
        shard_index:
            Run only this shard, streaming to
            ``<name>.shard-<i>-of-<n>.jsonl`` plus an atomic completion
            mark.  ``None`` with ``shards`` set runs every shard in this
            process and merges them into the canonical ``<name>.jsonl``.
        resume:
            Replay the durable records of an interrupted stream and
            execute only what is missing.  Requires the checkpoint
            manifest written by the interrupted run; a manifest whose
            ``SPEC_VERSION``, campaign name, or shard count no longer
            matches is refused with an actionable
            :class:`~repro.errors.ShardError`.  Grid edits and scenario
            reordering are tolerated: records are matched by spec content
            hash, stale ones dropped, and the stream rewritten in
            canonical order if it drifted.

        Every persisted run (sharded or not) writes
        ``<results_dir>/<name>.manifest.json`` atomically, so any
        interrupted campaign can be resumed.
        """
        t0 = monotonic_clock()
        executor = executor or SerialExecutor()
        if shards is None and shard_index is not None:
            raise ShardError("shard_index requires shards")
        if shards is not None:
            if shards < 1:
                raise ShardError(f"shards must be >= 1, got {shards}")
            if shard_index is not None and not 0 <= shard_index < shards:
                raise ShardError(
                    f"shard index {shard_index} out of range for {shards} "
                    "shard(s) (valid: 0.."
                    f"{shards - 1})"
                )
        if (shards is not None or resume) and self.results_dir is None:
            raise ShardError(
                "sharded or resumed campaigns need a results_dir "
                "(durable streams and the checkpoint manifest live there)"
            )
        specs = self.specs()

        manifest = None
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            n_shards = 1 if shards is None else shards
            if resume:
                ShardManifest.load(self.results_dir, self.name).validate_for(
                    self.name, n_shards
                )
            manifest = ShardManifest.from_specs(self.name, specs, n_shards)
            manifest.write(self.results_dir)

        if shards is None:
            stream = (
                self.results_dir / f"{self.name}.jsonl"
                if self.results_dir is not None else None
            )
            records, hits, misses, resumed = self._run_stream(
                specs, executor, stream, resume=resume
            )
            return CampaignResult(
                name=self.name,
                records=records,
                jsonl_path=stream,
                cache_hits=hits,
                cache_misses=misses,
                executor_kind=executor.kind,
                wall_seconds=monotonic_clock() - t0,
                resumed=resumed,
            )

        per_shard = shard_specs(specs, shards)
        indices = [shard_index] if shard_index is not None else list(range(shards))
        records: list[RunRecord] = []
        hits = misses = resumed = 0
        stream = None
        for i in indices:
            stream = shard_stream_path(self.results_dir, self.name, i, shards)
            # A stale mark must not claim completion while the shard reruns.
            shard_done_path(self.results_dir, self.name, i, shards).unlink(
                missing_ok=True
            )
            recs, h, m, r = self._run_stream(
                per_shard[i], executor, stream, resume=resume
            )
            write_done_marker(
                self.results_dir, self.name, i, shards, records=len(recs)
            )
            records += recs
            hits, misses, resumed = hits + h, misses + m, resumed + r
        manifest.write(self.results_dir)  # refresh the completion snapshot

        if shard_index is None:
            # All shards ran here: publish the canonical merged file and
            # hand records back in deduplicated grid order.
            jsonl_path, _count = merge_shards(self.results_dir, self.name)
            by_hash = {rec.spec.content_hash(): rec for rec in records}
            records = [by_hash[h] for h in manifest.spec_hashes]
        else:
            jsonl_path = stream
        return CampaignResult(
            name=self.name,
            records=records,
            jsonl_path=jsonl_path,
            cache_hits=hits,
            cache_misses=misses,
            executor_kind=executor.kind,
            wall_seconds=monotonic_clock() - t0,
            shards=shards,
            shard_index=shard_index,
            resumed=resumed,
        )

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON object form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "scenarios": [s.to_dict() for s in self.scenarios]}

    @classmethod
    def from_dict(
        cls,
        d: Mapping[str, Any],
        *,
        results_dir: str | pathlib.Path | None = "results",
        use_cache: bool = True,
    ) -> "Campaign":
        """Build from a JSON object with ``name`` and ``scenarios`` keys."""
        if "scenarios" not in d or not d["scenarios"]:
            raise ProtocolError("campaign spec needs a non-empty 'scenarios' list")
        return cls(
            [Scenario.from_dict(s) for s in d["scenarios"]],
            name=str(d.get("name", "campaign")),
            results_dir=results_dir,
            use_cache=use_cache,
        )


# --------------------------------------------------------------------- #
# builtin campaigns
# --------------------------------------------------------------------- #


@registry.register("smoke", kind="campaign")
def _builtin_smoke() -> list[Scenario]:
    """Seconds-long sanity sweep touching reconstruction, sketching, faults."""
    return [
        Scenario(name="smoke-forest", family="random_forest", sizes=(12, 16),
                 protocol="forest", seeds=(0, 1)),
        Scenario(name="smoke-degeneracy", family="random_k_degenerate", sizes=(16,),
                 protocol="degeneracy", seeds=(0,),
                 family_params={"k": 2}, protocol_params={"k": 2}),
        Scenario(name="smoke-connectivity", family="two_components", sizes=(16,),
                 protocol="agm_connectivity", seeds=(0,), shuffle_delivery=True),
        Scenario(name="smoke-faulty", family="random_forest", sizes=(12,),
                 protocol="forest", seeds=(0, 1),
                 faults=FaultSpec(drop=0.2, flip=0.2, seed=7)),
    ]


@registry.register("degeneracy-sweep", kind="campaign")
def _builtin_degeneracy_sweep() -> list[Scenario]:
    """Theorem 5 at campaign scale: k ∈ {1,2,3} across sizes and seeds."""
    return [
        Scenario(name=f"deg-k{k}", family="random_k_degenerate", sizes=(64, 128, 256),
                 protocol="degeneracy", seeds=(0, 1, 2, 3),
                 family_params={"k": k}, protocol_params={"k": k})
        for k in (1, 2, 3)
    ]


@registry.register("connectivity-sweep", kind="campaign")
def _builtin_connectivity_sweep() -> list[Scenario]:
    """AGM sketch accuracy: connected vs two-component inputs, many seeds."""
    sketch_seeds = tuple(range(8))
    return [
        Scenario(name="conn-tree", family="random_tree", sizes=(32, 64, 128),
                 protocol="agm_connectivity", seeds=(0, 1),
                 protocol_params={"sketch_seed": s})
        for s in sketch_seeds
    ] + [
        Scenario(name="conn-split", family="two_components", sizes=(32, 64, 128),
                 protocol="agm_connectivity", seeds=(0, 1),
                 protocol_params={"sketch_seed": s})
        for s in sketch_seeds
    ]


@registry.register("faults", kind="campaign")
def _builtin_faults() -> list[Scenario]:
    """Robustness: reconstruction and sketching under increasing fault rates."""
    out = []
    for rate in (0.01, 0.05, 0.2):
        fs = FaultSpec(drop=rate, duplicate=rate, flip=rate, seed=11)
        out.append(Scenario(name=f"faulty-forest-{rate}", family="random_forest",
                            sizes=(32, 64), protocol="forest", seeds=(0, 1, 2), faults=fs))
        out.append(Scenario(name=f"faulty-deg-{rate}", family="random_k_degenerate",
                            sizes=(32, 64), protocol="degeneracy", seeds=(0, 1, 2),
                            family_params={"k": 2}, protocol_params={"k": 2}, faults=fs))
        out.append(Scenario(name=f"faulty-conn-{rate}", family="random_tree",
                            sizes=(32, 64), protocol="agm_connectivity", seeds=(0, 1, 2),
                            faults=fs))
    return out


@registry.register("bench", kind="campaign")
def _builtin_bench() -> list[Scenario]:
    """The fixed load bench_engine.py times: 32 reconstructions at n=512."""
    return [
        Scenario(name="bench-deg", family="random_k_degenerate", sizes=(512,),
                 protocol="degeneracy", seeds=tuple(range(32)),
                 family_params={"k": 2}, protocol_params={"k": 2}),
    ]


def builtin_campaign(
    name: str,
    *,
    results_dir: str | pathlib.Path | None = "results",
    use_cache: bool = True,
) -> Campaign:
    """Instantiate a builtin campaign by name (from the campaign registry)."""
    canonical = registry.CAMPAIGN.resolve(name)  # UnknownRegistryEntry on typos
    return Campaign(registry.CAMPAIGN.get(canonical)(), name=canonical,
                    results_dir=results_dir, use_cache=use_cache)


def load_campaign(
    source: str | pathlib.Path,
    *,
    results_dir: str | pathlib.Path | None = "results",
    use_cache: bool = True,
) -> Campaign:
    """A builtin name, or a path to a JSON campaign spec."""
    if isinstance(source, str) and source in registry.CAMPAIGN:
        return builtin_campaign(source, results_dir=results_dir, use_cache=use_cache)
    path = pathlib.Path(source)
    if not path.exists():
        known = ", ".join(registry.CAMPAIGN.names())
        raise ProtocolError(
            f"{source!r} is neither a builtin campaign ({known}) "
            "nor an existing spec file"
        )
    return Campaign.from_dict(
        json.loads(path.read_text()), results_dir=results_dir, use_cache=use_cache
    )
