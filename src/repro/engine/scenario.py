"""Declarative scenarios: what to run, expanded into picklable run specs.

A :class:`Scenario` names a graph family, a size grid, a protocol, a seed
list, and the referee options (``budget_bits``, ``shuffle_delivery``,
faults).  :meth:`Scenario.expand` multiplies the grid out into
:class:`RunSpec` values — small frozen records that fully determine one
run.  A ``RunSpec`` deliberately carries *names and parameters*, never
graph or protocol objects: process-pool workers rebuild both locally from
the :mod:`repro.registry` registries, so fanning out a campaign ships a
few hundred bytes per run instead of a pickled adjacency structure.

Names are validated at construction time against the registries
(:data:`repro.registry.GRAPH_FAMILY` / :data:`repro.registry.PROTOCOL`);
a typo raises :class:`~repro.errors.UnknownRegistryEntry` naming the
nearest known entry (``unknown protocol 'degenracy'; did you mean
'degeneracy'?``).  The pre-registry dict literals survive as deprecated
read-only views — accessing ``GRAPH_FAMILIES`` / ``PROTOCOL_BUILDERS``
on this module warns ``DeprecationWarning`` once and resolves through the
registry.

Determinism contract (the SciLLM/APEX seed discipline from SNIPPETS.md):
every random choice in a run is a pure function of the spec — the graph
from ``(family, n, seed, family_params)``, protocol randomness from
``protocol_params`` (e.g. the AGM sketch seed), shuffle delivery from
``seed``, faults from ``(faults.seed, seed)``.  Nothing reads or writes the
global ``random`` state, so identical specs yield identical
:class:`RunRecord` payloads on any machine, in any worker, in any order.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro import registry
from repro.errors import DecodeError, FrugalityViolation, ProtocolError, ReproError
from repro.graphs.labeled import LabeledGraph
from repro.model.protocol import OneRoundProtocol
from repro.model.referee import Referee, RunReport, monotonic_clock
from repro.engine.faults import FaultCounters, FaultSpec

# GRAPH_FAMILIES / PROTOCOL_BUILDERS resolve via __getattr__ (deprecated)
# but are kept out of __all__ so star-imports neither warn nor consume the
# views' warn-once latches.
__all__ = [
    "Scenario",
    "RunSpec",
    "RunRecord",
    "execute_run",
    "output_digest",
    "SPEC_VERSION",
]

#: Bumped whenever record semantics change, so stale cache entries miss.
#: v2: records carry a top-level ``spec_version`` stamp (repro.results
#: validates against it and migrates v1 streams on load).
SPEC_VERSION = 2

Params = tuple[tuple[str, Any], ...]


def __getattr__(name: str):
    # PEP 562 deprecation shims: the old registry dicts live on as
    # read-only views that warn once on first touch (even when that touch
    # is `from repro.engine.scenario import PROTOCOL_BUILDERS`).
    if name == "GRAPH_FAMILIES":
        view = registry.GRAPH_FAMILIES_VIEW
        view._warn()
        return view
    if name == "PROTOCOL_BUILDERS":
        view = registry.PROTOCOL_BUILDERS_VIEW
        view._warn()
        return view
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _as_params(value: Mapping[str, Any] | Params | None) -> Params:
    """Normalize a params mapping to a sorted, hashable tuple of pairs."""
    if value is None:
        return ()
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(k), v) for k, v in items))


# --------------------------------------------------------------------- #
# scenario
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Scenario:
    """One axis-aligned block of a campaign grid.

    ``sizes`` × ``seeds`` runs of ``protocol`` on ``family`` graphs, under
    one referee configuration.  Hashable (params are normalized to sorted
    tuples) and JSON round-trippable via :meth:`to_dict`/:meth:`from_dict`.
    """

    name: str
    family: str
    sizes: tuple[int, ...]
    protocol: str
    seeds: tuple[int, ...] = (0,)
    family_params: Params = ()
    protocol_params: Params = ()
    budget_bits: int | None = None
    shuffle_delivery: bool = False
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        # Canonicalize names eagerly (aliases resolve here, so specs,
        # content hashes, and cache keys always carry canonical names);
        # unknown names raise UnknownRegistryEntry with a did-you-mean.
        object.__setattr__(self, "family", registry.GRAPH_FAMILY.resolve(self.family))
        object.__setattr__(self, "protocol", registry.PROTOCOL.resolve(self.protocol))
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "family_params", _as_params(self.family_params))
        object.__setattr__(self, "protocol_params", _as_params(self.protocol_params))
        registry.GRAPH_FAMILY.validate_params(self.family, dict(self.family_params))
        registry.PROTOCOL.validate_params(self.protocol, dict(self.protocol_params))
        if not self.sizes:
            raise ProtocolError(f"scenario {self.name!r}: sizes must be non-empty")
        if not self.seeds:
            raise ProtocolError(f"scenario {self.name!r}: seeds must be non-empty")

    def expand(self) -> Iterator["RunSpec"]:
        """The grid, sizes-major then seeds, in declaration order."""
        for n in self.sizes:
            for seed in self.seeds:
                yield RunSpec(
                    scenario=self.name,
                    family=self.family,
                    n=n,
                    seed=seed,
                    protocol=self.protocol,
                    family_params=self.family_params,
                    protocol_params=self.protocol_params,
                    budget_bits=self.budget_bits,
                    shuffle_delivery=self.shuffle_delivery,
                    faults=self.faults,
                )

    def to_dict(self) -> dict:
        """JSON object form (inverse of :meth:`from_dict`)."""
        d: dict[str, Any] = {
            "name": self.name,
            "family": self.family,
            "sizes": list(self.sizes),
            "protocol": self.protocol,
            "seeds": list(self.seeds),
        }
        if self.family_params:
            d["family_params"] = dict(self.family_params)
        if self.protocol_params:
            d["protocol_params"] = dict(self.protocol_params)
        if self.budget_bits is not None:
            d["budget_bits"] = self.budget_bits
        if self.shuffle_delivery:
            d["shuffle_delivery"] = True
        if self.faults is not None:
            d["faults"] = self.faults.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scenario":
        """Build from a JSON object; unknown keys are rejected."""
        known = {
            "name", "family", "sizes", "protocol", "seeds", "family_params",
            "protocol_params", "budget_bits", "shuffle_delivery", "faults",
        }
        unknown = set(d) - known
        if unknown:
            raise ProtocolError(f"unknown Scenario keys: {sorted(unknown)}")
        kwargs = dict(d)
        for req in ("name", "family", "sizes", "protocol"):
            if req not in kwargs:
                raise ProtocolError(f"Scenario is missing required key {req!r}")
        kwargs["sizes"] = tuple(kwargs["sizes"])
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(kwargs["seeds"])
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(kwargs["faults"])
        return cls(**kwargs)


# --------------------------------------------------------------------- #
# run specs and records
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one run; small, hashable, picklable."""

    scenario: str
    family: str
    n: int
    seed: int
    protocol: str
    family_params: Params = ()
    protocol_params: Params = ()
    budget_bits: int | None = None
    shuffle_delivery: bool = False
    faults: FaultSpec | None = None

    def build_graph(self) -> LabeledGraph:
        """Instantiate the input graph from the family registry."""
        return registry.GRAPH_FAMILY.get(self.family)(
            self.n, self.seed, **dict(self.family_params)
        )

    def build_protocol(self) -> OneRoundProtocol:
        """Instantiate the protocol from the protocol registry."""
        return registry.PROTOCOL.get(self.protocol)(
            self.n, **dict(self.protocol_params)
        )

    def to_dict(self) -> dict:
        """Canonical JSON object form — the input to :meth:`content_hash`."""
        return {
            "scenario": self.scenario,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "protocol": self.protocol,
            "family_params": dict(self.family_params),
            "protocol_params": dict(self.protocol_params),
            "budget_bits": self.budget_bits,
            "shuffle_delivery": self.shuffle_delivery,
            "faults": self.faults.to_dict() if self.faults else None,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(d)
        kwargs["family_params"] = _as_params(kwargs.get("family_params"))
        kwargs["protocol_params"] = _as_params(kwargs.get("protocol_params"))
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(kwargs["faults"])
        return cls(**kwargs)

    def content_hash(self) -> str:
        """Stable digest of the *physical* run (plus :data:`SPEC_VERSION`).

        The ``scenario`` label is provenance, not identity — two scenarios
        (or two campaigns) sweeping the same (family, n, seed, protocol,
        params, referee options) grid must share cache entries and
        deduplicate, which is the whole point of the content hash.

        Memoized on the (frozen) instance: the shard orchestration path
        hashes every spec several times per run — dedup, shard
        assignment, the manifest, stream replay, merge ownership.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            return cached
        physical = self.to_dict()
        physical.pop("scenario")
        payload = json.dumps(
            {"v": SPEC_VERSION, "spec": physical}, sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()[:24]
        object.__setattr__(self, "_content_hash", digest)
        return digest


def output_digest(output: Any) -> tuple[str, str]:
    """``(kind, digest)`` of a global-phase output, stable across processes."""
    if isinstance(output, LabeledGraph):
        body = f"{output.n};" + ";".join(f"{u},{v}" for u, v in output.edges())
        return "graph", hashlib.sha256(body.encode()).hexdigest()[:16]
    if isinstance(output, bool):
        return "bool", str(output)
    body = repr(output)
    return type(output).__name__, hashlib.sha256(body.encode()).hexdigest()[:16]


@dataclass
class RunRecord:
    """One JSONL record: spec + deterministic result + timing sidecar.

    Everything except :attr:`timing` is a pure function of the spec; the
    determinism test strips ``timing`` (and ``cached``) and compares bytes.
    """

    spec: RunSpec
    status: str  # "ok" | "violation" | "error"
    output_kind: str = ""
    output_digest: str = ""
    exact: bool | None = None
    graph_n: int = 0
    graph_m: int = 0
    max_message_bits: int = 0
    total_message_bits: int = 0
    faults: FaultCounters = field(default_factory=FaultCounters)
    error: str = ""
    timing: dict[str, float] = field(default_factory=dict)
    cached: bool = False

    def to_json_dict(self) -> dict:
        """The JSONL object: ``spec`` / ``result`` / ``timing`` sections.

        Stamped with ``spec_version`` so downstream readers
        (:mod:`repro.results.records`) can validate and migrate streams
        written by older engines.
        """
        return {
            "spec_version": SPEC_VERSION,
            "spec": self.spec.to_dict(),
            "result": {
                "status": self.status,
                "output_kind": self.output_kind,
                "output_digest": self.output_digest,
                "exact": self.exact,
                "graph_n": self.graph_n,
                "graph_m": self.graph_m,
                "max_message_bits": self.max_message_bits,
                "total_message_bits": self.total_message_bits,
                "faults": {
                    "dropped": self.faults.dropped,
                    "duplicated": self.faults.duplicated,
                    "flipped": self.faults.flipped,
                },
                "error": self.error,
            },
            "timing": dict(self.timing),
            "cached": self.cached,
        }

    @classmethod
    def from_json_dict(cls, d: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from its JSONL object (cache replay)."""
        res = d["result"]
        return cls(
            spec=RunSpec.from_dict(d["spec"]),
            status=res["status"],
            output_kind=res["output_kind"],
            output_digest=res["output_digest"],
            exact=res["exact"],
            graph_n=res["graph_n"],
            graph_m=res["graph_m"],
            max_message_bits=res["max_message_bits"],
            total_message_bits=res["total_message_bits"],
            faults=FaultCounters(**res["faults"]),
            error=res["error"],
            timing=dict(d.get("timing", {})),
            cached=bool(d.get("cached", False)),
        )


def execute_run(spec: RunSpec, kernels: str | None = None) -> RunRecord:
    """Build the graph and protocol named by ``spec``, run one round, record.

    Module-level and argument-picklable, so process pools fan it out
    directly (``kernels`` rides along via ``functools.partial``).  The
    kernel backend scopes the *execution* only — it is excluded from the
    spec content hash because the parity gate guarantees identical records
    on every backend.  Library-level failures are part of the measurement —
    a frugality violation or a decode failure under fault injection becomes
    a ``status`` of ``"violation"``/``"error"``, never a crashed campaign.
    """
    if kernels is not None:
        from repro.sketching.kernels import use_kernels

        with use_kernels(kernels):
            return execute_run(spec)
    t0 = monotonic_clock()
    record = RunRecord(spec=spec, status="ok")
    try:
        g = spec.build_graph()
        protocol = spec.build_protocol()
        # Stamped before the round so violation/error records keep the
        # setup cost they actually paid (DESIGN.md §8 span taxonomy).
        record.timing["setup_seconds"] = monotonic_clock() - t0
        record.graph_n, record.graph_m = g.n, g.m
        referee = Referee(
            budget_bits=spec.budget_bits,
            shuffle_delivery=spec.shuffle_delivery,
            shuffle_seed=spec.seed,
            faults=spec.faults,
            fault_seed=spec.seed,
        )
        report: RunReport = referee.run(protocol, g)
    except FrugalityViolation as exc:
        record.status = "violation"
        record.error = str(exc)
    except (DecodeError, ReproError, TypeError) as exc:
        # Library failures *and* unsatisfiable specs (e.g. a hypercube
        # size that is not a power of two, bad builder params) become
        # recorded statuses — one bad grid point must not kill a campaign.
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    else:
        kind, digest = output_digest(report.output)
        record.output_kind = kind
        record.output_digest = digest
        record.exact = (report.output == g) if isinstance(report.output, LabeledGraph) else None
        record.max_message_bits = report.max_message_bits
        record.total_message_bits = report.total_message_bits
        if report.fault_counters is not None:
            record.faults = report.fault_counters
        # update(), not replace: setup_seconds is already in the dict.
        record.timing.update(
            local_seconds=report.local_seconds,
            referee_seconds=report.referee_seconds,
            global_seconds=report.global_seconds,
        )
    record.timing["wall_seconds"] = monotonic_clock() - t0
    return record
