"""Fault injection between the local and the global phase.

The paper's network is reliable: the referee "simply waits for all n
messages".  Real interconnects drop frames, deliver duplicates, and flip
bits, so robustness of the reconstruction protocols and the AGM sketches is
a scenario worth measuring.  This module models exactly the transit leg —
what happens to each message *after* the node sent it (so frugality budgets
are audited on the sent message) and *before* the referee indexes the
n-vector by ID.

Three independent per-message fault channels, applied in ID order so the
draw sequence is reproducible:

* **drop** — the message never arrives; the referee sees the zero-bit
  message from that node (Definition 1 still hands ``Γ^g_n`` an n-vector).
* **duplicate** — the message arrives twice; the referee keeps the last
  arrival.  Each copy traverses the flip channel independently, so a
  duplicate is only observable when a flip disagrees between copies (or in
  the delivered-bit accounting).
* **flip** — one uniformly random bit of the delivered copy is inverted.

All randomness comes from a dedicated :class:`random.Random` stream seeded
from ``(spec.seed, run_seed)``; the global ``random`` module is never
touched (see ``tests/engine/test_no_global_rng.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.model.message import Message

__all__ = ["FaultSpec", "FaultCounters", "FaultInjector"]


def _check_prob(name: str, p: float) -> None:
    if not (isinstance(p, (int, float)) and 0.0 <= p <= 1.0):
        raise ProtocolError(f"fault probability {name} must be in [0, 1], got {p!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a lossy transit leg.

    Probabilities are per message (``drop``, ``duplicate``) or per delivered
    copy (``flip``).  ``seed`` names the fault stream; combined with the
    per-run seed it fully determines every draw.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    flip: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_prob("drop", self.drop)
        _check_prob("duplicate", self.duplicate)
        _check_prob("flip", self.flip)

    @property
    def is_noop(self) -> bool:
        """Whether this spec can never alter a message vector."""
        return self.drop == 0.0 and self.duplicate == 0.0 and self.flip == 0.0

    def injector(self, run_seed: int = 0) -> "FaultInjector":
        """A fresh injector whose stream is ``(self.seed, run_seed)``."""
        return FaultInjector(self, run_seed=run_seed)

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "flip": self.flip,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        """Build from a JSON object; unknown keys are rejected."""
        unknown = set(d) - {"drop", "duplicate", "flip", "seed"}
        if unknown:
            raise ProtocolError(f"unknown FaultSpec keys: {sorted(unknown)}")
        return cls(**d)


@dataclass
class FaultCounters:
    """What the transit leg actually did to one message vector."""

    dropped: int = 0
    duplicated: int = 0
    flipped: int = 0

    @property
    def total(self) -> int:
        """Total number of fault events."""
        return self.dropped + self.duplicated + self.flipped


class FaultInjector:
    """Applies one :class:`FaultSpec` to tagged message vectors.

    The injector owns a private :class:`random.Random`; each
    :meth:`apply` continues the same stream, so an injector shared across
    runs yields correlated faults — campaigns build one injector per run.
    """

    def __init__(self, spec: FaultSpec, *, run_seed: int = 0) -> None:
        self.spec = spec
        self.run_seed = run_seed
        # A string seed routes through SHA-512 inside Random, giving the
        # same stream on every platform and in every worker process.
        self._rng = random.Random(f"repro.faults:{spec.seed}:{run_seed}")

    def _flip_one_bit(self, msg: Message) -> Message:
        if msg.bits == 0:
            return msg
        pos = self._rng.randrange(msg.bits)
        return Message(msg.acc ^ (1 << pos), msg.bits)

    def _deliver_copy(self, msg: Message, counters: FaultCounters) -> Message:
        if self.spec.flip and self._rng.random() < self.spec.flip:
            flipped = self._flip_one_bit(msg)
            if flipped is not msg:
                counters.flipped += 1
            return flipped
        return msg

    def apply(
        self, tagged: list[tuple[int, Message]]
    ) -> tuple[list[tuple[int, Message]], FaultCounters]:
        """Run every message through the faulty link, in ID order.

        Returns the delivered ``(id, message)`` list (same length and order
        — the referee re-indexes by ID anyway) plus the event counters.
        """
        counters = FaultCounters()
        delivered: list[tuple[int, Message]] = []
        for i, msg in tagged:
            if self.spec.drop and self._rng.random() < self.spec.drop:
                counters.dropped += 1
                delivered.append((i, Message.empty()))
                continue
            out = self._deliver_copy(msg, counters)
            if self.spec.duplicate and self._rng.random() < self.spec.duplicate:
                counters.duplicated += 1
                out = self._deliver_copy(msg, counters)  # last arrival wins
            delivered.append((i, out))
        return delivered, counters
