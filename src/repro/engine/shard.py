"""Sharded, checkpointed campaign execution: split, stream, mark, merge.

A :class:`~repro.engine.campaign.Campaign` is embarrassingly parallel
across runs, but until this module a campaign was a single monolithic
fan-out: kill a 10k-run sweep at run 9,999 and everything re-executes,
and there is no way to split one campaign across worker processes,
machines, or CI matrix jobs.  This module adds the four pieces that fix
that, each crash-consistent on its own:

**Deterministic sharding** — :func:`shard_of` assigns every deduplicated
:class:`~repro.engine.scenario.RunSpec` to one of ``n`` shards by its
*content hash*, never by its position in the grid.  Assignment is a
partition (disjoint and covering, by construction) and is stable under
scenario reordering and grid edits: adding a scenario never moves an
existing spec to a different shard, so completed shard streams stay
valid.

**The checkpoint manifest** — ``<results_dir>/<name>.manifest.json``
records the campaign name, shard count, the engine
:data:`~repro.engine.scenario.SPEC_VERSION`, and the full ordered list of
spec content hashes.  Concurrent shard workers are safe because every
write is atomic (temp file + ``os.replace``) and every field workers
disagree on is advisory: the ``completed`` key is a point-in-time
snapshot of the per-shard done markers (which stay authoritative), while
the identity fields are identical across workers of the same grid.  On
``resume`` the manifest is the contract — a stale ``SPEC_VERSION``,
renamed campaign, or changed shard count is refused with an actionable
message instead of silently mixing semantics.  An *edited grid* is not an
error: hash-based membership means surviving specs replay from the
streams, stale records are dropped, and the manifest is rewritten.

**Incremental per-shard streaming** — each shard appends finished records
to ``<name>.shard-<i>-of-<n>.jsonl`` through :class:`JsonlStreamWriter`,
which flushes *and fsyncs* after every line.  A crash can therefore tear
at most the final line; :func:`load_partial_records` detects a torn tail,
drops it, and reports it so ``resume`` re-runs exactly that spec.  When a
shard finishes, :func:`write_done_marker` atomically publishes
``<name>.shard-<i>-of-<n>.done`` with the record count — the completion
mark :func:`merge_shards` trusts.

**Merge** — :func:`merge_shards` verifies every shard's done marker and
record set against the manifest, then reassembles the canonical
``<name>.jsonl`` in manifest (= deterministic spec) order.  The merged
bytes equal a single-process run's output modulo the ``timing`` and
``cached`` sidecars, which is the invariant the crash/resume test battery
pins.

Crash-consistency invariants (DESIGN.md §7):

1. every durable artifact is either absent, complete, or — for shard
   streams only — torn in its final line;
2. the manifest and done markers only ever appear atomically;
3. resume never re-executes a spec whose record is durable, and always
   re-executes a spec whose record is absent or torn;
4. shard membership is a pure function of ``(spec content hash, n)``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError, ShardError, ShardIncomplete
from repro.engine.scenario import SPEC_VERSION, RunRecord, RunSpec

__all__ = [
    "MANIFEST_VERSION",
    "shard_of",
    "shard_specs",
    "manifest_path",
    "shard_stream_path",
    "shard_done_path",
    "ShardManifest",
    "JsonlStreamWriter",
    "atomic_write_json",
    "atomic_write_jsonl",
    "scan_partial_lines",
    "load_partial_records",
    "write_done_marker",
    "read_done_marker",
    "merge_shards",
]

#: Bumped whenever the manifest schema changes; a manifest from a newer
#: engine is refused rather than misread.
MANIFEST_VERSION = 1


# --------------------------------------------------------------------- #
# deterministic shard assignment
# --------------------------------------------------------------------- #


def shard_of(spec_hash: str, shards: int) -> int:
    """The shard owning ``spec_hash``, out of ``shards``.

    A pure function of the content hash — never of grid position — so
    membership survives scenario reordering and grid edits, and any two
    workers agree without coordination.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    return int(spec_hash[:16], 16) % shards


def shard_specs(specs: Sequence[RunSpec], shards: int) -> list[list[RunSpec]]:
    """Partition ``specs`` into ``shards`` ordered sub-lists.

    Disjoint and covering by construction; each sub-list preserves the
    deduplicated grid order, so per-shard streams are themselves
    deterministic.
    """
    out: list[list[RunSpec]] = [[] for _ in range(max(1, shards))]
    for spec in specs:
        out[shard_of(spec.content_hash(), shards)].append(spec)
    return out


# --------------------------------------------------------------------- #
# paths
# --------------------------------------------------------------------- #


def manifest_path(results_dir: str | pathlib.Path, name: str) -> pathlib.Path:
    """``<results_dir>/<name>.manifest.json``."""
    return pathlib.Path(results_dir) / f"{name}.manifest.json"


def shard_stream_path(
    results_dir: str | pathlib.Path, name: str, index: int, shards: int
) -> pathlib.Path:
    """``<results_dir>/<name>.shard-<i>-of-<n>.jsonl``."""
    return pathlib.Path(results_dir) / f"{name}.shard-{index}-of-{shards}.jsonl"


def shard_done_path(
    results_dir: str | pathlib.Path, name: str, index: int, shards: int
) -> pathlib.Path:
    """The atomic completion mark next to one shard's stream."""
    return pathlib.Path(results_dir) / f"{name}.shard-{index}-of-{shards}.done"


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` durably: temp file in the same directory, fsync, rename.

    ``os.replace`` is atomic on POSIX, so readers only ever observe the
    old bytes or the new bytes — never a torn file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: pathlib.Path, payload: Mapping[str, Any]) -> None:
    """Atomically publish one JSON document (manifest / done marker /
    metrics snapshot) — sorted keys, indented, fsync, rename."""
    _atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2))


_atomic_write_json = atomic_write_json


def atomic_write_jsonl(
    path: pathlib.Path, records: Iterable[Mapping[str, Any]]
) -> None:
    """Atomically publish a whole JSONL file in canonical line form.

    The complement of :class:`JsonlStreamWriter`: streams trade atomicity
    for incremental durability while a campaign runs; finished artifacts
    (the merged canonical JSONL, a canonical rewrite after a reordered
    resume) appear all-or-nothing so a crash can never publish a
    truncated file that reads as complete.
    """
    text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    _atomic_write_text(path, text)


# --------------------------------------------------------------------- #
# the checkpoint manifest
# --------------------------------------------------------------------- #


@dataclass
class ShardManifest:
    """The durable contract for one sharded (or resumable) campaign.

    Records *what* the campaign is — name, shard count, engine
    :data:`~repro.engine.scenario.SPEC_VERSION`, and the ordered spec
    content hashes — so a resume or a merge can refuse anything that no
    longer matches.  Completion state lives in the per-shard ``.done``
    markers (atomic, single-writer); :meth:`completion` reads them, and
    the copy under the ``"completed"`` key here is a convenience snapshot,
    refreshed opportunistically, never authoritative.
    """

    campaign: str
    shards: int
    spec_hashes: list[str]
    spec_version: int = SPEC_VERSION
    manifest_version: int = MANIFEST_VERSION

    @classmethod
    def from_specs(
        cls, campaign: str, specs: Sequence[RunSpec], shards: int
    ) -> "ShardManifest":
        """Build the manifest for a deduplicated grid."""
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        return cls(
            campaign=campaign,
            shards=shards,
            spec_hashes=[s.content_hash() for s in specs],
        )

    def assignments(self) -> dict[str, int]:
        """``spec hash -> owning shard`` for the whole grid."""
        return {h: shard_of(h, self.shards) for h in self.spec_hashes}

    def shard_hashes(self, index: int) -> list[str]:
        """The hashes one shard owns, in deterministic grid order."""
        if not 0 <= index < self.shards:
            raise ShardError(
                f"shard index {index} out of range for {self.shards} shard(s)"
            )
        return [h for h in self.spec_hashes if shard_of(h, self.shards) == index]

    def completion(self, results_dir: str | pathlib.Path) -> list[bool]:
        """Per-shard completion, read from the authoritative done markers."""
        return [
            shard_done_path(results_dir, self.campaign, i, self.shards).exists()
            for i in range(self.shards)
        ]

    def to_dict(
        self,
        *,
        completed: Sequence[bool] | None = None,
        metrics: Mapping[str, Any] | None = None,
    ) -> dict:
        """JSON object form (inverse of :meth:`from_dict`).

        ``metrics`` optionally embeds a
        :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` snapshot —
        advisory, like ``completed`` (:meth:`from_dict` ignores both).
        """
        out = {
            "manifest_version": self.manifest_version,
            "spec_version": self.spec_version,
            "campaign": self.campaign,
            "shards": self.shards,
            "spec_hashes": list(self.spec_hashes),
            "completed": list(completed) if completed is not None
            else [False] * self.shards,
        }
        if metrics is not None:
            out["metrics"] = dict(metrics)
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], *, where: str = "manifest") -> "ShardManifest":
        """Rebuild from JSON; refuses schemas newer than this engine."""
        for key in ("manifest_version", "spec_version", "campaign", "shards",
                    "spec_hashes"):
            if key not in d:
                raise ShardError(f"{where}: missing key {key!r}")
        if d["manifest_version"] > MANIFEST_VERSION:
            raise ShardError(
                f"{where}: manifest_version {d['manifest_version']} is newer "
                f"than this engine (understands <= {MANIFEST_VERSION})"
            )
        return cls(
            campaign=str(d["campaign"]),
            shards=int(d["shards"]),
            spec_hashes=[str(h) for h in d["spec_hashes"]],
            spec_version=int(d["spec_version"]),
            manifest_version=int(d["manifest_version"]),
        )

    def write(
        self,
        results_dir: str | pathlib.Path,
        *,
        metrics: Mapping[str, Any] | None = None,
    ) -> pathlib.Path:
        """Atomically publish the manifest (with a completion snapshot and,
        optionally, an advisory metrics snapshot)."""
        path = manifest_path(results_dir, self.campaign)
        _atomic_write_json(
            path,
            self.to_dict(completed=self.completion(results_dir), metrics=metrics),
        )
        return path

    @classmethod
    def load(cls, results_dir: str | pathlib.Path, name: str) -> "ShardManifest":
        """Load ``<results_dir>/<name>.manifest.json`` or raise ShardError."""
        path = manifest_path(results_dir, name)
        if not path.exists():
            raise ShardError(
                f"no checkpoint manifest at {path}; run the campaign without "
                "--resume first (it writes the manifest), or check --results-dir"
            )
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ShardError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise ShardError(f"{path} must hold a JSON object")
        return cls.from_dict(raw, where=str(path))

    def validate_for(self, campaign: str, shards: int) -> None:
        """Refuse to resume against a manifest that no longer matches.

        Checks, in order of loudness: engine :data:`SPEC_VERSION` (a stale
        manifest means the record semantics changed under the checkpoint),
        campaign name, and shard count (streams are per-count files).
        Each failure names the fix: re-run without ``resume`` (or delete
        the manifest) to restart the campaign from scratch.

        A *grid edit* is deliberately NOT a failure: shard membership is a
        pure function of the spec content hash, so completed stream
        records for surviving specs replay as-is — stale records are
        dropped and new specs executed.  The manifest is rewritten to the
        current grid before the run proceeds.
        """
        hint = (f"re-run without --resume (or delete "
                f"{manifest_path('<results_dir>', self.campaign).name}) to "
                "restart the campaign from scratch")
        if self.spec_version != SPEC_VERSION:
            raise ShardError(
                f"checkpoint manifest for {self.campaign!r} was written at "
                f"SPEC_VERSION {self.spec_version}, but this engine is at "
                f"SPEC_VERSION {SPEC_VERSION}; its records are not comparable "
                f"— {hint}"
            )
        if self.campaign != campaign:
            raise ShardError(
                f"checkpoint manifest names campaign {self.campaign!r}, "
                f"not {campaign!r} — {hint}"
            )
        if self.shards != shards:
            raise ShardError(
                f"campaign {campaign!r} was checkpointed with "
                f"{self.shards} shard(s) but is being resumed with {shards}; "
                f"shard streams are per-count — {hint}"
            )


# --------------------------------------------------------------------- #
# durable JSONL streaming and torn-line-tolerant loading
# --------------------------------------------------------------------- #


class JsonlStreamWriter:
    """Append JSONL records durably: one line, one flush, one fsync.

    The fsync-per-record discipline bounds crash damage to *at most one
    torn final line* — the invariant :func:`load_partial_records` (and
    therefore resume) relies on.  Use as a context manager.
    """

    def __init__(self, path: str | pathlib.Path, *, append: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if append else "w")
        self.written = 0

    def write(self, record: Mapping[str, Any]) -> None:
        """Durably append one canonical (sorted-keys) record line."""
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def scan_partial_lines(
    path: str | pathlib.Path,
    parse,
    *,
    what: str = "record",
) -> tuple[list, int, int]:
    """Scan any fsync-per-line JSONL stream, tolerating one torn tail.

    The machinery behind :func:`load_partial_records` (shard/record
    streams) and :func:`repro.obs.events.load_partial_events` (trace
    event streams), which share the :class:`JsonlStreamWriter`
    durability contract and therefore the same recovery rules.
    ``parse`` maps one raw line (bytes) to a value; any
    :class:`ValueError` / :class:`KeyError` / :class:`TypeError` /
    :class:`~repro.errors.ReproError` it raises marks the line malformed.

    Returns ``(values, torn, good_bytes)``: the cleanly-parsed values,
    how many trailing torn lines were dropped (0 or 1), and the byte
    offset just past the last good line — the truncation point a resume
    uses so appended lines start clean.

    Because the writer fsyncs per line, only the *final* line can be
    incomplete after a crash; a line counts only when it is
    newline-terminated **and** parses.  A malformed line anywhere but the
    tail means real corruption and raises
    :class:`~repro.errors.ShardError` instead of silently skipping data.
    A missing file is an empty stream.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0, 0
    data = path.read_bytes()
    # JSON is dumped with ensure_ascii, so byte and character offsets agree.
    lines = data.split(b"\n")  # a clean file ends with one b"" element
    values: list = []
    good_bytes = 0
    for i, raw in enumerate(lines):
        terminated = i < len(lines) - 1
        if not raw.strip():
            if terminated:
                good_bytes += len(raw) + 1
            continue
        parsed = None
        ok = False
        try:
            parsed = parse(raw)
            ok = True
        except (ValueError, KeyError, TypeError, ReproError):
            ok = False
        if not ok or not terminated:
            tail = all(not rest.strip() for rest in lines[i + 1:])
            if tail:
                return values, 1, good_bytes  # the one tear fsync allows
            raise ShardError(
                f"{path.name}:{i + 1}: corrupt {what} mid-stream; only the "
                f"final line can be torn — delete the {what} stream to "
                "recompute it"
            )
        values.append(parsed)
        good_bytes += len(raw) + 1
    return values, 0, good_bytes


def load_partial_records(
    path: str | pathlib.Path,
) -> tuple[list[RunRecord], int, int]:
    """Load a possibly-interrupted shard stream; tolerate a torn tail.

    ``(records, torn, good_bytes)`` — see :func:`scan_partial_lines`,
    which this wraps with the :class:`RunRecord` parser.  A
    terminator-less tail is re-run rather than trusted: recomputation is
    deterministic, so only the ``timing`` sidecar can differ.
    """
    return scan_partial_lines(
        path,
        lambda raw: RunRecord.from_json_dict(json.loads(raw.decode())),
        what="record",
    )


# --------------------------------------------------------------------- #
# completion marks
# --------------------------------------------------------------------- #


def write_done_marker(
    results_dir: str | pathlib.Path,
    name: str,
    index: int,
    shards: int,
    *,
    records: int,
    metrics: Mapping[str, Any] | None = None,
) -> pathlib.Path:
    """Atomically publish one shard's completion mark (record count inside).

    ``metrics`` optionally embeds the worker's
    :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` snapshot at
    completion time — advisory observability data (like the manifest's
    ``completed`` key), never consulted by :func:`merge_shards`.
    """
    path = shard_done_path(results_dir, name, index, shards)
    payload: dict[str, Any] = {
        "campaign": name,
        "shard": index,
        "shards": shards,
        "records": records,
        "spec_version": SPEC_VERSION,
    }
    if metrics is not None:
        payload["metrics"] = dict(metrics)
    _atomic_write_json(path, payload)
    return path


def read_done_marker(
    results_dir: str | pathlib.Path, name: str, index: int, shards: int
) -> dict | None:
    """The completion mark's payload, or ``None`` while the shard runs."""
    path = shard_done_path(results_dir, name, index, shards)
    if not path.exists():
        return None
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ShardError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise ShardError(f"{path} must hold a JSON object")
    return raw


# --------------------------------------------------------------------- #
# merge
# --------------------------------------------------------------------- #


def merge_shards(
    results_dir: str | pathlib.Path, name: str, *, compact: bool = False
) -> tuple[pathlib.Path, int]:
    """Reassemble shard streams into the canonical ``<name>.jsonl``.

    Verifies every shard against the manifest before writing a byte:
    each shard must carry a done marker, its stream must parse cleanly
    (an incomplete shard shows up as a missing marker, a torn line, or a
    missing spec), the marker's record count must match, and the union of
    streams must cover the manifest's spec-hash list exactly.  Records
    are then emitted in manifest order — the same deduplicated grid order
    a single-process run uses — so the merged file is byte-stable modulo
    the ``timing``/``cached`` sidecars.

    A monolithic (``shards=1``, no shard index) campaign has no
    shard-layout stream or marker — its canonical ``<name>.jsonl`` *is*
    the stream.  Merging one verifies grid coverage and rewrites the file
    canonically, so ``repro merge`` succeeds uniformly on anything a
    manifest describes (an incomplete monolithic stream is
    :class:`~repro.errors.ShardIncomplete`, fixed by ``--resume``).

    With ``compact=True`` the merge additionally runs
    :func:`repro.store.compact_campaign`: the columnar ``.columns``
    sibling is (re)written and the campaign's trend point is appended to
    the results directory's ``trends.jsonl`` — both derived artifacts,
    after the canonical file is already durable.

    Returns ``(path, records)``.
    """
    results_dir = pathlib.Path(results_dir)
    manifest = ShardManifest.load(results_dir, name)
    if manifest.spec_version != SPEC_VERSION:
        raise ShardError(
            f"checkpoint manifest for {name!r} was written at SPEC_VERSION "
            f"{manifest.spec_version}, but this engine is at SPEC_VERSION "
            f"{SPEC_VERSION}; re-run the campaign to refresh its shards"
        )

    out_path = results_dir / f"{name}.jsonl"
    by_hash: dict[str, RunRecord] = {}
    for index in range(manifest.shards):
        marker = read_done_marker(results_dir, name, index, manifest.shards)
        stream = shard_stream_path(results_dir, name, index, manifest.shards)
        if (marker is None and manifest.shards == 1 and not stream.exists()
                and out_path.exists()):
            # Monolithic layout: the canonical file *is* the one shard's
            # stream, and "complete" means it cleanly covers the grid —
            # there is no separate marker to demand.  Merging it is a
            # verify + canonical no-op, so `repro merge` works uniformly.
            records, torn, _good = load_partial_records(out_path)
            if torn or {r.spec.content_hash() for r in records} != set(
                    manifest.spec_hashes):
                raise ShardIncomplete(
                    f"campaign {name!r} has an incomplete monolithic stream "
                    f"({len(records)}/{len(manifest.spec_hashes)} records"
                    f"{', torn tail' if torn else ''}); resume it "
                    "(campaign ... --resume) before merging"
                )
            for record in records:
                by_hash[record.spec.content_hash()] = record
            continue
        if marker is None:
            raise ShardIncomplete(
                f"shard {index}/{manifest.shards} of {name!r} has no "
                "completion mark; run it (or resume it) before merging"
            )
        records, torn, _good = load_partial_records(stream)
        if torn:
            raise ShardIncomplete(
                f"shard {index}/{manifest.shards} of {name!r} has a torn "
                f"final line in {stream.name} despite a completion mark; "
                "resume that shard before merging"
            )
        if marker.get("records") != len(records):
            raise ShardIncomplete(
                f"shard {index}/{manifest.shards} of {name!r} marks "
                f"{marker.get('records')} record(s) complete but its stream "
                f"holds {len(records)}; resume that shard before merging"
            )
        expected = set(manifest.shard_hashes(index))
        for record in records:
            h = record.spec.content_hash()
            if h not in expected:
                raise ShardError(
                    f"shard {index}/{manifest.shards} of {name!r} holds a "
                    f"record for spec {h} it does not own (grid edit without "
                    "a manifest refresh?); re-run the campaign"
                )
            by_hash[h] = record

    missing = [h for h in manifest.spec_hashes if h not in by_hash]
    if missing:
        raise ShardIncomplete(
            f"merge of {name!r}: {len(missing)} spec(s) have no record "
            f"(first missing: {missing[0]}); resume the owning shard(s) "
            "before merging"
        )

    # All-or-nothing: a crash mid-merge must not publish a truncated
    # canonical file that downstream readers would take as complete.
    atomic_write_jsonl(
        out_path, (by_hash[h].to_json_dict() for h in manifest.spec_hashes)
    )
    manifest.write(results_dir)  # refresh the completion snapshot
    if compact:
        # Deferred import: repro.store sits above the engine layer.
        from repro.store import compact_campaign

        compact_campaign(results_dir, name)
    return out_path, len(manifest.spec_hashes)
