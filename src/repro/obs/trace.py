"""The span-based tracer: structured, crash-durable, provably free when off.

A :class:`Tracer` turns execution structure into a flat JSONL event
stream: *spans* (a named interval with a parent, forming a tree), *marks*
(a named instant), and *metrics snapshots*.  Every timestamp comes from
``time.perf_counter`` — the **same function object** as
:data:`repro.model.referee.monotonic_clock` (this module must not import
the model layer, which imports back into the engine; the tests pin the
identity) — so span durations and the ``*_seconds`` fields in campaign
records share one timebase and reconcile exactly.

Three design rules keep tracing honest:

* **Durations are authoritative, offsets are not.**  A span event carries
  ``t0`` and ``dur`` (never a redundant ``t1``).  Spans emitted
  retroactively for work that happened elsewhere — a pool worker's
  referee phases, say — are re-anchored onto the emitter's timeline with
  their measured durations copied bit-for-bit, so per-phase totals equal
  the record's ``*_seconds`` sums *exactly* while offsets stay synthetic.
* **Single writer.**  Only the process that owns the event stream emits;
  workers report durations through their return values.  The stream
  reuses the fsync-per-line discipline of
  :class:`repro.engine.shard.JsonlStreamWriter` (injected by the caller,
  never constructed here), so a ``kill -9`` tears at most one line.
* **Off means free.**  :data:`NULL_TRACER` is the ambient default; its
  ``span()`` returns one reusable no-op context manager and every emit is
  a constant-time early return.  The ``trace-overhead`` benchmark pins
  this under a ``min_speedup`` floor.

Ambient use (the ``obs.span(...)`` form)::

    from repro import obs

    with obs.use_tracer(tracer):
        with obs.span("decode", n=64):
            ...

The ambient tracer is a :mod:`contextvars` variable: it does **not**
propagate into pool workers (fresh threads and processes start with the
default context), which is exactly the single-writer rule enforced by
construction.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import time
from collections.abc import Callable, Iterator, Mapping
from typing import Any, Protocol

__all__ = [
    "EVENT_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "span",
    "mark",
]

#: Event-stream schema version; :mod:`repro.obs.events` validates against
#: it and refuses streams from a newer engine.
EVENT_VERSION = 1

#: The tracer's clock — ``time.perf_counter``, which is the very same
#: object :data:`repro.model.referee.monotonic_clock` names (pinned by
#: test): one timebase for spans and record ``*_seconds`` fields alike.
clock = time.perf_counter


class EventSink(Protocol):  # pragma: no cover - typing only
    """Anything events can be written to (``JsonlStreamWriter`` fits)."""

    def write(self, event: Mapping[str, Any]) -> None: ...

    def close(self) -> None: ...


class Span:
    """One open interval; a context manager that emits itself on exit.

    Attributes set via :meth:`set` (or the constructor) land in the
    event's ``attrs`` object.  The span id and parent id are assigned by
    the owning :class:`Tracer` when the span opens.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent", "attrs", "t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent: int | None = None
        self.attrs = attrs
        self.t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable inside the block."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.span_id = self._tracer._open(self)
        self.t0 = clock()
        return self

    def __exit__(self, *exc: object) -> None:
        dur = clock() - self.t0
        self._tracer._close(self, dur)


class Tracer:
    """Emits span/mark/metrics events to a sink and to subscribers.

    Parameters
    ----------
    writer:
        Optional event sink with ``write(dict)``/``close()`` — in the
        engine this is a :class:`repro.engine.shard.JsonlStreamWriter`
        on ``<results_dir>/<name>.events.jsonl`` (injected, so this
        module stays import-light).  ``None`` keeps events in-process
        (subscribers only) — how the live progress reporter runs without
        ``--trace``.
    subscribers:
        Callables invoked with every event dict after it is written.
        Subscriber exceptions propagate: a broken consumer should fail
        the run loudly, not silently drop telemetry.
    """

    #: Flipped on the null tracer; instrumentation sites guard on it.
    enabled = True

    def __init__(
        self,
        writer: EventSink | None = None,
        subscribers: Iterator[Callable[[dict], None]] | tuple = (),
    ) -> None:
        self._writer = writer
        self._subscribers = list(subscribers)
        self._ids = itertools.count(1)
        self._stack: list[int] = []

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs: Any) -> Span:
        """An open-on-enter, emit-on-exit span context manager."""
        return Span(self, name, attrs)

    def current_span_id(self) -> int | None:
        """The innermost open span's id (parent for retro emissions)."""
        return self._stack[-1] if self._stack else None

    def _open(self, span: Span) -> int:
        span.parent = self.current_span_id()
        span_id = next(self._ids)
        self._stack.append(span_id)
        return span_id

    def _close(self, span: Span, dur: float) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self.emit({
            "v": EVENT_VERSION,
            "kind": "span",
            "name": span.name,
            "span": span.span_id,
            "parent": span.parent,
            "t0": span.t0,
            "dur": dur,
            "attrs": dict(span.attrs),
        })

    def emit_span(
        self,
        name: str,
        t0: float,
        dur: float,
        *,
        parent: int | None = None,
        **attrs: Any,
    ) -> int:
        """Emit a span for an interval that already happened (retro span).

        ``dur`` is recorded exactly as given — the mechanism that lets the
        campaign copy a record's ``local_seconds`` into a ``local`` span
        bit-for-bit.  ``parent`` defaults to the innermost open span.
        Returns the new span's id so callers can parent children onto it.
        """
        span_id = next(self._ids)
        self.emit({
            "v": EVENT_VERSION,
            "kind": "span",
            "name": name,
            "span": span_id,
            "parent": self.current_span_id() if parent is None else parent,
            "t0": t0,
            "dur": dur,
            "attrs": attrs,
        })
        return span_id

    # ------------------------------------------------------------------ #
    # marks and metrics
    # ------------------------------------------------------------------ #

    def mark(self, name: str, **attrs: Any) -> None:
        """Emit a named instant (campaign-start, resume-replay, ...)."""
        self.emit({
            "v": EVENT_VERSION,
            "kind": "mark",
            "name": name,
            "t": clock(),
            "attrs": attrs,
        })

    def metrics_snapshot(self, metrics: Mapping[str, Any]) -> None:
        """Emit a metrics snapshot (the registry's ``to_dict`` payload)."""
        self.emit({
            "v": EVENT_VERSION,
            "kind": "metrics",
            "t": clock(),
            "metrics": dict(metrics),
        })

    def emit(self, event: dict) -> None:
        """Write one event to the sink, then fan out to subscribers."""
        if self._writer is not None:
            self._writer.write(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def close(self) -> None:
        """Close the sink (subscribers need no teardown)."""
        if self._writer is not None:
            self._writer.close()


class _NullSpan:
    """The reusable do-nothing span the null tracer hands out."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op tracer: every operation is a constant-time early return.

    This is the ambient default, so instrumentation sites cost one
    attribute load and a falsy check when tracing is off — the overhead
    contract the ``trace-overhead`` benchmark pins.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def emit_span(self, name: str, t0: float, dur: float, *,
                  parent: int | None = None, **attrs: Any) -> int:
        return 0

    def mark(self, name: str, **attrs: Any) -> None:
        return None

    def metrics_snapshot(self, metrics: Mapping[str, Any]) -> None:
        return None

    def emit(self, event: dict) -> None:
        return None

    def close(self) -> None:
        return None


#: The shared no-op tracer (also the ambient default).
NULL_TRACER = NullTracer()

_current: contextvars.ContextVar["Tracer | NullTracer"] = contextvars.ContextVar(
    "repro-obs-tracer", default=NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer (:data:`NULL_TRACER` unless :func:`use_tracer`)."""
    return _current.get()


@contextlib.contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Install ``tracer`` as the ambient tracer for the ``with`` block.

    Context-local: pool workers (fresh threads/processes) never inherit
    it, which enforces the single-writer rule by construction.
    """
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)


def span(name: str, **attrs: Any):
    """``obs.span("phase", **attrs)`` — a span on the *ambient* tracer."""
    return current_tracer().span(name, **attrs)


def mark(name: str, **attrs: Any) -> None:
    """A mark on the ambient tracer."""
    current_tracer().mark(name, **attrs)
