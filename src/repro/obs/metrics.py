"""Counters, gauges, and streaming histograms for the execution stack.

A :class:`MetricsRegistry` is a plain in-process accumulator in the
Prometheus naming style: three instrument families, optional label sets,
no background threads, no dependencies.  The engine keeps one per
campaign run — runs started/completed/cached/failed, fault injections by
kind, bits encoded, cache hit ratio, per-worker task counts and busy
time — and snapshots it into :class:`~repro.engine.campaign.CampaignResult`,
the shard manifest, ``<name>.metrics.json``, and the trace event stream.

Instruments are keyed by ``(name, sorted labels)`` rendered as
``name{k="v",...}`` — the exact series key Prometheus' text format uses,
so :func:`render_prometheus` is a direct dump.  Histograms are streaming
(count/total/min/max; mean derived at snapshot time): O(1) memory per
series regardless of campaign size.

Everything in a snapshot is sorted, so ``to_dict()`` output is stable and
diffable — the same discipline as every other JSON artifact this library
writes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.errors import ObsError

__all__ = [
    "MetricsRegistry",
    "render_prometheus",
    "load_metrics_file",
]


def _series_key(name: str, labels: dict[str, Any]) -> str:
    """``name{k="v",...}`` with sorted labels; bare ``name`` when none."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Three instrument families behind one accumulator.

    * :meth:`inc` — monotonically increasing counters (events, totals);
    * :meth:`set_gauge` — point-in-time values (ratios, sizes);
    * :meth:`observe` — streaming histograms (durations).

    Not thread-safe by design: the engine's single-writer rule means all
    metric updates happen on the thread that lands records.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (default 1) to the counter series."""
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge series to ``value`` (last write wins)."""
        self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Fold ``value`` into the histogram series (O(1) memory)."""
        key = _series_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            self._histograms[key] = {
                "count": 1, "total": value, "min": value, "max": value,
            }
        else:
            h["count"] += 1
            h["total"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)

    def counter(self, name: str, **labels: Any) -> float:
        """Current counter value (0 when the series never fired)."""
        return self._counters.get(_series_key(name, labels), 0)

    def gauge(self, name: str, **labels: Any) -> float:
        """Current gauge value (0 when the series was never set)."""
        return self._gauges.get(_series_key(name, labels), 0)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        The aggregation a long-lived service needs: each finished
        campaign's snapshot folds into the fleet-level registry so
        ``/metrics`` shows cumulative totals.  Counters add, gauges take
        the incoming value (last write wins — same as :meth:`set_gauge`),
        histograms fold count/total/min/max (the derived ``mean`` of the
        incoming snapshot is ignored and recomputed at the next
        :meth:`to_dict`).  Raises :class:`ObsError` on a snapshot missing
        one of the three sections, so a truncated file cannot fold in
        silently.
        """
        for section in ("counters", "gauges", "histograms"):
            if section not in snapshot:
                raise ObsError(
                    f"metrics snapshot is missing the {section!r} section"
                )
        for key, value in snapshot["counters"].items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot["gauges"].items():
            self._gauges[key] = value
        for key, incoming in snapshot["histograms"].items():
            h = self._histograms.get(key)
            if h is None:
                self._histograms[key] = {
                    "count": incoming["count"], "total": incoming["total"],
                    "min": incoming["min"], "max": incoming["max"],
                }
            else:
                h["count"] += incoming["count"]
                h["total"] += incoming["total"]
                h["min"] = min(h["min"], incoming["min"])
                h["max"] = max(h["max"], incoming["max"])

    def to_dict(self) -> dict[str, Any]:
        """The stable snapshot: sorted keys, histogram means derived."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: {**h, "mean": h["total"] / h["count"]}
                for key, h in sorted(self._histograms.items())
            },
        }


def render_prometheus(snapshot: dict[str, Any], *, prefix: str = "repro") -> str:
    """The snapshot in Prometheus text exposition format.

    Counters and gauges map directly; a streaming histogram becomes the
    conventional ``_count`` / ``_sum`` pair plus ``_min`` / ``_max``
    gauges.  Series order follows the (sorted) snapshot, so the output is
    byte-stable for identical snapshots.
    """
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ObsError(f"metrics snapshot is missing the {section!r} section")

    def prefixed(series: str) -> str:
        name, brace, labels = series.partition("{")
        return f"{prefix}_{name}{brace}{labels}"

    lines: list[str] = []
    typed: set[str] = set()

    def emit(series: str, value: float, mtype: str) -> None:
        base = series.partition("{")[0]
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {prefix}_{base} {mtype}")
        lines.append(f"{prefixed(series)} {value}")

    for series, value in snapshot["counters"].items():
        emit(series, value, "counter")
    for series, value in snapshot["gauges"].items():
        emit(series, value, "gauge")
    for series, h in snapshot["histograms"].items():
        name, brace, labels = series.partition("{")
        suffix = brace + labels
        emit(f"{name}_count{suffix}", h["count"], "counter")
        emit(f"{name}_sum{suffix}", h["total"], "counter")
        emit(f"{name}_min{suffix}", h["min"], "gauge")
        emit(f"{name}_max{suffix}", h["max"], "gauge")
    return "\n".join(lines) + "\n"


def load_metrics_file(path: str | pathlib.Path) -> dict[str, Any]:
    """Load a ``<name>.metrics.json`` sidecar; raise :class:`ObsError`.

    The file is the atomic snapshot :meth:`Campaign.run
    <repro.engine.campaign.Campaign.run>` writes next to the records; the
    returned dict carries ``campaign`` and the ``metrics`` snapshot.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ObsError(
            f"no metrics snapshot at {path}; run the campaign first "
            "(every persisted run writes one)"
        )
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(raw, dict) or "metrics" not in raw:
        raise ObsError(f"{path} does not look like a metrics snapshot "
                       "(missing the 'metrics' key)")
    metrics = raw["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            raise ObsError(
                f"{path}: metrics snapshot is missing the {section!r} section"
            )
    return raw
