"""The span taxonomy: every span name the engine emits, as registry entries.

Spans are pluggable surface like protocols or benchmarks — downstream
tooling (``repro trace``, the future trend store) keys on their names —
so the names live in the registry (kind ``"span"``) where
``python -m repro list --kind span`` and the api-surface CI gate can see
them.  Each factory returns the span's contract: the attribute keys its
``attrs`` object carries.  Registering a new instrumentation site means
adding an entry here, which makes growing the taxonomy an explicit,
reviewed change exactly like growing any other registry.

Capability tags mark the emitting layer (``engine`` / ``model``) and
whether the span is *retro* — emitted after the fact with an
authoritative duration but a synthetic anchor (see
:mod:`repro.obs.trace`).
"""

from __future__ import annotations

from repro.registry import register

__all__ = ["SPAN_NAMES"]

#: Every span name the engine can emit, in tree order.
SPAN_NAMES = ("campaign", "shard", "run", "setup", "local", "referee", "global")


@register("campaign", kind="span", capabilities=("engine",), params={},
          summary="Root span: one Campaign.run invocation, wall to wall.")
def _span_campaign() -> tuple[str, ...]:
    return ("campaign",)


@register("shard", kind="span", capabilities=("engine",), params={},
          summary="One shard's stream loop inside a sharded campaign.")
def _span_shard() -> tuple[str, ...]:
    return ("shard", "shards")


@register("run", kind="span", capabilities=("engine", "retro"), params={},
          summary="One landed record; dur is the record's wall_seconds "
                  "(cache-load time for hits).")
def _span_run() -> tuple[str, ...]:
    return ("spec", "scenario", "protocol", "n", "seed", "status", "cached",
            "worker", "busy_seconds", "landed_seconds")


@register("setup", kind="span", capabilities=("model", "retro"), params={},
          summary="Graph + protocol construction before the round "
                  "(timing.setup_seconds).")
def _span_setup() -> tuple[str, ...]:
    return ()


@register("local", kind="span", capabilities=("model", "retro"), params={},
          summary="The local phase: every node computes its message "
                  "(timing.local_seconds).")
def _span_local() -> tuple[str, ...]:
    return ("protocol", "n")


@register("referee", kind="span", capabilities=("model", "retro"), params={},
          summary="Between the phases: fault injection and delivery "
                  "shuffling (timing.referee_seconds).")
def _span_referee() -> tuple[str, ...]:
    return ("protocol", "n")


@register("global", kind="span", capabilities=("model", "retro"), params={},
          summary="The global phase: the referee decodes the messages "
                  "(timing.global_seconds).")
def _span_global() -> tuple[str, ...]:
    return ("protocol", "n")
