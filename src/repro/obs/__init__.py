"""repro.obs — structured tracing, metrics, and live progress.

The observability substrate for the whole execution stack (DESIGN.md §8):

* :mod:`repro.obs.trace` — the span tracer.  ``obs.span("phase",
  **attrs)`` opens a span on the ambient tracer; the engine streams
  events to ``<results_dir>/<name>.events.jsonl`` through the same
  fsync-per-line writer the record streams use, so traces survive
  ``kill -9``.  Off by default and provably free: the ambient default is
  :data:`NULL_TRACER`, whose every operation is a constant-time no-op
  (pinned by the ``trace-overhead`` benchmark).
* :mod:`repro.obs.metrics` — counters / gauges / streaming histograms,
  snapshotted into :class:`~repro.engine.campaign.CampaignResult`, the
  shard manifest, ``<name>.metrics.json``, and the event stream.
* :mod:`repro.obs.progress` — a live progress reporter (rate, ETA,
  per-shard completion) driven by the same event bus, TTY-aware.
* :mod:`repro.obs.events` — the event schema: strict validation and
  torn-tail-tolerant loading (lazy: pulls in the engine's shard I/O).
* :mod:`repro.obs.report` — ``repro trace``'s phase breakdown, critical
  path, and slowest-run analysis (lazy: pulls in the analysis tables).
* :mod:`repro.obs.taxonomy` — every span name, registered under registry
  kind ``"span"`` so the taxonomy is introspectable and CI-pinned.

Import discipline: this package's eager modules (trace, metrics,
progress) depend only on the stdlib and :mod:`repro.errors` /
:mod:`repro.registry`, because the *model and engine layers import the
tracer* — the event sink is injected by the campaign, never constructed
here, which is what keeps the dependency arrow pointing one way.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.obs.metrics import MetricsRegistry, load_metrics_file, render_prometheus
from repro.obs.progress import ProgressReporter
from repro.obs.trace import (
    EVENT_VERSION,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    mark,
    span,
    use_tracer,
)

__all__ = [
    "EVENT_VERSION",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "current_tracer",
    "use_tracer",
    "span",
    "mark",
    "MetricsRegistry",
    "render_prometheus",
    "load_metrics_file",
    "ProgressReporter",
    # lazy (see __getattr__): repro.obs.events / repro.obs.report names
    "events_path",
    "metrics_path",
    "validate_event",
    "load_events",
    "load_partial_events",
    "trace_report_data",
    "render_trace_report",
]

_LAZY = {
    "events_path": "repro.obs.events",
    "metrics_path": "repro.obs.events",
    "validate_event": "repro.obs.events",
    "load_events": "repro.obs.events",
    "load_partial_events": "repro.obs.events",
    "trace_report_data": "repro.obs.report",
    "render_trace_report": "repro.obs.report",
}


def __getattr__(name: str) -> Any:
    # PEP 562: events/report import the engine/analysis layers, which
    # import this package — resolving them lazily breaks the cycle.
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value
