"""Live campaign progress: rate, ETA, per-shard completion, CI-safe output.

A :class:`ProgressReporter` is a tracer *subscriber* — it consumes the
same event stream ``--trace`` persists (run spans, shard marks, resume
replays) and renders a one-line status to stderr.  Because it rides the
event bus it needs no hooks of its own in the engine: anything the trace
records, progress can show, and the two can never disagree about what
happened.

Two output modes, chosen by ``stream.isatty()`` unless forced:

* **TTY** — a single line redrawn in place (``\\r``), rate-limited to
  ``min_interval`` seconds so a fast campaign does not melt the terminal;
* **line mode** (CI logs, redirected stderr) — a full line printed at
  most every ``line_interval`` seconds, plus one final summary line, so
  logs stay short and greppable.

The ETA is the naive completed-so-far rate extrapolation — honest for
grids of similar-cost runs (the common case), clearly labelled either
way.  Cached and resumed runs count toward completion but are excluded
from the rate, so a warm cache does not fake an absurd ETA for the cold
remainder.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

__all__ = ["ProgressReporter"]

_clock = time.perf_counter


class ProgressReporter:
    """Renders campaign progress from trace events (see module docstring).

    Parameters
    ----------
    stream:
        Output stream; defaults to ``sys.stderr`` resolved lazily at
        first event (so pytest capture and late redirection behave).
    tty:
        Force TTY (``True``) or line mode (``False``); default sniffs
        ``stream.isatty()``.
    min_interval / line_interval:
        Redraw rate limits for the two modes, in seconds.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        tty: bool | None = None,
        min_interval: float = 0.1,
        line_interval: float = 2.0,
    ) -> None:
        self._stream = stream
        self._tty = tty
        self.min_interval = min_interval
        self.line_interval = line_interval
        self.campaign = ""
        self.total = 0        # runs this invocation will land
        self.done = 0         # landed (executed + cached + replayed)
        self.cached = 0
        self.resumed = 0
        self.executed = 0
        self.shard: tuple[int, int] | None = None  # (index, shards)
        self._t_start: float | None = None
        self._t_last_draw = float("-inf")
        self._drew_tty_line = False

    # ------------------------------------------------------------------ #
    # event bus
    # ------------------------------------------------------------------ #

    def on_event(self, event: dict) -> None:
        """Tracer subscriber entry point: fold one event, maybe redraw."""
        kind, name = event.get("kind"), event.get("name")
        attrs: dict[str, Any] = event.get("attrs", {})
        if kind == "mark" and name == "campaign-start":
            self.campaign = attrs.get("campaign", "")
            self.total = int(attrs.get("runs", 0))
            self._t_start = _clock()
            self._draw(force=True)
        elif kind == "mark" and name == "shard-start":
            if attrs.get("shards", 1) > 1 and attrs.get("shard") is not None:
                self.shard = (int(attrs["shard"]), int(attrs["shards"]))
                self._draw(force=True)
        elif kind == "mark" and name == "resume-replay":
            replayed = int(attrs.get("replayed", 0))
            self.done += replayed
            self.resumed += replayed
            self._draw(force=True)
        elif kind == "span" and name == "run":
            self.done += 1
            if attrs.get("cached"):
                self.cached += 1
            else:
                self.executed += 1
            self._draw()
        elif kind == "mark" and name == "campaign-end":
            self._finish()

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def _resolve_stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _is_tty(self, stream: TextIO) -> bool:
        if self._tty is not None:
            return self._tty
        isatty = getattr(stream, "isatty", None)
        return bool(isatty()) if callable(isatty) else False

    def _status(self) -> str:
        parts = [f"{self.campaign or 'campaign'}: {self.done}/{self.total} runs"]
        extras = []
        if self.cached:
            extras.append(f"{self.cached} cached")
        if self.resumed:
            extras.append(f"{self.resumed} resumed")
        if extras:
            parts.append(f"({', '.join(extras)})")
        elapsed = 0.0 if self._t_start is None else _clock() - self._t_start
        if self.executed and elapsed > 0:
            rate = self.executed / elapsed
            parts.append(f"{rate:.1f} runs/s")
            remaining = max(0, self.total - self.done)
            if remaining and rate > 0:
                parts.append(f"eta {remaining / rate:.1f}s")
        if self.shard is not None:
            parts.append(f"[shard {self.shard[0] + 1}/{self.shard[1]}]")
        return " ".join(parts)

    def _draw(self, *, force: bool = False) -> None:
        stream = self._resolve_stream()
        tty = self._is_tty(stream)
        now = _clock()
        interval = self.min_interval if tty else self.line_interval
        if not force and now - self._t_last_draw < interval:
            return
        self._t_last_draw = now
        if tty:
            stream.write("\r\x1b[K" + self._status())
            self._drew_tty_line = True
        else:
            stream.write(self._status() + "\n")
        stream.flush()

    def _finish(self) -> None:
        stream = self._resolve_stream()
        if self._is_tty(stream):
            if self._drew_tty_line:
                stream.write("\r\x1b[K")
            stream.write(self._status() + " done\n")
        else:
            stream.write(self._status() + " done\n")
        stream.flush()
