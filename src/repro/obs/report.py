"""Trace analysis for ``repro trace``: phase times, critical path, top-k.

Consumes a validated event list (see :mod:`repro.obs.events`) and
produces three read-outs:

* **phase-time breakdown** — spans grouped by name: count, total, mean,
  max seconds, and share of the traced total.  Durations are summed from
  the authoritative ``dur`` fields, so the ``local`` / ``referee`` /
  ``global`` rows reconcile exactly with the ``*_seconds`` sums in the
  campaign's records (same clock, same floats).
* **critical path** — the chain of heaviest children from the root span
  down: at each level, the child with the largest duration.  With
  synthetic offsets (retro spans from pool workers) overlap information
  is gone, so this is the *attribution* chain — where the time lives —
  not a scheduling-theoretic longest path.
* **slowest runs** — the top-k ``run`` spans by duration, labelled by
  spec hash and scenario, pointing straight at the grid points worth
  profiling.

All pure functions over the event list; the CLI wires them to files.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.errors import ObsError

__all__ = [
    "phase_breakdown",
    "critical_path",
    "slowest_runs",
    "trace_report_data",
    "render_trace_report",
]


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("kind") == "span"]


def phase_breakdown(events: list[dict]) -> list[dict[str, Any]]:
    """Per-span-name rollup, heaviest total first.

    ``share`` is each name's fraction of the root total when a root span
    exists (the ``campaign`` span), else of the all-span sum — so nested
    spans can legitimately sum past 1.0 of themselves but read sensibly
    against the run's wall time.
    """
    spans = _spans(events)
    totals: dict[str, dict[str, Any]] = defaultdict(
        lambda: {"count": 0, "total": 0.0, "max": 0.0}
    )
    for s in spans:
        agg = totals[s["name"]]
        agg["count"] += 1
        agg["total"] += s["dur"]
        agg["max"] = max(agg["max"], s["dur"])
    roots = [s for s in spans if s.get("parent") is None]
    denom = (sum(s["dur"] for s in roots) or
             sum(s["dur"] for s in spans) or 1.0)
    out = []
    for name, agg in sorted(totals.items(), key=lambda kv: -kv[1]["total"]):
        out.append({
            "name": name,
            "count": agg["count"],
            "total_seconds": agg["total"],
            "mean_seconds": agg["total"] / agg["count"],
            "max_seconds": agg["max"],
            "share": agg["total"] / denom,
        })
    return out


def critical_path(events: list[dict]) -> list[dict[str, Any]]:
    """The heaviest-child chain from the root span down (see module doc)."""
    spans = _spans(events)
    if not spans:
        return []
    children: dict[int | None, list[dict]] = defaultdict(list)
    for s in spans:
        children[s.get("parent")].append(s)
    roots = children.get(None, [])
    if not roots:
        return []
    node = max(roots, key=lambda s: s["dur"])
    path = []
    while node is not None:
        path.append({
            "name": node["name"],
            "span": node["span"],
            "dur_seconds": node["dur"],
            "attrs": node.get("attrs", {}),
        })
        kids = children.get(node["span"], [])
        node = max(kids, key=lambda s: s["dur"]) if kids else None
    return path


def slowest_runs(events: list[dict], *, top: int = 10) -> list[dict[str, Any]]:
    """The top-k ``run`` spans by duration, slowest first."""
    runs = [s for s in _spans(events) if s["name"] == "run"]
    runs.sort(key=lambda s: -s["dur"])
    out = []
    for s in runs[:top]:
        attrs = s.get("attrs", {})
        out.append({
            "spec": attrs.get("spec", ""),
            "scenario": attrs.get("scenario", ""),
            "protocol": attrs.get("protocol", ""),
            "n": attrs.get("n"),
            "seed": attrs.get("seed"),
            "status": attrs.get("status", ""),
            "cached": bool(attrs.get("cached", False)),
            "dur_seconds": s["dur"],
        })
    return out


def trace_report_data(events: list[dict], *, top: int = 10) -> dict[str, Any]:
    """The full ``repro trace --json`` payload."""
    spans = _spans(events)
    marks = [e for e in events if e.get("kind") == "mark"]
    return {
        "events": len(events),
        "spans": len(spans),
        "marks": {name: sum(1 for m in marks if m["name"] == name)
                  for name in sorted({m["name"] for m in marks})},
        "phases": phase_breakdown(events),
        "critical_path": critical_path(events),
        "slowest_runs": slowest_runs(events, top=top),
    }


def _fmt_s(seconds: float) -> str:
    return f"{seconds:.6f}"


def render_trace_report(
    events: list[dict], *, top: int = 10, source: str = "trace"
) -> str:
    """The human-readable ``repro trace`` report (aligned tables)."""
    from repro.analysis.tables import format_table

    if not events:
        raise ObsError(f"{source}: no events to report on (empty stream)")
    data = trace_report_data(events, top=top)
    blocks = []

    phase_rows = [
        [p["name"], p["count"], _fmt_s(p["total_seconds"]),
         _fmt_s(p["mean_seconds"]), _fmt_s(p["max_seconds"]),
         f"{100 * p['share']:.1f}%"]
        for p in data["phases"]
    ]
    blocks.append(format_table(
        f"{source} — phase-time breakdown ({data['spans']} spans, "
        f"{data['events']} events)",
        ["phase", "count", "total s", "mean s", "max s", "share"],
        phase_rows,
    ))

    if data["critical_path"]:
        path_rows = []
        for depth, node in enumerate(data["critical_path"]):
            label = node["name"]
            attrs = node["attrs"]
            tag = attrs.get("spec") or attrs.get("campaign") or \
                (f"shard {attrs['shard']}" if "shard" in attrs else "")
            path_rows.append(["  " * depth + label, str(tag),
                              _fmt_s(node["dur_seconds"])])
        blocks.append(format_table(
            "critical path (heaviest child at each level)",
            ["span", "which", "dur s"], path_rows,
        ))

    if data["slowest_runs"]:
        run_rows = [
            [r["spec"], r["scenario"], r["protocol"],
             r["n"] if r["n"] is not None else "", r["status"],
             "yes" if r["cached"] else "", _fmt_s(r["dur_seconds"])]
            for r in data["slowest_runs"]
        ]
        blocks.append(format_table(
            f"slowest runs (top {len(run_rows)})",
            ["spec", "scenario", "protocol", "n", "status", "cached", "dur s"],
            run_rows,
        ))
    return "\n\n".join(blocks)
