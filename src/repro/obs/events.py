"""The trace event schema: validation, paths, and torn-tail-tolerant I/O.

One campaign run with ``--trace`` streams its telemetry to
``<results_dir>/<name>.events.jsonl`` (per-shard workers to
``<name>.shard-<i>-of-<n>.events.jsonl``) through the same
fsync-per-line :class:`~repro.engine.shard.JsonlStreamWriter` the record
streams use, so a crash tears at most the final event.  This module is
the read side of that contract, in the mold of
:mod:`repro.results.records`: a strict validator (unknown keys, wrong
types, negative durations all refused), version gating, and the
torn-tail scanner shared with shard streams.

Three event kinds, all carrying ``v`` = :data:`EVENT_VERSION`:

``span``
    A named interval in the span tree: ``span`` (id), ``parent`` (id or
    null), ``t0`` (monotonic-clock anchor), ``dur`` (seconds —
    authoritative; see :mod:`repro.obs.trace` on retro spans), ``attrs``.
``mark``
    A named instant: ``t``, ``attrs``.  The engine emits
    ``campaign-start`` / ``shard-start`` / ``resume-replay`` /
    ``worker-crash`` / ``campaign-end``.
``metrics``
    A :class:`~repro.obs.metrics.MetricsRegistry` snapshot at ``t``.

Validation failures raise :class:`~repro.errors.ObsError` with the same
file/line/field context the record validator gives for records.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Mapping
from typing import Any

from repro.errors import ObsError
from repro.obs.trace import EVENT_VERSION

__all__ = [
    "EVENT_VERSION",
    "EVENT_KINDS",
    "events_path",
    "metrics_path",
    "validate_event",
    "load_partial_events",
    "load_events",
]

EVENT_KINDS = ("span", "mark", "metrics")

_SPAN_FIELDS: dict[str, tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "name": (str,),
    "span": (int,),
    "parent": (int, type(None)),
    "t0": (int, float),
    "dur": (int, float),
    "attrs": (dict,),
}

_MARK_FIELDS: dict[str, tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "name": (str,),
    "t": (int, float),
    "attrs": (dict,),
}

_METRICS_FIELDS: dict[str, tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "t": (int, float),
    "metrics": (dict,),
}

_FIELDS_BY_KIND = {
    "span": _SPAN_FIELDS,
    "mark": _MARK_FIELDS,
    "metrics": _METRICS_FIELDS,
}

#: JSON scalars allowed as span/mark attribute values.
_ATTR_SCALARS = (str, int, float, bool, type(None))


# --------------------------------------------------------------------- #
# paths
# --------------------------------------------------------------------- #


def _stem(name: str, shard_index: int | None, shards: int | None) -> str:
    if shard_index is None:
        return name
    return f"{name}.shard-{shard_index}-of-{shards}"


def events_path(
    results_dir: str | pathlib.Path,
    name: str,
    *,
    shard_index: int | None = None,
    shards: int | None = None,
) -> pathlib.Path:
    """``<results_dir>/<name>[.shard-<i>-of-<n>].events.jsonl``."""
    return pathlib.Path(results_dir) / f"{_stem(name, shard_index, shards)}.events.jsonl"


def metrics_path(
    results_dir: str | pathlib.Path,
    name: str,
    *,
    shard_index: int | None = None,
    shards: int | None = None,
) -> pathlib.Path:
    """``<results_dir>/<name>[.shard-<i>-of-<n>].metrics.json``."""
    return pathlib.Path(results_dir) / f"{_stem(name, shard_index, shards)}.metrics.json"


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def validate_event(event: Mapping[str, Any], *, where: str = "event") -> dict:
    """Check one event against the schema above; return it as a dict.

    Strict in the :mod:`repro.results.records` sense — unknown keys,
    missing keys, wrong types (a bool never satisfies a number slot),
    unknown kinds, negative durations, and non-scalar attribute values
    all raise :class:`~repro.errors.ObsError`.  Events stamped with a
    newer :data:`EVENT_VERSION` are refused rather than misread.
    """
    from repro.results.records import check_mapping

    if not isinstance(event, Mapping):
        raise ObsError(f"{where}: event must be an object, got {type(event).__name__}")
    event = dict(event)
    kind = event.get("kind")
    if kind not in _FIELDS_BY_KIND:
        raise ObsError(
            f"{where}: event kind must be one of {EVENT_KINDS}, got {kind!r}"
        )
    check_mapping(event, _FIELDS_BY_KIND[kind], "event", where, error=ObsError)
    if event["v"] > EVENT_VERSION:
        raise ObsError(
            f"{where}: event version {event['v']} is newer than this reader "
            f"(understands <= {EVENT_VERSION})"
        )
    if kind == "span":
        if event["dur"] < 0:
            raise ObsError(f"{where}: event.dur must be >= 0, got {event['dur']}")
        if event["span"] < 1:
            raise ObsError(f"{where}: event.span must be >= 1, got {event['span']}")
    if kind in ("span", "mark"):
        for key, value in event["attrs"].items():
            if not isinstance(key, str):
                raise ObsError(f"{where}: attrs keys must be strings, got {key!r}")
            if not isinstance(value, _ATTR_SCALARS):
                raise ObsError(
                    f"{where}: attrs.{key} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
    return event


# --------------------------------------------------------------------- #
# loading
# --------------------------------------------------------------------- #


def load_partial_events(
    path: str | pathlib.Path,
) -> tuple[list[dict], int, int]:
    """Load a possibly-interrupted event stream; tolerate a torn tail.

    Returns ``(events, torn, good_bytes)`` exactly like
    :func:`repro.engine.shard.load_partial_records` (the scan is the
    same machinery): validated events, how many trailing torn lines were
    dropped (0 or 1), and the truncation offset a resuming run uses so
    appended events start on a clean line.  Corruption anywhere but the
    tail raises :class:`~repro.errors.ShardError`; a missing file is an
    empty stream.
    """
    from repro.engine.shard import scan_partial_lines

    return scan_partial_lines(
        path,
        lambda raw: validate_event(json.loads(raw.decode())),
        what="event",
    )


def load_events(path: str | pathlib.Path) -> list[dict]:
    """Load a *complete* event stream; a torn tail is an error here.

    The conformance-mode reader (tests, strict tooling): for a stream
    that may still be growing — or died growing — use
    :func:`load_partial_events`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ObsError(f"events file {path} does not exist")
    events, torn, _good = load_partial_events(path)
    if torn:
        raise ObsError(
            f"{path.name}: torn final event (the writer died mid-line); "
            "use load_partial_events for crash-tolerant reads"
        )
    return events
