"""Power-sum neighbourhood encoding and decoding (Algorithm 3, Theorem 4, Lemma 3).

**Encoding (Algorithm 3).**  A node ``x`` with neighbourhood ``N`` sends the
``k+2``-tuple ``(ID(x), deg(x), b_1, ..., b_k)`` where
``b_p = Σ_{w∈N} ID(w)^p``.  The paper phrases this as ``b = A(k,n) · x̄``
with ``A`` the Vandermonde-like matrix ``A[p][i] = i^p`` and ``x̄`` the
0/1 incidence vector of ``N`` — the explicit sums below compute exactly that
product.  Serialized fixed-width, ``b_p <= n^{p+1}`` takes ``(p+1)·w`` bits
with ``w = ceil(log2(n+1))``, so the message costs ``O(k² log n)`` bits
(Lemma 2).

**Decoding (Theorem 4 / Corollary 1).**  Wright's theorem: equal power sums
``p = 1..k`` force equal multisets, so for ``deg(x) = d <= k`` the first
``d`` power sums determine ``N`` uniquely.  Two decoders:

* :func:`decode_neighborhood_newton` — Newton's identities convert power
  sums to elementary symmetric polynomials (exact integer arithmetic), and
  the neighbours are the integer roots of the resulting monic polynomial,
  found by scanning ``1..n`` with Horner + synthetic division, ``O(n·d)``;
* :class:`PowerSumLookupTable` — Lemma 3's preprocessing: enumerate all
  ``<= k``-subsets of ``1..n`` and index them by their power-sum vector;
  one dictionary probe per decode (``O(n^k)`` space, so guarded).

Both decoders raise :class:`~repro.errors.DecodeError` on corrupt input
rather than guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.bits.reader import BitReader
from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError, GraphError
from repro.model.message import Message

__all__ = [
    "PowerSumRecord",
    "compute_power_sums",
    "encode_powersum_message",
    "decode_powersum_message",
    "powersum_message_bits",
    "newton_identities",
    "integer_roots_of_monic",
    "decode_neighborhood_newton",
    "PowerSumLookupTable",
]


@dataclass(frozen=True)
class PowerSumRecord:
    """The decoded content of one Algorithm-3 message: ``(ID, deg, b_1..b_k)``."""

    vertex: int
    degree: int
    power_sums: tuple[int, ...]

    @property
    def k(self) -> int:
        """The protocol parameter this record was encoded with."""
        return len(self.power_sums)


def compute_power_sums(neighborhood: frozenset[int] | set[int], k: int) -> tuple[int, ...]:
    """``(b_1, ..., b_k)`` with ``b_p = Σ_{w∈N} w^p`` — the product ``A(k,n)·x̄``."""
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    sums = [0] * k
    for w in neighborhood:
        acc = 1
        for p in range(k):
            acc *= w
            sums[p] += acc
    return tuple(sums)


def powersum_message_bits(n: int, k: int) -> int:
    """Exact serialized size of an Algorithm-3 message: ``(2 + Σ_{p=1..k}(p+1))·w``.

    ``= (2 + k(k+3)/2) · ceil(log2(n+1))`` bits — the concrete form of
    Lemma 2's ``O(k² log n)``.
    """
    w = id_width(n)
    return (2 + sum(p + 1 for p in range(1, k + 1))) * w


def encode_powersum_message(n: int, k: int, i: int, neighborhood: frozenset[int]) -> Message:
    """Serialize Algorithm 3's tuple for node ``i``; all widths derive from ``(n, k)``."""
    w = id_width(n)
    writer = BitWriter()
    writer.write_many(
        [(i, w), (len(neighborhood), w)]
        + [(b, (p + 1) * w)
           for p, b in enumerate(compute_power_sums(neighborhood, k), start=1)]
    )
    return Message.from_writer(writer)


def decode_powersum_message(n: int, k: int, msg: Message) -> PowerSumRecord:
    """Parse an Algorithm-3 message back into a record; strict framing."""
    w = id_width(n)
    r: BitReader = msg.reader()
    try:
        vertex = r.read_bits(w)
        degree = r.read_bits(w)
        sums = tuple(r.read_bits((p + 1) * w) for p in range(1, k + 1))
        r.expect_exhausted()
    except Exception as exc:  # underflow / leftover bits
        raise DecodeError(f"malformed power-sum message: {exc}") from exc
    if not 1 <= vertex <= n:
        raise DecodeError(f"decoded vertex ID {vertex} outside 1..{n}")
    if degree > n - 1:
        raise DecodeError(f"decoded degree {degree} exceeds n-1 = {n - 1}")
    return PowerSumRecord(vertex=vertex, degree=degree, power_sums=sums)


def newton_identities(power_sums: tuple[int, ...] | list[int]) -> list[int]:
    """Elementary symmetric polynomials ``e_1..e_d`` from power sums ``p_1..p_d``.

    Newton: ``m·e_m = Σ_{i=1}^{m} (-1)^{i-1} e_{m-i} p_i``.  Over integers
    the division by ``m`` must be exact; a remainder means the power sums
    are not the power sums of *any* multiset of integers, so we raise.
    """
    d = len(power_sums)
    e = [1] + [0] * d
    for m in range(1, d + 1):
        acc = 0
        sign = 1
        for i in range(1, m + 1):
            acc += sign * e[m - i] * power_sums[i - 1]
            sign = -sign
        q, rem = divmod(acc, m)
        if rem:
            raise DecodeError(f"power sums are inconsistent: e_{m} is not an integer")
        e[m] = q
    return e[1:]


def integer_roots_of_monic(elementary: list[int], n: int) -> list[int]:
    """All roots in ``1..n`` of ``x^d - e_1 x^{d-1} + e_2 x^{d-2} - ...``.

    The polynomial whose roots are the neighbours.  Scan candidates with
    Horner, synthetic-divide on each hit; Corollary 1 guarantees the
    genuine decode finds exactly ``d`` distinct roots.
    """
    d = len(elementary)
    # coefficients of Π (x - r_i), highest degree first
    coeffs = [1] + [(-1) ** (idx + 1) * e for idx, e in enumerate(elementary)]
    roots: list[int] = []
    candidate = 1
    while len(roots) < d and candidate <= n:
        # Horner evaluation at `candidate`
        acc = 0
        for c in coeffs:
            acc = acc * candidate + c
        if acc == 0:
            roots.append(candidate)
            # synthetic division by (x - candidate)
            new_coeffs = [coeffs[0]]
            for c in coeffs[1:-1]:
                new_coeffs.append(c + new_coeffs[-1] * candidate)
            coeffs = new_coeffs
            # distinct roots (a neighbourhood is a set): advance
        candidate += 1
    if len(roots) < d:
        raise DecodeError(
            f"polynomial of degree {d} has only {len(roots)} integer roots in 1..{n}"
        )
    return roots


def decode_neighborhood_newton(
    degree: int, power_sums: tuple[int, ...] | list[int], n: int
) -> frozenset[int]:
    """Recover ``N(x)`` from the first ``degree`` power sums (Theorem 4 route).

    Requires ``degree <= len(power_sums)`` — i.e. the vertex is currently
    prunable (degree at most k).
    """
    if degree == 0:
        return frozenset()
    if degree > len(power_sums):
        raise DecodeError(
            f"cannot decode degree {degree} from only {len(power_sums)} power sums"
        )
    e = newton_identities(list(power_sums[:degree]))
    roots = integer_roots_of_monic(e, n)
    result = frozenset(roots)
    if len(result) != degree:
        raise DecodeError("decoded neighbourhood has repeated vertices")
    return result


class PowerSumLookupTable:
    """Lemma 3's table: power-sum vector -> neighbourhood, for all ``<= k``-subsets.

    Size ``Σ_{d<=k} C(n,d) = O(n^k)`` entries; construction is guarded by
    ``max_entries``.  The paper sorts the table and binary-searches in
    ``O(k log n)``; a Python dict probe is the moral equivalent (and is
    what gives Algorithm 4 its ``O(n²)`` total decode).
    """

    def __init__(self, n: int, k: int, *, max_entries: int = 5_000_000) -> None:
        if k < 1:
            raise GraphError(f"k must be >= 1, got {k}")
        total = sum(math.comb(n, d) for d in range(k + 1))
        if total > max_entries:
            raise GraphError(
                f"lookup table for n={n}, k={k} needs {total} entries "
                f"(> max_entries={max_entries}); use the Newton decoder"
            )
        self.n = n
        self.k = k
        self._table: dict[tuple[int, ...], frozenset[int]] = {}
        for d in range(k + 1):
            for subset in combinations(range(1, n + 1), d):
                key = compute_power_sums(frozenset(subset), k)
                self._table[key] = frozenset(subset)

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, power_sums: tuple[int, ...]) -> frozenset[int]:
        """Neighbourhood with these k power sums; raises DecodeError if absent."""
        try:
            return self._table[tuple(power_sums)]
        except KeyError:
            raise DecodeError(
                "power-sum vector not in lookup table (degree > k or corrupt message)"
            ) from None

    def lookup_partial(self, degree: int, power_sums: tuple[int, ...]) -> frozenset[int]:
        """Decode from the first ``degree`` power sums via the Newton route.

        Algorithm 4 updates records incrementally, so mid-decode a vertex's
        *current* power sums match a subset of size ``degree < k`` whose
        full-k key is exactly what :meth:`lookup` expects — this helper
        recomputes the full key when possible, falling back to Newton.
        """
        if len(power_sums) == self.k:
            hit = self._table.get(tuple(power_sums))
            if hit is not None and len(hit) == degree:
                return hit
        return decode_neighborhood_newton(degree, power_sums, self.n)
