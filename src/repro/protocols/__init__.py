"""Concrete one-round protocols.

The paper's positive results and baselines:

* :mod:`~repro.protocols.powersum` — Algorithm 3's neighbourhood encoding
  (ID, degree, power sums) and the two decoders of Lemma 3 / Theorem 4;
* :mod:`~repro.protocols.degeneracy_reconstruction` — Algorithm 4: the
  frugal one-round protocol reconstructing degeneracy-≤k graphs
  (Theorem 5), plus its recognition variant;
* :mod:`~repro.protocols.forest` — the Section III.A special case k = 1
  (identifier, degree, sum of neighbour identifiers);
* :mod:`~repro.protocols.generalized_degeneracy` — Section III.E: prune on
  low degree in the graph *or its complement*;
* :mod:`~repro.protocols.bounded_degree` — footnote 1's baseline: nodes of
  bounded-degree graphs send their whole neighbourhood;
* :mod:`~repro.protocols.partition_connectivity` — the conclusion's
  ``O(k log n)`` bits/node connectivity protocol for k-part partitions with
  intra-part cooperation;
* :mod:`~repro.protocols.trivial` — degenerate protocols (empty, ID-echo,
  full-adjacency) used as baselines, adversary fodder, and test scaffolding.
"""

from repro.protocols.powersum import (
    PowerSumRecord,
    encode_powersum_message,
    decode_powersum_message,
    newton_identities,
    decode_neighborhood_newton,
    PowerSumLookupTable,
)
from repro.protocols.forest import ForestReconstructionProtocol, ForestRecognitionProtocol
from repro.protocols.degeneracy_reconstruction import (
    DegeneracyReconstructionProtocol,
    DegeneracyRecognitionProtocol,
)
from repro.protocols.generalized_degeneracy import GeneralizedDegeneracyProtocol
from repro.protocols.bounded_degree import BoundedDegreeProtocol
from repro.protocols.partition_connectivity import PartitionConnectivityProtocol
from repro.protocols.adaptive_query import AdaptiveQueryReconstruction
from repro.protocols.estimation import DegeneracyEstimationProtocol
from repro.protocols.trivial import (
    EmptyProtocol,
    IdEchoProtocol,
    FullAdjacencyProtocol,
    DegreeProtocol,
)

__all__ = [
    "PowerSumRecord",
    "encode_powersum_message",
    "decode_powersum_message",
    "newton_identities",
    "decode_neighborhood_newton",
    "PowerSumLookupTable",
    "ForestReconstructionProtocol",
    "ForestRecognitionProtocol",
    "DegeneracyReconstructionProtocol",
    "DegeneracyRecognitionProtocol",
    "GeneralizedDegeneracyProtocol",
    "BoundedDegreeProtocol",
    "PartitionConnectivityProtocol",
    "AdaptiveQueryReconstruction",
    "DegeneracyEstimationProtocol",
    "EmptyProtocol",
    "IdEchoProtocol",
    "FullAdjacencyProtocol",
    "DegreeProtocol",
]
