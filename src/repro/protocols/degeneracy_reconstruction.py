"""Algorithm 4 / Theorem 5: one-round frugal reconstruction of degeneracy-≤k graphs.

Local phase: every node sends Algorithm 3's ``(ID, deg, b_1..b_k)`` —
``O(k² log n)`` bits (Lemma 2).

Global phase (Algorithm 4): the referee keeps, per vertex, its *current*
degree and power sums — i.e. those of the subgraph induced by not-yet-pruned
vertices.  It repeatedly takes any vertex ``x`` of current degree ≤ k,
decodes its current neighbourhood (Theorem 4: unique), records those edges,
and "removes" ``x`` by decrementing each neighbour's degree and subtracting
``ID(x)^p`` from its ``p``-th power sum.  A degeneracy-≤k graph always
offers a prunable vertex, so the loop terminates with the exact graph; the
elimination order is *discovered* by the referee, never transmitted.

The recognition variant is the paper's closing remark of Section III: reject
iff the pruning process ever finds no vertex of degree ≤ k.

Complexity: with a min-degree worklist the loop body is ``O(decode + k·deg)``;
with the Newton decoder each decode is ``O(n·k)``, giving ``O(n²k)`` total,
the paper's ``O(n²)`` for fixed k.  A prebuilt
:class:`~repro.protocols.powersum.PowerSumLookupTable` makes decodes
``O(k)`` dictionary work instead.
"""

from __future__ import annotations

from repro.errors import DecodeError, GraphError, RecognitionFailure
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol, ReconstructionProtocol
from repro.protocols.powersum import (
    PowerSumLookupTable,
    decode_neighborhood_newton,
    decode_powersum_message,
    encode_powersum_message,
)
from repro.registry import register

__all__ = ["DegeneracyReconstructionProtocol", "DegeneracyRecognitionProtocol", "prune_decode"]


def prune_decode(
    n: int,
    k: int,
    records: list[tuple[int, int, list[int]]],
    *,
    table: PowerSumLookupTable | None = None,
) -> LabeledGraph:
    """The Algorithm-4 loop, shared by reconstruction and recognition.

    ``records`` is a list of ``[vertex, degree, power_sums]`` triples (power
    sums as a mutable list); it is consumed destructively.  Raises
    :class:`RecognitionFailure` when no vertex of degree ≤ k remains while
    vertices are unpruned, and :class:`DecodeError` on inconsistent sums.
    """
    h = LabeledGraph(n)
    state: dict[int, tuple[int, list[int]]] = {}
    for vertex, degree, sums in records:
        if vertex in state:
            raise DecodeError(f"duplicate message for vertex {vertex}")
        state[vertex] = (degree, sums)
    if len(state) != n:
        raise DecodeError(f"expected {n} distinct vertex records, got {len(state)}")

    # worklist of currently-prunable vertices; membership re-checked on pop
    worklist = [v for v, (d, _) in state.items() if d <= k]
    remaining = set(state)
    while remaining:
        x = None
        while worklist:
            cand = worklist.pop()
            if cand in remaining and state[cand][0] <= k:
                x = cand
                break
        if x is None:
            raise RecognitionFailure(
                f"no vertex of degree <= {k} remains: graph degeneracy exceeds {k}",
                stuck_vertices=frozenset(remaining),
            )
        degree, sums = state[x]
        if table is not None:
            nbrs = table.lookup_partial(degree, tuple(sums))
        else:
            nbrs = decode_neighborhood_newton(degree, tuple(sums), n)
        if not nbrs <= remaining - {x}:
            raise DecodeError(
                f"vertex {x} decoded neighbours {sorted(nbrs)} outside the remaining graph"
            )
        remaining.discard(x)
        for v in nbrs:
            h.add_edge(x, v)
            d_v, s_v = state[v]
            xp = 1
            for p in range(len(s_v)):
                xp *= x
                s_v[p] -= xp
                if s_v[p] < 0:
                    raise DecodeError(f"negative power sum at vertex {v}: corrupt messages")
            state[v] = (d_v - 1, s_v)
            if d_v - 1 <= k:
                worklist.append(v)
    return h


class DegeneracyReconstructionProtocol(ReconstructionProtocol):
    """The paper's headline protocol: Theorem 5.

    Parameters
    ----------
    k:
        The degeneracy bound all participants agree on ("each vertex needs
        to know the value of k").
    decoder:
        ``"newton"`` (default, no preprocessing) or ``"table"`` (Lemma 3's
        lookup table, built lazily per n and cached).
    """

    def __init__(self, k: int, *, decoder: str = "newton") -> None:
        if k < 1:
            raise GraphError(f"k must be >= 1, got {k}")
        if decoder not in ("newton", "table"):
            raise GraphError(f"decoder must be 'newton' or 'table', got {decoder!r}")
        self.k = k
        self.decoder = decoder
        self.name = f"degeneracy-reconstruction(k={k},{decoder})"
        self._tables: dict[int, PowerSumLookupTable] = {}

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return encode_powersum_message(n, self.k, i, neighborhood)

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        records = []
        for msg in messages:
            rec = decode_powersum_message(n, self.k, msg)
            records.append((rec.vertex, rec.degree, list(rec.power_sums)))
        table = self._table_for(n) if self.decoder == "table" else None
        return prune_decode(n, self.k, records, table=table)

    def _table_for(self, n: int) -> PowerSumLookupTable:
        if n not in self._tables:
            self._tables[n] = PowerSumLookupTable(n, self.k)
        return self._tables[n]


class DegeneracyRecognitionProtocol(DecisionProtocol):
    """Recognition variant: *is* the graph of degeneracy at most k?

    Same messages as the reconstruction protocol; the referee answers False
    exactly when the pruning process gets stuck (Section III's closing
    remark).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise GraphError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"degeneracy-recognition(k={k})"
        self._inner = DegeneracyReconstructionProtocol(k)

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return self._inner.local(n, i, neighborhood)

    def global_(self, n: int, messages: list[Message]) -> bool:
        try:
            self._inner.global_(n, messages)
        except RecognitionFailure:
            return False
        return True



@register("degeneracy", kind="protocol",
          capabilities=("reconstruction", "deterministic", "frugal"),
          summary="Algorithm 4: power-sum reconstruction of degeneracy-<=k graphs "
                  "(Theorem 5).")
def _build_degeneracy(n: int, k: int = 2, decoder: str = "newton") -> "DegeneracyReconstructionProtocol":
    return DegeneracyReconstructionProtocol(k, decoder=decoder)
