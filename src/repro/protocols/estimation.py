"""One-round degeneracy *estimation* — a derived protocol the paper enables.

Observation: Algorithm 3's message for parameter ``k_max`` *contains* the
message for every smaller ``k`` (the power sums are a prefix).  So from one
round of ``k_max``-messages the referee can determine the **exact**
degeneracy of the graph, provided it is at most ``k_max``: binary-search
over ``k ≤ k_max``, running Algorithm 4's pruning feasibility check per
probe.  Feasibility is monotone in k (a k-elimination order is also a
(k+1)-elimination order), so the search is sound.

One round, ``O(k_max² log n)`` bits per node, output
``min(degeneracy(G), k_max + 1)`` — where ``k_max + 1`` means "above the
bound" (the recognition semantics of Section III, sharpened to a number).
"""

from __future__ import annotations

from repro.errors import GraphError, RecognitionFailure
from repro.model.message import Message
from repro.model.protocol import OneRoundProtocol
from repro.protocols.degeneracy_reconstruction import prune_decode
from repro.protocols.powersum import decode_powersum_message, encode_powersum_message

__all__ = ["DegeneracyEstimationProtocol"]


class DegeneracyEstimationProtocol(OneRoundProtocol):
    """Compute ``min(degeneracy(G), k_max + 1)`` in one frugal round."""

    def __init__(self, k_max: int) -> None:
        if k_max < 1:
            raise GraphError(f"k_max must be >= 1, got {k_max}")
        self.k_max = k_max
        self.name = f"degeneracy-estimation(k_max={k_max})"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return encode_powersum_message(n, self.k_max, i, neighborhood)

    def global_(self, n: int, messages: list[Message]) -> int:
        records = [decode_powersum_message(n, self.k_max, m) for m in messages]
        if n == 0 or all(r.degree == 0 for r in records):
            return 0

        def feasible(k: int) -> bool:
            trial = [(r.vertex, r.degree, list(r.power_sums)) for r in records]
            try:
                prune_decode(n, k, trial)
            except RecognitionFailure:
                return False
            return True

        if not feasible(self.k_max):
            return self.k_max + 1
        lo, hi = 1, self.k_max  # degeneracy >= 1: some vertex has an edge
        while lo < hi:
            mid = (lo + hi) // 2
            if feasible(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo
