"""Section III.A: the k = 1 special case — reconstructing forests.

Each vertex sends the triple ``(ID(v), deg_T(v), Σ_{w∈N(v)} ID(w))`` —
"less than 4 log n bits".  The referee repeatedly prunes a leaf: a vertex of
current degree 1 names its unique neighbour outright (the sum *is* the
neighbour), and pruning updates the neighbour's triple to that of ``T \\ v``.
Degree-0 vertices are isolated and drop out immediately.

If the input contains a cycle the pruning stalls with every remaining vertex
at degree ≥ 2 — so, exactly as the paper notes, the same messages also
*decide* forest-ness; :meth:`ForestReconstructionProtocol.global_` raises
:class:`RecognitionFailure` in that case and
:class:`ForestRecognitionProtocol` converts it to a boolean.

This is byte-for-byte the ``k = 1`` instantiation of Algorithm 3/4 (the sum
of IDs is the first power sum); tests assert the two protocols reconstruct
identically — here it is kept separate because the paper presents it first
"to give the flavour of the algorithm", and the standalone version makes the
leaf-pruning logic legible.
"""

from __future__ import annotations

from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError, RecognitionFailure
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol, ReconstructionProtocol
from repro.registry import register

__all__ = ["ForestReconstructionProtocol", "ForestRecognitionProtocol"]


class ForestReconstructionProtocol(ReconstructionProtocol):
    """One-round frugal reconstruction of forests (degeneracy 1)."""

    name = "forest-reconstruction"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = id_width(n)
        writer = BitWriter()
        writer.write_bits(i, w)
        writer.write_bits(len(neighborhood), w)
        writer.write_bits(sum(neighborhood), 2 * w)  # sum <= n(n-1)/2 < n^2
        return Message.from_writer(writer)

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        w = id_width(n)
        deg: dict[int, int] = {}
        total: dict[int, int] = {}
        for msg in messages:
            r = msg.reader()
            try:
                v = r.read_bits(w)
                d = r.read_bits(w)
                s = r.read_bits(2 * w)
                r.expect_exhausted()
            except Exception as exc:
                raise DecodeError(f"malformed forest message: {exc}") from exc
            if not 1 <= v <= n or v in deg:
                raise DecodeError(f"bad or duplicate vertex ID {v}")
            deg[v] = d
            total[v] = s
        if len(deg) != n:
            raise DecodeError(f"expected {n} records, got {len(deg)}")

        h = LabeledGraph(n)
        leaves = [v for v in deg if deg[v] <= 1]
        remaining = set(deg)
        while leaves:
            v = leaves.pop()
            if v not in remaining:
                continue
            remaining.discard(v)
            if deg[v] == 0:
                continue
            u = total[v]  # the unique neighbour's ID, literally
            if u not in remaining:
                raise DecodeError(f"leaf {v} names neighbour {u} outside the remaining forest")
            h.add_edge(v, u)
            deg[u] -= 1
            total[u] -= v
            if deg[u] <= 1:
                leaves.append(u)
        if remaining:
            raise RecognitionFailure(
                "pruning stalled: the input contains a cycle (not a forest)",
                stuck_vertices=frozenset(remaining),
            )
        return h


class ForestRecognitionProtocol(DecisionProtocol):
    """Same messages; referee answers "is the graph a forest?"."""

    name = "forest-recognition"

    def __init__(self) -> None:
        self._inner = ForestReconstructionProtocol()

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return self._inner.local(n, i, neighborhood)

    def global_(self, n: int, messages: list[Message]) -> bool:
        try:
            self._inner.global_(n, messages)
        except RecognitionFailure:
            return False
        return True



@register("forest", kind="protocol",
          capabilities=("reconstruction", "deterministic", "frugal"),
          summary="Section III.A: forest reconstruction from (id, degree, "
                  "neighbour-sum) triples.")
def _build_forest(n: int) -> "ForestReconstructionProtocol":
    return ForestReconstructionProtocol()
