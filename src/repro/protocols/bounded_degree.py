"""Footnote 1's baseline: bounded-degree graphs reconstruct trivially.

"If the network has bounded degree then each processor can simply send its
neighborhood to the referee, using only O(log n) bits."  Each node sends its
degree then its neighbour IDs verbatim: ``(Δ+1)·ceil(log2(n+1))`` bits on a
degree-≤Δ graph — frugal for constant Δ, and the point of comparison for
the power-sum protocol, which achieves the same on *unbounded-degree*
graphs of bounded degeneracy (a strictly larger class: stars have
degeneracy 1 and unbounded degree).

On a vertex of degree above the agreed Δ, the node sends an overflow flag
plus its degree; the referee raises :class:`DecodeError` — the protocol is
total but only *correct* on the promised class, mirroring the footnote's
scope.
"""

from __future__ import annotations

from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError, GraphError
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import ReconstructionProtocol
from repro.registry import register

__all__ = ["BoundedDegreeProtocol"]


class BoundedDegreeProtocol(ReconstructionProtocol):
    """Send-your-neighbourhood reconstruction for degree-≤Δ graphs."""

    def __init__(self, max_degree: int) -> None:
        if max_degree < 0:
            raise GraphError(f"max_degree must be >= 0, got {max_degree}")
        self.max_degree = max_degree
        self.name = f"bounded-degree(Δ={max_degree})"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = id_width(n)
        writer = BitWriter()
        writer.write_bits(i, w)
        if len(neighborhood) > self.max_degree:
            writer.write_bit(1)  # overflow: degree promise broken
            writer.write_bits(len(neighborhood), w)
        else:
            writer.write_bit(0)
            writer.write_bits(len(neighborhood), w)
            for v in sorted(neighborhood):
                writer.write_bits(v, w)
        return Message.from_writer(writer)

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        w = id_width(n)
        g = LabeledGraph(n)
        seen: set[int] = set()
        claims: dict[int, frozenset[int]] = {}
        for msg in messages:
            r = msg.reader()
            try:
                i = r.read_bits(w)
                overflow = r.read_bit()
                d = r.read_bits(w)
                if overflow:
                    raise DecodeError(
                        f"vertex {i} has degree {d} > Δ={self.max_degree}: "
                        "input outside the bounded-degree promise"
                    )
                nbrs = frozenset(r.read_bits(w) for _ in range(d))
                r.expect_exhausted()
            except DecodeError:
                raise
            except Exception as exc:
                raise DecodeError(f"malformed bounded-degree message: {exc}") from exc
            if not 1 <= i <= n or i in seen:
                raise DecodeError(f"bad or duplicate vertex ID {i}")
            seen.add(i)
            claims[i] = nbrs
        if len(seen) != n:
            raise DecodeError(f"expected {n} records, got {len(seen)}")
        for i, nbrs in claims.items():
            for v in nbrs:
                if not 1 <= v <= n or v == i:
                    raise DecodeError(f"vertex {i} claims invalid neighbour {v}")
                if i not in claims[v]:
                    raise DecodeError(f"asymmetric claim: {i} lists {v} but not vice versa")
                if i < v:
                    g.add_edge(i, v)
        return g



@register("bounded_degree", kind="protocol",
          capabilities=("reconstruction", "deterministic"),
          summary="Footnote 1 baseline: bounded-degree nodes send their whole "
                  "neighbourhood.")
def _build_bounded_degree(n: int, max_degree: int = 3) -> "BoundedDegreeProtocol":
    return BoundedDegreeProtocol(max_degree)
