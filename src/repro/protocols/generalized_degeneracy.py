"""Section III.E: reconstruction of graphs of *generalized* degeneracy ≤ k.

The paper's final remark: define generalized degeneracy k by an ordering
``r_1..r_n`` where each ``r_i`` has degree ≤ k in ``G_i`` **or in the
complement of** ``G_i``.  The protocol "encodes both the neighborhood and
the non-neighborhood of each vertex": every node sends Algorithm 3's power
sums twice — once for ``N(v)``, once for ``V \\ ({v} ∪ N(v))`` — doubling
the message (still ``O(k² log n)``).

The referee's pruning now fires on either side: a vertex whose *current*
degree is ≤ k decodes its neighbourhood from ``b``; one whose current
co-degree is ≤ k decodes its co-neighbourhood from ``b̄`` and takes the
complement within the remaining vertex set.  Removal updates both vectors:
neighbours lose ``x^p`` from ``b``; non-neighbours lose it from ``b̄``.

This reconstructs e.g. complements of forests — dense graphs far outside
plain bounded degeneracy.
"""

from __future__ import annotations

from repro.bits.reader import BitReader
from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError, GraphError, RecognitionFailure
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import ReconstructionProtocol
from repro.protocols.powersum import compute_power_sums, decode_neighborhood_newton
from repro.registry import register

__all__ = ["GeneralizedDegeneracyProtocol", "generalized_degeneracy"]


def generalized_degeneracy(g: LabeledGraph) -> int:
    """The smallest k admitting a Section III.E ordering (ground truth helper).

    Greedy is exact here for the same reason as for plain degeneracy: if any
    valid ordering exists for value k, always-prune-a-currently-valid-vertex
    cannot get stuck (pruning preserves the property that the suffix of the
    witness ordering remains valid).  Computed by binary search over greedy
    feasibility, ``O(n² log n)`` adjacency-set work per probe.
    """
    lo, hi = 0, max(0, g.n - 1)
    while lo < hi:
        mid = (lo + hi) // 2
        if _greedy_feasible(g, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _greedy_feasible(g: LabeledGraph, k: int) -> bool:
    remaining = set(g.vertices())
    deg = {v: g.degree(v) for v in g.vertices()}
    while remaining:
        size = len(remaining)
        pick = None
        for v in remaining:
            if deg[v] <= k or (size - 1 - deg[v]) <= k:
                pick = v
                break
        if pick is None:
            return False
        remaining.discard(pick)
        for w in g.neighbors(pick):
            if w in remaining:
                deg[w] -= 1
    return True


class GeneralizedDegeneracyProtocol(ReconstructionProtocol):
    """One-round frugal reconstruction for generalized degeneracy ≤ k."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise GraphError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"generalized-degeneracy(k={k})"

    # ------------------------------------------------------------------ #
    # local phase: both-sides power sums
    # ------------------------------------------------------------------ #

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = id_width(n)
        co = frozenset(range(1, n + 1)) - neighborhood - {i}
        writer = BitWriter()
        writer.write_bits(i, w)
        writer.write_bits(len(neighborhood), w)
        for p, b in enumerate(compute_power_sums(neighborhood, self.k), start=1):
            writer.write_bits(b, (p + 1) * w)
        for p, b in enumerate(compute_power_sums(co, self.k), start=1):
            writer.write_bits(b, (p + 1) * w)
        return Message.from_writer(writer)

    # ------------------------------------------------------------------ #
    # global phase: two-sided pruning
    # ------------------------------------------------------------------ #

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        w = id_width(n)
        k = self.k
        state: dict[int, tuple[int, list[int], list[int]]] = {}
        for msg in messages:
            r: BitReader = msg.reader()
            try:
                v = r.read_bits(w)
                d = r.read_bits(w)
                b = [r.read_bits((p + 1) * w) for p in range(1, k + 1)]
                bc = [r.read_bits((p + 1) * w) for p in range(1, k + 1)]
                r.expect_exhausted()
            except Exception as exc:
                raise DecodeError(f"malformed generalized-degeneracy message: {exc}") from exc
            if not 1 <= v <= n or v in state:
                raise DecodeError(f"bad or duplicate vertex ID {v}")
            state[v] = (d, b, bc)
        if len(state) != n:
            raise DecodeError(f"expected {n} records, got {len(state)}")

        h = LabeledGraph(n)
        remaining = set(state)
        while remaining:
            size = len(remaining)
            x = None
            use_complement = False
            for v in remaining:
                d = state[v][0]
                if d <= k:
                    x = v
                    break
                if size - 1 - d <= k:
                    x = v
                    use_complement = True
                    break
            if x is None:
                raise RecognitionFailure(
                    f"generalized degeneracy exceeds {k}",
                    stuck_vertices=frozenset(remaining),
                )
            d, b, bc = state[x]
            if use_complement:
                co_nbrs = decode_neighborhood_newton(size - 1 - d, tuple(bc), n)
                nbrs = remaining - co_nbrs - {x}
            else:
                nbrs = decode_neighborhood_newton(d, tuple(b), n)
            if not nbrs <= remaining - {x}:
                raise DecodeError(f"vertex {x} decoded neighbours outside the remaining graph")
            remaining.discard(x)
            for v in remaining:
                d_v, b_v, bc_v = state[v]
                target = b_v if v in nbrs else bc_v
                xp = 1
                for p in range(k):
                    xp *= x
                    target[p] -= xp
                    if target[p] < 0:
                        raise DecodeError(f"negative power sum at vertex {v}: corrupt messages")
                if v in nbrs:
                    h.add_edge(x, v)
                    state[v] = (d_v - 1, b_v, bc_v)
        return h



@register("generalized_degeneracy", kind="protocol",
          capabilities=("reconstruction", "deterministic"),
          summary="Section III.E: reconstruction pruning on the graph or its "
                  "complement.")
def _build_generalized_degeneracy(n: int, k: int = 1) -> "GeneralizedDegeneracyProtocol":
    return GeneralizedDegeneracyProtocol(k)
