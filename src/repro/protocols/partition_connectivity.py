"""The conclusion's partition-based connectivity protocol.

The paper's closing discussion observes that its hardness technique — a
partition argument with a fixed number of parts — *cannot* rule out a
one-round connectivity protocol, because: "if a graph is split into k parts
and vertices of each part are allowed to communicate to each other, there is
an algorithm for connectivity using O(k log n) bits per node."

This module implements that algorithm.  The vertex set is split into k
deterministic ID-contiguous parts.  A *part* acts as a coalition: pooling
its members' neighbourhoods, it knows ``H_p`` — every edge with at least one
endpoint in the part.  The coalition computes a spanning forest ``F_p`` of
``H_p`` and serializes it; the bit stream is chunked evenly across the
part's members, every node carrying one ``O(k log n)``-bit chunk (balanced
parts: ``|F_p| ≤ n-1`` edges ≈ ``2n log n`` bits over ``n/k`` members).

Correctness is the classical forest-replacement argument: every edge of G
lies in some ``H_p``, and replacing each ``H_p`` by a spanning forest
preserves connectivity of the union (if ``e ∈ H_p`` its endpoints stay
connected inside ``F_p``), so ``∪_p F_p`` is connected iff G is.

Note this protocol lives *outside* Definition 1: a node's chunk depends on
its whole part's knowledge, not just its own neighbourhood.  That is the
point — the paper uses it to explain why partition-based lower bounds fail
for connectivity.  The class therefore exposes ``run(g)`` with coalition
semantics instead of subclassing ``OneRoundProtocol``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.reader import BitReader
from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError, GraphError
from repro.graphs.labeled import LabeledGraph

__all__ = ["PartitionConnectivityProtocol", "PartitionConnectivityReport", "parts_of"]


def parts_of(n: int, k: int) -> list[range]:
    """Split ``1..n`` into k ID-contiguous parts, sizes differing by at most 1."""
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    if n < k:
        raise GraphError(f"need n >= k parts, got n={n}, k={k}")
    base, extra = divmod(n, k)
    parts = []
    start = 1
    for p in range(k):
        size = base + (1 if p < extra else 0)
        parts.append(range(start, start + size))
        start += size
    return parts


@dataclass(frozen=True)
class PartitionConnectivityReport:
    """Outcome and resource usage of one coalition round."""

    connected: bool
    n: int
    k_parts: int
    max_bits_per_node: int
    total_bits: int
    forest_edges: int

    @property
    def bits_per_node_per_log(self) -> float:
        """Measured cost in the paper's ``k log n`` unit."""
        from repro.model.frugality import log2_ceil

        return self.max_bits_per_node / (self.k_parts * log2_ceil(self.n))


class _UnionFind:
    def __init__(self, items: list[int]) -> None:
        self.parent = {x: x for x in items}

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class PartitionConnectivityProtocol:
    """One coalition-round connectivity via per-part spanning forests."""

    def __init__(self, k_parts: int) -> None:
        if k_parts < 1:
            raise GraphError(f"k_parts must be >= 1, got {k_parts}")
        self.k_parts = k_parts
        self.name = f"partition-connectivity(k={k_parts})"

    # ------------------------------------------------------------------ #
    # coalition local phase
    # ------------------------------------------------------------------ #

    def part_forest(self, g: LabeledGraph, part: range) -> list[tuple[int, int]]:
        """Spanning forest of ``H_part`` (edges incident to the part)."""
        members = set(part)
        uf = _UnionFind(list(g.vertices()))
        forest = []
        for u in part:
            for v in sorted(g.neighbors(u)):
                if v in members and v < u:
                    continue  # internal edge already seen from the lower endpoint
                if uf.union(u, v):
                    forest.append((u, v))
        return forest

    def _serialize_forest(self, n: int, forest: list[tuple[int, int]]) -> BitWriter:
        w = id_width(n)
        count_width = id_width(n) + 1  # forest has <= n-1 < 2n edges
        writer = BitWriter()
        writer.write_bits(len(forest), count_width)
        for u, v in forest:
            writer.write_bits(u, w)
            writer.write_bits(v, w)
        return writer

    def node_chunks(self, g: LabeledGraph, part: range) -> list[tuple[int, int]]:
        """The per-member message payloads: the part's stream cut evenly.

        Returns one ``(acc, nbits)`` chunk per member, in ID order.  Every
        member's chunk has the same length (the stream is zero-padded), so
        the referee can reassemble by concatenation knowing only n and k.
        """
        stream = self._serialize_forest(g.n, self.part_forest(g, part))
        total_bits = len(stream)
        size = len(part)
        chunk = -(-total_bits // size) if total_bits else 0
        acc, nbits = stream.to_int()
        acc <<= chunk * size - nbits  # right-pad to an even split
        chunks = []
        for idx in range(size):
            shift = chunk * (size - 1 - idx)
            chunks.append(((acc >> shift) & ((1 << chunk) - 1) if chunk else 0, chunk))
        return chunks

    # ------------------------------------------------------------------ #
    # full round
    # ------------------------------------------------------------------ #

    def run(self, g: LabeledGraph) -> PartitionConnectivityReport:
        """Execute the coalition round and decide connectivity."""
        n = g.n
        if n == 0:
            return PartitionConnectivityReport(True, 0, self.k_parts, 0, 0, 0)
        parts = parts_of(n, self.k_parts)
        per_node_bits: list[int] = []
        uf = _UnionFind(list(g.vertices()))
        forest_edges = 0
        # each member sends (chunk_len, chunk); chunk_len is implicit per part
        # since all chunks are equal — the first member's message carries the
        # total length so the referee can strip the padding.
        header_width = 2 * id_width(n) + id_width(n).bit_length() + 3
        for part in parts:
            chunks = self.node_chunks(g, part)
            total_bits = sum(nb for _, nb in chunks)
            stream_acc = 0
            for acc, nbits in chunks:
                stream_acc = (stream_acc << nbits) | acc
            for idx, (_, nbits) in enumerate(chunks):
                bits = nbits + (header_width if idx == 0 else 0)
                per_node_bits.append(bits)
            if total_bits == 0:
                continue
            reader = BitReader(stream_acc, total_bits)
            count_width = id_width(n) + 1
            w = id_width(n)
            count = reader.read_bits(count_width)
            if count > n - 1:
                raise DecodeError(f"part claims {count} forest edges on {n} vertices")
            for _ in range(count):
                u = reader.read_bits(w)
                v = reader.read_bits(w)
                if not (1 <= u <= n and 1 <= v <= n) or u == v:
                    raise DecodeError(f"part forest contains invalid edge ({u}, {v})")
                forest_edges += 1
                uf.union(u, v)
        roots = {uf.find(v) for v in g.vertices()}
        connected = len(roots) == 1
        return PartitionConnectivityReport(
            connected=connected,
            n=n,
            k_parts=self.k_parts,
            max_bits_per_node=max(per_node_bits, default=0),
            total_bits=sum(per_node_bits),
            forest_edges=forest_edges,
        )
