"""Degenerate baseline protocols.

These anchor the experiments:

* :class:`EmptyProtocol` / :class:`IdEchoProtocol` / :class:`DegreeProtocol`
  send almost nothing — frugal but (provably) unable to decide the paper's
  properties; the adversarial collision search uses them as the easy kills.
* :class:`FullAdjacencyProtocol` sends everything — the *non-frugal* oracle
  whose messages are ``n`` bits; plugged into the Section II reductions it
  validates them end-to-end (a correct detector really does yield a correct
  reconstructor), and its audit shows exactly how non-frugal "just send your
  neighbourhood" is on general graphs.
"""

from __future__ import annotations

from typing import Any

from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import OneRoundProtocol, ReconstructionProtocol
from repro.registry import register

__all__ = ["EmptyProtocol", "IdEchoProtocol", "DegreeProtocol", "FullAdjacencyProtocol"]


class EmptyProtocol(OneRoundProtocol):
    """Every node sends the empty message; the referee outputs ``None``."""

    name = "empty"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return Message.empty()

    def global_(self, n: int, messages: list[Message]) -> Any:
        return None


class IdEchoProtocol(OneRoundProtocol):
    """Every node sends its own ID; the referee returns the list (sanity protocol)."""

    name = "id-echo"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = BitWriter()
        w.write_bits(i, id_width(n))
        return Message.from_writer(w)

    def global_(self, n: int, messages: list[Message]) -> Any:
        width = id_width(n)
        return [m.reader().read_bits(width) for m in messages]


class DegreeProtocol(OneRoundProtocol):
    """Every node sends its degree; the referee returns the degree sequence.

    Frugal (``<= log2(n+1)`` bits) but far too weak to decide subgraph
    containment — the collision experiment exhibits concrete witness pairs.
    """

    name = "degree"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = BitWriter()
        w.write_bits(len(neighborhood), id_width(n))
        return Message.from_writer(w)

    def global_(self, n: int, messages: list[Message]) -> Any:
        width = id_width(n)
        return [m.reader().read_bits(width) for m in messages]


class FullAdjacencyProtocol(ReconstructionProtocol):
    """Every node sends its full neighbourhood bitmap (n bits) — the non-frugal oracle.

    The referee reconstructs the graph exactly, taking the union of claimed
    edges (each edge is reported by both endpoints; the union keeps the
    protocol total on arbitrary — even inconsistent — message vectors,
    which the reductions rely on).
    """

    name = "full-adjacency"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = BitWriter()
        mask = 0
        for v in neighborhood:
            mask |= 1 << (v - 1)
        w.write_bits(mask, n)
        return Message.from_writer(w)

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        g = LabeledGraph(n)
        for i, msg in enumerate(messages, start=1):
            mask = msg.reader().read_bits(n)
            for v in range(1, n + 1):
                if mask >> (v - 1) & 1 and v != i:
                    g.add_edge(i, v)
        return g



@register("full_adjacency", kind="protocol",
          capabilities=("reconstruction", "deterministic", "baseline"),
          summary="Non-frugal baseline: every node sends its full adjacency row.")
def _build_full_adjacency(n: int) -> "FullAdjacencyProtocol":
    return FullAdjacencyProtocol()
