"""Adaptive neighbour-query reconstruction — the rounds-for-bits endpoint.

The conclusion asks what a fixed number of rounds buys.  This protocol is
the extreme point of that trade-off: with ``Δ + 1`` rounds of *strictly*
frugal messages (one vertex ID each way per round), the referee
reconstructs **any** graph, bounded degeneracy or not:

* round r: every node sends its r-th smallest neighbour's ID (0 when it has
  fewer than r neighbours), plus, in round 0, its degree;
* the referee's feedback is a single *continue/stop* bit per node (it stops
  early once every degree is exhausted).

Total cost is ``O(Δ log n)`` bits per node spread over ``Δ + 1`` rounds —
pitted against Theorem 5's one-round ``O(k² log n)``, this is the
quantitative version of "more rounds buy generality": one round suffices
for degeneracy-bounded graphs, while max-degree-many rounds suffice for
everything (and, by Theorem 2, *some* growth with n is unavoidable for
one-round protocols on general graphs).
"""

from __future__ import annotations

from typing import Any

from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.errors import DecodeError
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.multiround import MultiRoundProtocol

__all__ = ["AdaptiveQueryReconstruction"]


class AdaptiveQueryReconstruction(MultiRoundProtocol):
    """Reconstruct any graph in (max degree + 1) frugal rounds."""

    name = "adaptive-query-reconstruction"

    def __init__(self) -> None:
        self._state: dict[str, Any] = {}

    def rounds(self, n: int) -> int:
        return n + 1  # ceiling; the referee stops after max-degree rounds

    # ------------------------------------------------------------------ #
    # node side
    # ------------------------------------------------------------------ #

    def node_step(
        self, n: int, i: int, neighborhood: frozenset[int], round_idx: int, inbox: Message
    ) -> Message:
        w = id_width(n) if n else 1
        writer = BitWriter()
        if round_idx == 0:
            writer.write_bits(len(neighborhood), w)
        nbrs = sorted(neighborhood)
        nth = nbrs[round_idx] if round_idx < len(nbrs) else 0
        writer.write_bits(nth, w)
        return Message.from_writer(writer)

    # ------------------------------------------------------------------ #
    # referee side
    # ------------------------------------------------------------------ #

    def referee_step(self, n: int, round_idx: int, messages: list[Message]) -> tuple[str, Any]:
        w = id_width(n) if n else 1
        if round_idx == 0:
            self._state = {"graph": LabeledGraph(n), "degrees": [0] * n}
        g: LabeledGraph = self._state["graph"]
        degrees: list[int] = self._state["degrees"]
        for v, msg in enumerate(messages, start=1):
            reader = msg.reader()
            try:
                if round_idx == 0:
                    degrees[v - 1] = reader.read_bits(w)
                nth = reader.read_bits(w)
                reader.expect_exhausted()
            except Exception as exc:
                raise DecodeError(f"malformed adaptive-query message: {exc}") from exc
            if nth:
                if not 1 <= nth <= n or nth == v:
                    raise DecodeError(f"node {v} reported invalid neighbour {nth}")
                if round_idx >= degrees[v - 1]:
                    raise DecodeError(f"node {v} reported a neighbour beyond its degree")
                g.add_edge(v, nth)
        if round_idx + 1 >= max(degrees, default=0):
            self._verify(g, degrees)
            return "output", g
        return "continue", [Message.empty() for _ in range(n)]

    @staticmethod
    def _verify(g: LabeledGraph, degrees: list[int]) -> None:
        for v in g.vertices():
            if g.degree(v) != degrees[v - 1]:
                raise DecodeError(
                    f"node {v} announced degree {degrees[v - 1]} but reported "
                    f"{g.degree(v)} distinct neighbours"
                )
