"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type.  Sub-hierarchies mirror
the package layout: bit-level codec failures, graph-construction failures,
protocol/model violations, and decode failures on the referee side.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BitstreamError",
    "BitstreamUnderflow",
    "CodecError",
    "GraphError",
    "InvalidVertexError",
    "NotInFamilyError",
    "ProtocolError",
    "FrugalityViolation",
    "DecodeError",
    "RecognitionFailure",
    "SketchFailure",
    "RegistryError",
    "UnknownRegistryEntry",
    "ResultsError",
    "SchemaError",
    "BaselineError",
    "StoreError",
    "BenchError",
    "KernelError",
    "ShardError",
    "ShardIncomplete",
    "ObsError",
    "WorkerCrash",
    "ServeError",
    "JobNotFound",
    "QueueFull",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BitstreamError(ReproError):
    """Base class for bit-level I/O errors."""


class BitstreamUnderflow(BitstreamError):
    """Raised when a read requests more bits than the stream contains."""


class CodecError(BitstreamError):
    """Raised when an integer code cannot encode/decode the given value."""


class GraphError(ReproError):
    """Base class for labelled-graph construction and query errors."""


class InvalidVertexError(GraphError):
    """Raised when a vertex ID is outside ``1..n`` or an edge is invalid."""


class NotInFamilyError(GraphError):
    """Raised when a graph violates a family precondition (e.g. degeneracy > k)."""


class ProtocolError(ReproError):
    """Base class for model-level violations (wrong message count, etc.)."""


class FrugalityViolation(ProtocolError):
    """Raised by the auditor when a message exceeds the frugality budget."""

    def __init__(self, message: str, *, vertex: int | None = None, bits: int | None = None, budget: int | None = None):
        super().__init__(message)
        self.vertex = vertex
        self.bits = bits
        self.budget = budget


class DecodeError(ProtocolError):
    """Raised when the referee cannot decode the received messages."""


class RecognitionFailure(DecodeError):
    """Raised by recognition protocols when the input graph is rejected.

    Carries the set of vertices that remained unprunable, which is the
    witness Algorithm 4 produces when the degeneracy bound fails.
    """

    def __init__(self, message: str, *, stuck_vertices: frozenset[int] = frozenset()):
        super().__init__(message)
        self.stuck_vertices = stuck_vertices


class RegistryError(ProtocolError):
    """Raised on bad registrations (duplicate names, colliding aliases)."""


class UnknownRegistryEntry(ProtocolError, KeyError):
    """A name was looked up in a registry that has no such entry.

    Subclasses :class:`ProtocolError` (so the pre-registry ``except``
    clauses keep working) *and* :class:`KeyError` (so the deprecated
    dict-shaped registry views honour the Mapping contract).  Carries the
    registry ``kind``, the failing ``name``, the nearest known entry as a
    ``suggestion`` (difflib; ``None`` when nothing is close), and the tuple
    of ``known`` canonical names.
    """

    # KeyError.__str__ would repr-quote the message; keep the plain text.
    __str__ = Exception.__str__

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        name: str = "",
        suggestion: str | None = None,
        known: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.suggestion = suggestion
        self.known = known


class SketchFailure(ReproError):
    """Raised when a randomized sketch fails to produce a sample.

    AGM-style connectivity sketches are Monte Carlo; callers either retry
    with fresh randomness or accept one-sided error.  The failure is
    surfaced explicitly rather than returning a wrong answer silently.
    """


class ResultsError(ReproError):
    """Base class for the results layer (:mod:`repro.results`)."""


class SchemaError(ResultsError):
    """Raised when a JSONL record violates the campaign record schema."""


class BaselineError(ResultsError):
    """Raised when a frozen baseline file is missing or malformed."""


class StoreError(ResultsError):
    """Raised by the columnar record store and the trend ledger
    (:mod:`repro.store`): a missing/truncated/corrupt ``.columns`` file, a
    schema the codec cannot represent, or a malformed ``trends.jsonl``
    entry anywhere but the torn tail."""


class BenchError(ReproError):
    """Raised by the benchmark harness (:mod:`repro.bench`) on bad suite
    arguments or a missing/malformed bench baseline."""


class KernelError(ReproError):
    """Raised on an unknown kernel backend, or one whose optional
    dependency (numpy) is not installed in this interpreter."""


class ShardError(ProtocolError):
    """Raised by :mod:`repro.engine.shard` on invalid shard arguments, a
    missing/stale/mismatched checkpoint manifest, or an unmergeable shard
    set (incomplete or corrupt shard streams).

    Subclasses :class:`ProtocolError` so callers that already guard
    campaign execution with ``except ProtocolError`` (or ``ReproError``)
    keep working.
    """


class ShardIncomplete(ShardError):
    """A merge was attempted before every shard finished.

    Distinct from :class:`ShardError` so the CLI can map "not ready yet —
    run or resume the named shard" to exit code 1 (a gate-style failure)
    rather than 2 (a usage error).
    """


class ObsError(ReproError):
    """Raised by the observability layer (:mod:`repro.obs`): a malformed
    event in an ``.events.jsonl`` stream, a missing/invalid metrics
    snapshot, or tracing requested without a place to stream events to."""


class WorkerCrash(ObsError):
    """An executor worker died (or its pool broke) while running one spec.

    Wraps the bare pool exception with enough context — the spec content
    hash, the shard index, and the worker tag when known — that the raised
    error and the trace's ``worker-crash`` mark name the same run.  The
    original exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        spec_hash: str = "",
        shard_index: int | None = None,
        worker: str | None = None,
    ):
        super().__init__(message)
        self.spec_hash = spec_hash
        self.shard_index = shard_index
        self.worker = worker


class ServeError(ReproError):
    """Raised by the campaign service (:mod:`repro.serve`): a malformed
    submission, an unreachable daemon, an HTTP error the client cannot
    express more precisely, or a corrupt job-store entry."""


class JobNotFound(ServeError):
    """A job ID was looked up in the job store that has no such entry.

    Carries ``job_id`` so callers (and the HTTP layer, which maps this to
    404) can name the missing job without parsing the message.
    """

    def __init__(self, message: str, *, job_id: str = ""):
        super().__init__(message)
        self.job_id = job_id


class QueueFull(ServeError):
    """A submission was refused because the service is at capacity.

    The HTTP layer maps this to 429 with a ``Retry-After`` header;
    ``retry_after`` is the server's estimate (seconds) of when capacity
    frees up, derived from the job wall-seconds histogram when one exists.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
