"""One harness function per experiment ID (see DESIGN.md §6).

Every function is deterministic given its arguments (generators are seeded)
and cheap enough for a laptop; the default parameters are the ones quoted in
EXPERIMENTS.md.  Functions return ``(title, headers, rows)``.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

from repro.graphs import LabeledGraph, degeneracy, diameter, has_square, has_triangle, is_connected
from repro.registry import register
from repro.graphs.counting import (
    bipartite_fixed_parts_count,
    count_square_free,
    frugal_capacity_bits,
    labeled_forest_count,
    labeled_graph_count,
    zarankiewicz_lower_bound,
)
from repro.graphs.families import figure1_base, figure2_base
from repro.graphs.generators import (
    apollonian,
    disjoint_union,
    erdos_renyi,
    fat_tree,
    grid_2d,
    hypercube,
    k_tree,
    partial_k_tree,
    path_graph,
    random_bipartite,
    random_forest,
    random_k_degenerate,
    random_planar,
    random_square_free,
    random_tree,
    star_graph,
    torus_2d,
)
from repro.model import FrugalityAuditor, MultiRoundReferee, Referee, log2_ceil
from repro.protocols import (
    DegeneracyReconstructionProtocol,
    ForestReconstructionProtocol,
    GeneralizedDegeneracyProtocol,
    PartitionConnectivityProtocol,
)
from repro.protocols.powersum import (
    PowerSumLookupTable,
    compute_power_sums,
    decode_neighborhood_newton,
    encode_powersum_message,
    powersum_message_bits,
)
from repro.reductions import (
    DegreeEncoder,
    DegreeSumEncoder,
    DiameterReduction,
    HashedNeighborhoodEncoder,
    OracleDiameterDetector,
    OracleSquareDetector,
    OracleTriangleDetector,
    SquareReduction,
    TriangleReduction,
    diameter_gadget,
    find_collision_exhaustive,
    square_gadget,
    triangle_gadget,
)
from repro.sketching import AGMConnectivityProtocol, MultiRoundSketchConnectivity

Row = Sequence[object]
Result = tuple[str, list[str], list[Row]]

__all__ = [
    "EXPERIMENTS",
    "exp_lemma1_counting",
    "exp_lemma2_encoding",
    "exp_lemma3_decoding",
    "exp_theorem5_reconstruction",
    "exp_theorem1_square",
    "exp_theorem2_diameter",
    "exp_theorem3_triangle",
    "exp_adversary",
    "exp_forest",
    "exp_generalized_degeneracy",
    "exp_connectivity_partition",
    "exp_connectivity_sketch",
    "exp_degeneracy_classes",
    "exp_bipartiteness_sketch",
    "exp_rounds_tradeoff",
    "exp_coalition",
    "exp_results_gate",
]


# --------------------------------------------------------------------- #
# EXP-L1
# --------------------------------------------------------------------- #


@register("EXP-L1", kind="experiment")
def exp_lemma1_counting(ns: Sequence[int] = (4, 5, 6, 16, 64, 256, 1024, 4096)) -> Result:
    """Lemma 1: log2 family sizes vs the frugal capacity k·n·log2 n (k = 4).

    Exact square-free counts are used where enumeration is feasible (n <= 6),
    the Zarankiewicz/polarity lower bound beyond; exact forest counts up to
    n = 512, the Cayley upper bound ``F(n) <= (n+1)^{n-1}`` beyond (an upper
    bound keeps the "fits" verdict sound).
    """
    k_const = 4.0
    headers = [
        "n", "capacity(4nlogn)", "log2(all)", "log2(bipartite)",
        "log2(sq-free)>=", "log2(forests)", "all_fits", "forests_fit",
    ]
    rows: list[Row] = []
    for n in ns:
        cap = frugal_capacity_bits(n, k_const)
        log_all = math.log2(labeled_graph_count(n))
        log_bip = math.log2(bipartite_fixed_parts_count(n))
        log_sf = math.log2(count_square_free(n)) if n <= 6 else zarankiewicz_lower_bound(n)
        if n <= 512:
            log_forest = math.log2(labeled_forest_count(n))
        else:
            log_forest = (n - 1) * math.log2(n + 1)
        rows.append([
            n, round(cap, 1), round(log_all, 1), round(log_bip, 1),
            round(log_sf, 1), round(log_forest, 1),
            "yes" if log_all <= cap else "NO",
            "yes" if log_forest <= cap else "NO",
        ])
    return ("EXP-L1  Lemma 1: family sizes vs frugal capacity", headers, rows)


# --------------------------------------------------------------------- #
# EXP-L2
# --------------------------------------------------------------------- #


@register("EXP-L2", kind="experiment")
def exp_lemma2_encoding(
    ns: Sequence[int] = (64, 256, 1024, 4096), ks: Sequence[int] = (1, 2, 3, 5)
) -> Result:
    """Lemma 2: measured message size = closed form, O(k² log n); local time O(n)."""
    headers = ["n", "k", "bits(measured)", "bits(formula)", "bits/(k^2 log2 n)", "local_us/node"]
    rows: list[Row] = []
    for k in ks:
        for n in ns:
            g = random_k_degenerate(n, k, seed=n + k)
            protocol = DegeneracyReconstructionProtocol(k)
            worst = 0
            t0 = time.perf_counter()
            for i in g.vertices():
                worst = max(worst, protocol.local(n, i, g.neighbors(i)).bits)
            elapsed = (time.perf_counter() - t0) / n * 1e6
            formula = powersum_message_bits(n, k)
            rows.append([
                n, k, worst, formula,
                round(worst / (k * k * math.log2(n)), 2), round(elapsed, 1),
            ])
    return ("EXP-L2  Lemma 2: Algorithm 3 message size and local time", headers, rows)


# --------------------------------------------------------------------- #
# EXP-L3
# --------------------------------------------------------------------- #


@register("EXP-L3", kind="experiment")
def exp_lemma3_decoding(n: int = 64, k: int = 3, trials: int = 200) -> Result:
    """Lemma 3: lookup-table decode vs Newton decode — agreement and speed."""
    import random

    rng = random.Random(7)
    table = PowerSumLookupTable(n, k)
    cases = []
    for _ in range(trials):
        d = rng.randint(0, k)
        subset = frozenset(rng.sample(range(1, n + 1), d))
        cases.append((d, compute_power_sums(subset, k), subset))

    t0 = time.perf_counter()
    for d, sums, subset in cases:
        assert table.lookup(sums) == subset
    table_us = (time.perf_counter() - t0) / trials * 1e6

    t0 = time.perf_counter()
    for d, sums, subset in cases:
        assert decode_neighborhood_newton(d, sums, n) == subset
    newton_us = (time.perf_counter() - t0) / trials * 1e6

    headers = ["decoder", "n", "k", "entries", "us/decode", "exact"]
    rows: list[Row] = [
        ["lookup-table", n, k, len(table), round(table_us, 2), "yes"],
        ["newton", n, k, 0, round(newton_us, 2), "yes"],
    ]
    return ("EXP-L3  Lemma 3: neighbourhood decoding strategies", headers, rows)


# --------------------------------------------------------------------- #
# EXP-T5
# --------------------------------------------------------------------- #


@register("EXP-T5", kind="experiment")
def exp_theorem5_reconstruction(scale: int = 1) -> Result:
    """Theorem 5: exact reconstruction across the paper's graph classes.

    ``scale`` multiplies instance sizes (benchmarks use 1; examples may
    shrink).  Every row must end in exact=yes for the reproduction to hold.
    """
    cases = [
        ("forest (k=1)", random_forest(60 * scale, 6, seed=1), 1),
        ("tree (k=1)", random_tree(80 * scale, seed=2), 1),
        ("star (k=1, deg n-1)", star_graph(100 * scale), 1),
        ("grid 2d (k=2)", grid_2d(8, 8 * scale), 2),
        ("apollonian/planar (k=3)", apollonian(60 * scale, seed=3), 3),
        ("thinned planar (k<=5)", random_planar(70 * scale, seed=4), 5),
        ("3-tree (treewidth 3)", k_tree(50 * scale, 3, seed=5), 3),
        ("partial 4-tree", partial_k_tree(50 * scale, 4, seed=6), 4),
        ("random 2-degenerate", random_k_degenerate(90 * scale, 2, seed=7), 2),
        ("hypercube d=5", hypercube(5), 5),
        ("fat-tree k=4", fat_tree(4), 4),
        ("torus 6x6", torus_2d(6, 6), 4),
    ]
    headers = ["class", "n", "m", "degeneracy", "k", "bits/node", "decode_ms", "exact"]
    rows: list[Row] = []
    for name, g, k in cases:
        protocol = DegeneracyReconstructionProtocol(k)
        msgs = protocol.message_vector(g)
        t0 = time.perf_counter()
        out = protocol.global_(g.n, msgs)
        ms = (time.perf_counter() - t0) * 1e3
        rows.append([
            name, g.n, g.m, degeneracy(g), k,
            max(m.bits for m in msgs), round(ms, 2),
            "yes" if out == g else "NO",
        ])
    return ("EXP-T5  Theorem 5: degeneracy-k reconstruction across classes", headers, rows)


# --------------------------------------------------------------------- #
# EXP-T1 / EXP-T2 / EXP-T3
# --------------------------------------------------------------------- #


def _reduction_rows(name, g, delta, gamma_bits, predicted):
    msgs = delta.message_vector(g)
    t0 = time.perf_counter()
    out = delta.global_(g.n, msgs)
    ms = (time.perf_counter() - t0) * 1e3
    delta_bits = max(m.bits for m in msgs)
    return [
        name, g.n, g.m, gamma_bits, delta_bits, predicted,
        round(ms, 1), "yes" if out == g else "NO",
    ]


@register("EXP-T1", kind="experiment")
def exp_theorem1_square(n: int = 10) -> Result:
    """Theorem 1: gadget iff-check + Algorithm 1 reconstruction via the oracle Γ."""
    headers = ["input", "n", "m", "Γ bits", "Δ bits", "Δ bits predicted", "global_ms", "exact"]
    rows: list[Row] = []
    for seed in range(3):
        g = random_square_free(n, 0.3, seed=seed)
        # gadget property audit over all pairs
        for s in range(1, n + 1):
            for t in range(s + 1, n + 1):
                assert has_square(square_gadget(g, s, t)) == g.has_edge(s, t)
        delta = SquareReduction(OracleSquareDetector())
        rows.append(_reduction_rows(f"square-free seed={seed}", g, delta, 2 * n, f"k(2n)={2 * n}"))
    return (
        "EXP-T1  Theorem 1: square detector => square-free reconstructor "
        "(gadget iff verified on all pairs)",
        headers,
        rows,
    )


@register("EXP-T2", kind="experiment")
def exp_theorem2_diameter(n: int = 7) -> Result:
    """Theorem 2 / Figure 1: diameter gadget + Algorithm 2 reconstruction."""
    headers = ["input", "n", "m", "Γ bits", "Δ bits", "Δ bits predicted", "global_ms", "exact"]
    rows: list[Row] = []
    inputs = [("figure-1 base", figure1_base())] + [
        (f"G(n,.4) seed={s}", erdos_renyi(n, 0.4, seed=s)) for s in range(2)
    ]
    for name, g in inputs:
        for s in range(1, g.n + 1):
            for t in range(s + 1, g.n + 1):
                d = diameter(diameter_gadget(g, s, t))
                assert (d <= 3) == g.has_edge(s, t) and (g.has_edge(s, t) or d == 4)
        delta = DiameterReduction(OracleDiameterDetector(3))
        rows.append(
            _reduction_rows(name, g, delta, g.n + 3, f"3k(n+3)={3 * (g.n + 3)}+frame")
        )
    return (
        "EXP-T2  Theorem 2 / Figure 1: diameter<=3 detector => full reconstructor",
        headers,
        rows,
    )


@register("EXP-T3", kind="experiment")
def exp_theorem3_triangle(n: int = 10) -> Result:
    """Theorem 3 / Figure 2: triangle gadget + bipartite reconstruction."""
    headers = ["input", "n", "m", "Γ bits", "Δ bits", "Δ bits predicted", "global_ms", "exact"]
    rows: list[Row] = []
    inputs = [("figure-2 base", figure2_base())] + [
        (f"bipartite seed={s}", random_bipartite(n // 2, n - n // 2, 0.4, seed=s))
        for s in range(2)
    ]
    for name, g in inputs:
        for s in range(1, g.n + 1):
            for t in range(s + 1, g.n + 1):
                assert has_triangle(triangle_gadget(g, s, t)) == g.has_edge(s, t)
        delta = TriangleReduction(OracleTriangleDetector())
        rows.append(
            _reduction_rows(name, g, delta, g.n + 1, f"2k(n+1)={2 * (g.n + 1)}+frame")
        )
    return (
        "EXP-T3  Theorem 3 / Figure 2: triangle detector => bipartite reconstructor",
        headers,
        rows,
    )


# --------------------------------------------------------------------- #
# EXP-ADV
# --------------------------------------------------------------------- #


@register("EXP-ADV", kind="experiment")
def exp_adversary(max_n: int = 6) -> Result:
    """Collision search outcomes per frugal encoder (squares unless noted).

    "killed at n" means: two n-vertex graphs share a message vector yet
    differ on the property — no global function can fix that encoder.
    "rigid <= N" records a verified exhaustive *non*-collision, showing the
    impossibility is asymptotic; the crossover row locates where Lemma 1
    forces collisions regardless.
    """
    headers = ["encoder", "property", "verdict", "witness"]
    rows: list[Row] = []

    def hunt(encoder, prop, prop_name):
        for n in range(4, max_n + 1):
            w = find_collision_exhaustive(encoder, n, prop, prop_name)
            if w is not None:
                return f"killed at n={n}", (
                    f"E1={sorted(w.g_with.edges())} E2={sorted(w.g_without.edges())}"
                )
        return f"rigid <= n={max_n}", "-"

    for encoder, prop, prop_name in [
        (DegreeEncoder(), has_square, "has_square"),
        (DegreeEncoder(), has_triangle, "has_triangle"),
        (HashedNeighborhoodEncoder(bits=2, salt=7), has_square, "has_square"),
        (DegreeSumEncoder(), has_square, "has_square"),
    ]:
        verdict, witness = hunt(encoder, prop, prop_name)
        rows.append([encoder.name, prop_name, verdict, witness])

    crossover = next(
        n for n in range(4, 100_000)
        if zarankiewicz_lower_bound(n) > 4.0 * n * math.log2(n)
    )
    rows.append([
        "ANY 4-log-unit encoder", "has_square",
        f"forced collision by n={crossover}", "Lemma 1 + Kleitman-Winston",
    ])
    return ("EXP-ADV  adversarial collision search over frugal encoders", headers, rows)


# --------------------------------------------------------------------- #
# EXP-FOREST / EXP-GD
# --------------------------------------------------------------------- #


@register("EXP-FOREST", kind="experiment")
def exp_forest(ns: Sequence[int] = (16, 64, 256, 1024, 4096)) -> Result:
    """Section III.A: forest triple size vs the paper's '< 4 log n bits'."""
    headers = ["n", "bits/node", "4*log2_ceil(n)", "within_bound", "decode_ms", "exact"]
    rows: list[Row] = []
    protocol = ForestReconstructionProtocol()
    for n in ns:
        g = random_forest(n, max(1, n // 20), seed=n)
        msgs = protocol.message_vector(g)
        t0 = time.perf_counter()
        out = protocol.global_(n, msgs)
        ms = (time.perf_counter() - t0) * 1e3
        bits = max(m.bits for m in msgs)
        bound = 4 * (log2_ceil(n) + 1)  # id_width is log2_ceil(n)+1 at powers of 2
        rows.append([n, bits, bound, "yes" if bits <= bound else "NO",
                     round(ms, 2), "yes" if out == g else "NO"])
    return ("EXP-FOREST  Section III.A: forests in one frugal round", headers, rows)


@register("EXP-GD", kind="experiment")
def exp_generalized_degeneracy() -> Result:
    """Section III.E: reconstruction where pruning may use the complement side."""
    from repro.graphs.generators import complete_graph

    cases = [
        ("complement(tree n=16)", random_tree(16, seed=3).complement(), 1),
        ("complement(forest n=20)", random_forest(20, 4, seed=4).complement(), 1),
        ("K12", complete_graph(12), 1),
        ("dense core + pendant path", complete_graph(8).extended(4, [(8, 9), (9, 10), (10, 11), (11, 12)]), 2),
        ("sparse control (forest)", random_forest(18, 3, seed=5), 1),
    ]
    headers = ["input", "n", "m", "plain_degeneracy", "k", "bits/node", "exact"]
    rows: list[Row] = []
    for name, g, k in cases:
        protocol = GeneralizedDegeneracyProtocol(k)
        msgs = protocol.message_vector(g)
        out = protocol.global_(g.n, msgs)
        rows.append([
            name, g.n, g.m, degeneracy(g), k,
            max(m.bits for m in msgs), "yes" if out == g else "NO",
        ])
    return ("EXP-GD  Section III.E: generalized degeneracy reconstruction", headers, rows)


# --------------------------------------------------------------------- #
# EXP-CONN / EXP-SKETCH
# --------------------------------------------------------------------- #


@register("EXP-CONN", kind="experiment")
def exp_connectivity_partition(n: int = 256, ks: Sequence[int] = (2, 4, 8, 16)) -> Result:
    """Conclusion: k-part coalition connectivity at ~2k log n bits per node."""
    headers = ["k_parts", "n", "graph", "bits/node(max)", "bits/(k*log2 n)", "verdict", "truth"]
    rows: list[Row] = []
    for k in ks:
        for name, g in [
            ("connected G(n,2ln n/n)", erdos_renyi(n, 2 * math.log(n) / n, seed=k)),
            ("two components", disjoint_union(random_tree(n // 2, seed=k), random_tree(n - n // 2, seed=k + 1))),
        ]:
            report = PartitionConnectivityProtocol(k).run(g)
            rows.append([
                k, g.n, name, report.max_bits_per_node,
                round(report.max_bits_per_node / (k * log2_ceil(g.n)), 2),
                "connected" if report.connected else "disconnected",
                "connected" if is_connected(g) else "disconnected",
            ])
    return ("EXP-CONN  conclusion: partition connectivity, O(k log n) bits/node", headers, rows)


@register("EXP-SKETCH", kind="experiment")
def exp_connectivity_sketch(ns: Sequence[int] = (16, 32, 64, 128), seeds: int = 10) -> Result:
    """Open question (extension): AGM sketches, one round, O(log³ n) bits/node."""
    headers = ["n", "graph", "bits/node", "bits/log2^3(n)", "accuracy", "multiround bits/round"]
    rows: list[Row] = []
    for n in ns:
        for name, g in [
            ("tree", random_tree(n, seed=n)),
            ("two components", disjoint_union(random_tree(n // 2, seed=n), random_tree(n - n // 2, seed=n + 1))),
        ]:
            truth = is_connected(g)
            correct = 0
            bits = 0
            for s in range(seeds):
                p = AGMConnectivityProtocol(seed=s)
                msgs = p.message_vector(g)
                bits = max(bits, max(m.bits for m in msgs))
                if p.global_(g.n, msgs) == truth:
                    correct += 1
            multi = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=0), g)
            rows.append([
                n, name, bits, round(bits / log2_ceil(n) ** 3, 1),
                f"{correct}/{seeds}", multi.max_node_message_bits,
            ])
    return ("EXP-SKETCH  open question via AGM sketches (randomized, one round)", headers, rows)


# --------------------------------------------------------------------- #
# EXP-DEGEN
# --------------------------------------------------------------------- #


@register("EXP-DEGEN", kind="experiment")
def exp_degeneracy_classes() -> Result:
    """Section III preliminaries: degeneracy of the classes the paper names."""
    from repro.graphs.generators import polarity_graph

    cases = [
        ("forest", random_forest(50, 5, seed=1), 1),
        ("tree", random_tree(50, seed=2), 1),
        ("apollonian (planar)", apollonian(50, seed=3), 5),
        ("thinned planar", random_planar(60, seed=4), 5),
        ("3-tree (treewidth 3)", k_tree(40, 3, seed=5), 3),
        ("partial 3-tree", partial_k_tree(40, 3, seed=6), 3),
        ("grid (planar bipartite)", grid_2d(7, 7), 5),
        ("hypercube d=4", hypercube(4), 4),
        ("polarity ER_5 (extremal C4-free)", polarity_graph(5), 6),
    ]
    headers = ["class", "n", "m", "degeneracy", "paper bound", "within"]
    rows: list[Row] = []
    for name, g, bound in cases:
        d = degeneracy(g)
        rows.append([name, g.n, g.m, d, bound, "yes" if d <= bound else "NO"])
    return ("EXP-DEGEN  degeneracy of the paper's graph classes", headers, rows)


# --------------------------------------------------------------------- #
# EXP-BIP / EXP-ROUNDS / EXP-COAL (extensions)
# --------------------------------------------------------------------- #


@register("EXP-BIP", kind="experiment")
def exp_bipartiteness_sketch(ns: Sequence[int] = (8, 16, 32), seeds: int = 8) -> Result:
    """Second open question (extension): one-round randomized bipartiteness
    via double-cover sketches."""
    from repro.graphs.generators import cycle_graph
    from repro.graphs.properties import is_bipartite
    from repro.sketching import SketchBipartitenessProtocol

    headers = ["n", "graph", "truth", "accuracy", "bits/node"]
    rows: list[Row] = []
    for n in ns:
        for name, g in [
            ("even structure", grid_2d(max(2, n // 4), 4)),
            ("odd cycle + tree", disjoint_union(cycle_graph(5), random_tree(max(1, n - 5), seed=n))),
            ("random bipartite", random_bipartite(n // 2, n - n // 2, 0.3, seed=n)),
        ]:
            truth = is_bipartite(g)
            correct = 0
            bits = 0
            for s in range(seeds):
                p = SketchBipartitenessProtocol(seed=s)
                msgs = p.message_vector(g)
                bits = max(bits, max(m.bits for m in msgs))
                if p.global_(g.n, msgs) == truth:
                    correct += 1
            rows.append([g.n, name, "bipartite" if truth else "odd", f"{correct}/{seeds}", bits])
    return ("EXP-BIP  open question 2: sketch bipartiteness (double cover)", headers, rows)


@register("EXP-ROUNDS", kind="experiment")
def exp_rounds_tradeoff(ns: Sequence[int] = (16, 32, 64)) -> Result:
    """Conclusion's rounds question: bits/message vs rounds across the spectrum.

    One-round power sums (k = degeneracy), multi-round streamed sketches,
    and the adaptive neighbour-query protocol (Δ+1 rounds, strictly frugal).
    """
    from repro.model import MultiRoundReferee
    from repro.protocols.adaptive_query import AdaptiveQueryReconstruction

    headers = ["n", "protocol", "task", "rounds", "bits/message", "exact/correct"]
    rows: list[Row] = []
    for n in ns:
        g = erdos_renyi(n, 0.3, seed=n)
        k = max(1, degeneracy(g))
        one = DegeneracyReconstructionProtocol(k)
        msgs = one.message_vector(g)
        rows.append([
            n, f"power-sum (k={k})", "reconstruct", 1,
            max(m.bits for m in msgs), "yes" if one.global_(n, msgs) == g else "NO",
        ])
        adaptive = MultiRoundReferee().run(AdaptiveQueryReconstruction(), g)
        rows.append([
            n, "adaptive-query", "reconstruct", adaptive.rounds_used,
            adaptive.max_node_message_bits, "yes" if adaptive.output == g else "NO",
        ])
        from repro.sketching import MultiRoundSketchConnectivity

        multi = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=1), g)
        rows.append([
            n, "streamed sketches", "connectivity", multi.rounds_used,
            multi.max_node_message_bits,
            "yes" if multi.output == is_connected(g) else "NO",
        ])
    return ("EXP-ROUNDS  conclusion: the rounds-for-bits trade-off", headers, rows)


@register("EXP-COAL", kind="experiment")
def exp_coalition(max_n: int = 5) -> Result:
    """The partition argument in its strengthened (coalition) form."""
    from repro.reductions.coalition import (
        EdgeStatsCoalitionEncoder,
        HashedCoalitionEncoder,
        coalition_capacity_bits,
        find_coalition_collision,
    )

    headers = ["encoder", "c", "capacity bits", "property", "verdict"]
    rows: list[Row] = []
    for enc, prop, prop_name in [
        (HashedCoalitionEncoder(c=2, bits=3, salt=3), has_square, "has_square"),
        (HashedCoalitionEncoder(c=3, bits=3, salt=5), has_triangle, "has_triangle"),
        (EdgeStatsCoalitionEncoder(c=2), has_square, "has_square"),
        (HashedCoalitionEncoder(c=2, bits=48, salt=1), has_square, "has_square"),
    ]:
        verdict = "rigid (capacity exceeds family)"
        for n in range(4, max_n + 1):
            w = find_coalition_collision(enc, n, prop, prop_name)
            if w is not None:
                verdict = f"killed at n={n}"
                break
        cap = coalition_capacity_bits(enc.c, getattr(enc, "bits", 3 * 8))
        rows.append([enc.name, enc.c, cap, prop_name, verdict])
    return (
        "EXP-COAL  partition argument: constant-size coalition messages still collide",
        headers,
        rows,
    )


@register("EXP-RESULTS", kind="experiment")
def exp_results_gate() -> Result:
    """results layer — aggregation + self-diff gate over a micro-campaign."""
    from repro.engine import Campaign, Scenario
    from repro.results import aggregate, diff_campaigns

    def run_once() -> list[dict]:
        campaign = Campaign(
            [
                Scenario(name="gate-forest", family="random_forest", sizes=(12, 16),
                         protocol="forest", seeds=(0, 1)),
                Scenario(name="gate-deg", family="random_k_degenerate", sizes=(16,),
                         protocol="degeneracy", seeds=(0,),
                         family_params={"k": 2}, protocol_params={"k": 2}),
                Scenario(name="gate-conn", family="two_components", sizes=(16,),
                         protocol="agm_connectivity", seeds=(0,)),
            ],
            name="results-gate",
            results_dir=None,
        )
        return [r.to_json_dict() for r in campaign.run().records]

    a, b = run_once(), run_once()
    self_diff = "identical" if diff_campaigns(a, b).ok else "DIFFERS"
    headers = ["protocol", "n", "runs", "ok", "exact",
               "max bits (mean)", "bits/(k^2 lg n)", "self-diff"]
    rows: list[Row] = []
    for g in aggregate(a, by=("protocol", "n")):
        exact = g["exact"]
        rows.append([
            g["group"]["protocol"], g["group"]["n"], g["runs"],
            g["statuses"].get("ok", 0),
            f"{exact['true']}/{exact['checked']}" if exact["checked"] else "-",
            g["max_message_bits"]["mean"],
            g["bits_per_k2_log_n"]["mean"] if g["bits_per_k2_log_n"] else "-",
            self_diff,
        ])
    return (
        "EXP-RESULTS  results layer: identical-seed campaigns aggregate and diff clean",
        headers,
        rows,
    )


# The EXPERIMENTS dict literal is gone — experiments register themselves
# above (kind="experiment" in repro.registry); the old name survives as a
# deprecated read-only view handed out by __getattr__ below.


def __getattr__(name: str):
    if name == "EXPERIMENTS":
        from repro import registry

        view = registry.EXPERIMENTS_VIEW
        view._warn()
        return view
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
