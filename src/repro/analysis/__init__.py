"""Experiment harness: one function per experiment ID in DESIGN.md.

Each ``exp_*`` function returns ``(headers, rows)`` where rows are lists of
display-ready values; :func:`~repro.analysis.tables.format_table` renders
them in the aligned plain-text form the benchmarks write to
``benchmarks/results/`` and the CLI prints.  EXPERIMENTS.md quotes these
tables as the paper-vs-measured record.
"""

from repro.analysis.tables import format_table
from repro.analysis.experiments import (
    exp_lemma1_counting,
    exp_lemma2_encoding,
    exp_lemma3_decoding,
    exp_theorem5_reconstruction,
    exp_theorem1_square,
    exp_theorem2_diameter,
    exp_theorem3_triangle,
    exp_adversary,
    exp_forest,
    exp_generalized_degeneracy,
    exp_connectivity_partition,
    exp_connectivity_sketch,
    exp_degeneracy_classes,
    exp_bipartiteness_sketch,
    exp_rounds_tradeoff,
    exp_coalition,
    exp_results_gate,
)


def __getattr__(name: str):
    # Deprecated: EXPERIMENTS is now the experiment registry
    # (kind="experiment" in repro.registry); first touch warns.
    if name == "EXPERIMENTS":
        from repro.analysis import experiments

        return experiments.EXPERIMENTS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# EXPERIMENTS resolves via __getattr__ (deprecated) but stays out of
# __all__ so star-imports neither warn nor consume the warn-once latch.
__all__ = [
    "format_table",
    "exp_lemma1_counting",
    "exp_lemma2_encoding",
    "exp_lemma3_decoding",
    "exp_theorem5_reconstruction",
    "exp_theorem1_square",
    "exp_theorem2_diameter",
    "exp_theorem3_triangle",
    "exp_adversary",
    "exp_forest",
    "exp_generalized_degeneracy",
    "exp_connectivity_partition",
    "exp_connectivity_sketch",
    "exp_degeneracy_classes",
    "exp_bipartiteness_sketch",
    "exp_rounds_tradeoff",
    "exp_coalition",
    "exp_results_gate",
]
