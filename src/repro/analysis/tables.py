"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out) + "\n"
