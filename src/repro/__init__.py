"""repro — the referee model of Becker, Matamala, Nisse, Rapaport, Suchan &
Todinca, *"Adding a referee to an interconnection network: What can(not) be
computed in one round"* (IPDPS 2011), as a runnable Python library.

The package simulates the paper's model — every node of a labelled graph
sends one ``O(log n)``-bit message to a central referee — and implements,
from scratch, everything the paper builds on it:

* the **degeneracy-k reconstruction protocol** (power sums + referee-side
  pruning; Algorithms 3–4, Theorem 5), its forest special case, recognition
  variant, and generalized-degeneracy extension;
* the **impossibility reductions** for squares, triangles, and diameter
  (Theorems 1–3) as executable protocol transformers, with the counting
  bound (Lemma 1) and an adversarial collision search;
* the conclusion's **partition connectivity** scheme and — answering the
  paper's main open question with the technique the field later adopted —
  **AGM linear-sketch connectivity** in one round and in the multi-round
  variant;
* the **execution engine** (:mod:`repro.engine`): serial / thread / process
  executors that batch local-phase calls and fan out whole runs, a
  fault-injection model for the node→referee link, and a declarative
  scenario/campaign layer with content-hash caching and JSONL results;
* the **results layer** (:mod:`repro.results`): schema-validated streaming
  record I/O, group-by analytics with the Lemma-2 ``bits/(k² log n)``
  normalization, campaign diffing on spec content hashes, and frozen
  baselines that turn regressions into CI failures.

Quickstart::

    from repro import LabeledGraph, DegeneracyReconstructionProtocol, Referee
    from repro.graphs.generators import random_planar

    g = random_planar(64, seed=1)            # planar => degeneracy <= 5
    protocol = DegeneracyReconstructionProtocol(k=5)
    report = Referee().run(protocol, g)
    assert report.output == g                # exact reconstruction
    print(report.max_message_bits, "bits/node")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``python -m repro list`` enumerates the runnable
experiments and builtin campaigns, and README.md shows the five-line
campaign quickstart.
"""

from repro.errors import (
    ReproError,
    BitstreamError,
    CodecError,
    GraphError,
    ProtocolError,
    FrugalityViolation,
    DecodeError,
    RecognitionFailure,
    SketchFailure,
)
from repro.graphs import LabeledGraph, degeneracy
from repro.model import (
    Message,
    OneRoundProtocol,
    DecisionProtocol,
    ReconstructionProtocol,
    Referee,
    RunReport,
    FrugalityAuditor,
    MultiRoundReferee,
)
from repro.protocols import (
    DegeneracyReconstructionProtocol,
    DegeneracyRecognitionProtocol,
    ForestReconstructionProtocol,
    GeneralizedDegeneracyProtocol,
    BoundedDegreeProtocol,
    PartitionConnectivityProtocol,
)
from repro.reductions import SquareReduction, DiameterReduction, TriangleReduction
from repro.sketching import AGMConnectivityProtocol
from repro.engine import (
    Executor,
    SerialExecutor,
    ThreadPoolExecutor,
    ProcessPoolExecutor,
    FaultSpec,
    Scenario,
    RunSpec,
    RunRecord,
    Campaign,
    builtin_campaign,
    load_campaign,
)
from repro.results import aggregate, diff_campaigns, load_records

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "BitstreamError",
    "CodecError",
    "GraphError",
    "ProtocolError",
    "FrugalityViolation",
    "DecodeError",
    "RecognitionFailure",
    "SketchFailure",
    "LabeledGraph",
    "degeneracy",
    "Message",
    "OneRoundProtocol",
    "DecisionProtocol",
    "ReconstructionProtocol",
    "Referee",
    "RunReport",
    "FrugalityAuditor",
    "MultiRoundReferee",
    "DegeneracyReconstructionProtocol",
    "DegeneracyRecognitionProtocol",
    "ForestReconstructionProtocol",
    "GeneralizedDegeneracyProtocol",
    "BoundedDegreeProtocol",
    "PartitionConnectivityProtocol",
    "SquareReduction",
    "DiameterReduction",
    "TriangleReduction",
    "AGMConnectivityProtocol",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "FaultSpec",
    "Scenario",
    "RunSpec",
    "RunRecord",
    "Campaign",
    "builtin_campaign",
    "load_campaign",
    "aggregate",
    "diff_campaigns",
    "load_records",
]
