"""repro — the referee model of Becker, Matamala, Nisse, Rapaport, Suchan &
Todinca, *"Adding a referee to an interconnection network: What can(not) be
computed in one round"* (IPDPS 2011), as a runnable Python library.

The package simulates the paper's model — every node of a labelled graph
sends one ``O(log n)``-bit message to a central referee — and implements,
from scratch, everything the paper builds on it:

* the **degeneracy-k reconstruction protocol** (power sums + referee-side
  pruning; Algorithms 3–4, Theorem 5), its forest special case, recognition
  variant, and generalized-degeneracy extension;
* the **impossibility reductions** for squares, triangles, and diameter
  (Theorems 1–3) as executable protocol transformers, with the counting
  bound (Lemma 1) and an adversarial collision search;
* the conclusion's **partition connectivity** scheme and — answering the
  paper's main open question with the technique the field later adopted —
  **AGM linear-sketch connectivity** in one round and in the multi-round
  variant;
* the **execution engine** (:mod:`repro.engine`): serial / thread / process
  executors that batch local-phase calls and fan out whole runs, a
  fault-injection model for the node→referee link, and a declarative
  scenario/campaign layer with content-hash caching and JSONL results;
* the **results layer** (:mod:`repro.results`): schema-validated streaming
  record I/O, group-by analytics with the Lemma-2 ``bits/(k² log n)``
  normalization, campaign diffing on spec content hashes, and frozen
  baselines that turn regressions into CI failures;
* the **registry** (:mod:`repro.registry`): every pluggable piece — graph
  families, protocols, experiments, builtin campaigns — self-registers
  with capability metadata and a parameter schema, introspectable via
  ``repro.registry.catalog()`` / ``python -m repro list``;
* the **fluent API** (:mod:`repro.api`): ``Session`` chains the whole
  pipeline (graphs → protocol → faults → executor → run → aggregate →
  gate) and produces records identical to hand-wired campaigns;
* the **benchmark harness** (:mod:`repro.bench`): declaratively registered
  benchmarks (``kind="benchmark"``), one timing/RSS harness with stable
  JSON reports (``python -m repro bench`` → ``BENCH_PR4.json``), and
  regression gating against frozen bench baselines with
  optimized-vs-naive speedup floors;
* the **observability layer** (:mod:`repro.obs`): a span tracer on the
  engine's monotonic timebase streaming crash-durable
  ``<name>.events.jsonl`` telemetry, always-on campaign metrics
  (counters/gauges/histograms, Prometheus-renderable), live progress
  reporting, and the ``repro trace`` / ``repro stats`` readers — off by
  default and provably free (the ``trace-overhead`` benchmark pins it);
* the **campaign service** (:mod:`repro.serve`): a zero-dependency asyncio
  HTTP/JSON daemon (``python -m repro serve``) with a durable, restart-
  recoverable job store, priority admission with backpressure, a
  shard-pulling worker pool riding the engine's checkpoint/resume
  machinery, streaming JSONL record follow, and a stdlib thin client
  (``repro submit`` / ``jobs`` / ``job`` and ``Session.submit(url)``).

Quickstart (the fluent pipeline)::

    from repro.api import Session

    run = (Session("quick")
           .graphs("random_planar", n=64, seeds=range(3))
           .protocol("degeneracy", k=5)
           .run())
    print(run.aggregate(by=["n"]).table())

or one round on one graph, by hand::

    from repro import DegeneracyReconstructionProtocol, Referee
    from repro.graphs.generators import random_planar

    g = random_planar(64, seed=1)            # planar => degeneracy <= 5
    protocol = DegeneracyReconstructionProtocol(k=5)
    report = Referee().run(protocol, g)
    assert report.output == g                # exact reconstruction
    print(report.max_message_bits, "bits/node")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``python -m repro list`` enumerates the runnable
experiments and builtin campaigns, and README.md shows the five-line
campaign quickstart.
"""

import importlib
from typing import Any

__version__ = "1.9.0"

#: Lazy export map (PEP 562): public name -> defining module.  `import
#: repro` stays cheap — protocols, engine, sketching, and the analysis
#: stack load on first attribute access, and the registry layer
#: (repro.registry) lazy-loads their registrations the same way.
_LAZY_EXPORTS = {
    # errors
    "ReproError": "repro.errors",
    "UnknownRegistryEntry": "repro.errors",
    "BitstreamError": "repro.errors",
    "CodecError": "repro.errors",
    "GraphError": "repro.errors",
    "ProtocolError": "repro.errors",
    "FrugalityViolation": "repro.errors",
    "DecodeError": "repro.errors",
    "RecognitionFailure": "repro.errors",
    "SketchFailure": "repro.errors",
    # graphs
    "LabeledGraph": "repro.graphs",
    "degeneracy": "repro.graphs",
    # model
    "Message": "repro.model",
    "OneRoundProtocol": "repro.model",
    "DecisionProtocol": "repro.model",
    "ReconstructionProtocol": "repro.model",
    "Referee": "repro.model",
    "RunReport": "repro.model",
    "FrugalityAuditor": "repro.model",
    "MultiRoundReferee": "repro.model",
    # protocols
    "DegeneracyReconstructionProtocol": "repro.protocols",
    "DegeneracyRecognitionProtocol": "repro.protocols",
    "ForestReconstructionProtocol": "repro.protocols",
    "GeneralizedDegeneracyProtocol": "repro.protocols",
    "BoundedDegreeProtocol": "repro.protocols",
    "PartitionConnectivityProtocol": "repro.protocols",
    # reductions
    "SquareReduction": "repro.reductions",
    "DiameterReduction": "repro.reductions",
    "TriangleReduction": "repro.reductions",
    # sketching
    "AGMConnectivityProtocol": "repro.sketching",
    # kernel backends
    "KernelError": "repro.errors",
    # engine
    "Executor": "repro.engine",
    "SerialExecutor": "repro.engine",
    "ThreadPoolExecutor": "repro.engine",
    "ProcessPoolExecutor": "repro.engine",
    "FaultSpec": "repro.engine",
    "Scenario": "repro.engine",
    "RunSpec": "repro.engine",
    "RunRecord": "repro.engine",
    "Campaign": "repro.engine",
    "builtin_campaign": "repro.engine",
    "load_campaign": "repro.engine",
    "ShardError": "repro.errors",
    "ShardIncomplete": "repro.errors",
    "ShardManifest": "repro.engine",
    "merge_shards": "repro.engine",
    # fluent front door
    "Session": "repro.api",
    # observability
    "ObsError": "repro.errors",
    "WorkerCrash": "repro.errors",
    "Tracer": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "ProgressReporter": "repro.obs",
    # results
    "aggregate": "repro.results",
    "diff_campaigns": "repro.results",
    "load_records": "repro.results",
    # campaign service
    "ServeError": "repro.errors",
    "JobNotFound": "repro.errors",
    "QueueFull": "repro.errors",
    "ServeClient": "repro.serve",
    "RemoteJob": "repro.serve",
    "ReproServer": "repro.serve",
    "ServerThread": "repro.serve",
}

__all__ = ["__version__", *_LAZY_EXPORTS]


def __getattr__(name: str) -> Any:
    module = _LAZY_EXPORTS.get(name)
    if module is not None:
        value = getattr(importlib.import_module(module), name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    # subpackages resolve as attributes too (`import repro; repro.engine`)
    try:
        return importlib.import_module(f"repro.{name}")
    except ModuleNotFoundError as exc:
        if exc.name != f"repro.{name}":
            raise  # a real missing dependency inside the submodule
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None


def __dir__() -> list[str]:
    return sorted(__all__)
