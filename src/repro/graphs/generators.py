"""Graph generators for every family the paper mentions.

Positive-result families (Section III): forests (degeneracy 1), k-trees and
partial k-trees (degeneracy <= k, treewidth k), planar triangulations
(planar => degeneracy <= 5; the Apollonian construction used here is
3-degenerate), and random k-degenerate graphs built directly from an
elimination order.

Negative-result families (Section II): square-free graphs (Theorem 1),
bipartite graphs with fixed parts (Theorem 3), and arbitrary Erdős–Rényi
graphs (Theorem 2).

Interconnection-network topologies (grids, tori, hypercubes, fat-trees) back
the examples: they are the "networks" the model's introduction motivates,
and all have small degeneracy, so the paper's protocol reconstructs them.

All random generators take an integer ``seed`` and are deterministic given
it (``random.Random(seed)``; the combinatorial choices don't benefit from
numpy's bit generators and this keeps graphs reproducible across platforms).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import GraphError, InvalidVertexError, ProtocolError
from repro.graphs.labeled import LabeledGraph
from repro.registry import register

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "fat_tree",
    "random_tree",
    "random_forest",
    "erdos_renyi",
    "random_bipartite",
    "k_tree",
    "partial_k_tree",
    "random_k_degenerate",
    "apollonian",
    "random_planar",
    "polarity_graph",
    "random_square_free",
    "disjoint_union",
]


# --------------------------------------------------------------------- #
# deterministic topologies
# --------------------------------------------------------------------- #


def path_graph(n: int) -> LabeledGraph:
    """Path ``1 - 2 - ... - n``."""
    return LabeledGraph(n, ((i, i + 1) for i in range(1, n)))


def cycle_graph(n: int) -> LabeledGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n)
    g.add_edge(n, 1)
    return g


def star_graph(n: int) -> LabeledGraph:
    """Star: vertex 1 adjacent to ``2..n``."""
    return LabeledGraph(n, ((1, i) for i in range(2, n + 1)))


def complete_graph(n: int) -> LabeledGraph:
    """K_n."""
    return LabeledGraph(n, ((u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)))


def complete_bipartite(a: int, b: int) -> LabeledGraph:
    """K_{a,b} with parts ``1..a`` and ``a+1..a+b``."""
    return LabeledGraph(a + b, ((u, v) for u in range(1, a + 1) for v in range(a + 1, a + b + 1)))


def grid_2d(rows: int, cols: int) -> LabeledGraph:
    """``rows x cols`` grid; vertex ``(r, c)`` (0-based) has ID ``r*cols + c + 1``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs rows, cols >= 1")
    g = LabeledGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c + 1
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_2d(rows: int, cols: int) -> LabeledGraph:
    """2-D torus (grid with wraparound); needs ``rows, cols >= 3`` to stay simple."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows, cols >= 3 to avoid parallel edges")
    g = grid_2d(rows, cols)
    for r in range(rows):
        g.add_edge(r * cols + 1, r * cols + cols)
    for c in range(cols):
        g.add_edge(c + 1, (rows - 1) * cols + c + 1)
    return g


def hypercube(dim: int) -> LabeledGraph:
    """``dim``-dimensional hypercube on ``2^dim`` vertices (vertex v-1 is the coordinate word)."""
    if dim < 0:
        raise GraphError("hypercube dimension must be >= 0")
    n = 1 << dim
    g = LabeledGraph(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                g.add_edge(u + 1, v + 1)
    return g


def fat_tree(k: int) -> LabeledGraph:
    """A k-ary fat-tree datacenter topology (k even): core, aggregation, edge switches.

    The standard 3-tier fat-tree: ``(k/2)²`` core switches, ``k`` pods each
    with ``k/2`` aggregation and ``k/2`` edge switches.  Hosts are omitted —
    the referee model reconstructs the switching fabric.  IDs: core first,
    then per pod aggregation then edge.
    """
    if k < 2 or k % 2:
        raise GraphError(f"fat-tree needs even k >= 2, got {k}")
    half = k // 2
    n_core = half * half
    n = n_core + k * k  # each pod has k switches
    g = LabeledGraph(n)

    def agg(pod: int, i: int) -> int:
        return n_core + pod * k + i + 1

    def edge(pod: int, i: int) -> int:
        return n_core + pod * k + half + i + 1

    for pod in range(k):
        for i in range(half):
            for j in range(half):
                # aggregation switch i connects to core switches i*half..i*half+half-1
                g.add_edge(agg(pod, i), i * half + j + 1)
                g.add_edge(agg(pod, i), edge(pod, j))
    return g


# --------------------------------------------------------------------- #
# random families
# --------------------------------------------------------------------- #


def random_tree(n: int, seed: int | None = None) -> LabeledGraph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    if n < 1:
        raise GraphError(f"tree needs n >= 1, got {n}")
    if n == 1:
        return LabeledGraph(1)
    if n == 2:
        return LabeledGraph(2, [(1, 2)])
    rng = random.Random(seed)
    prufer = [rng.randrange(1, n + 1) for _ in range(n - 2)]
    return _tree_from_prufer(n, prufer)


def _tree_from_prufer(n: int, prufer: Sequence[int]) -> LabeledGraph:
    degree = [1] * (n + 1)
    for v in prufer:
        degree[v] += 1
    g = LabeledGraph(n)
    import heapq

    leaves = [v for v in range(1, n + 1) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    g.add_edge(u, w)
    return g


def random_forest(n: int, n_trees: int, seed: int | None = None) -> LabeledGraph:
    """Random labelled forest: a random tree with ``n_trees - 1`` random edges removed."""
    if not 1 <= n_trees <= n:
        raise GraphError(f"need 1 <= n_trees <= n, got n_trees={n_trees}, n={n}")
    rng = random.Random(seed)
    g = random_tree(n, seed=rng.randrange(1 << 30))
    edges = list(g.edges())
    for u, v in rng.sample(edges, n_trees - 1):
        g.remove_edge(u, v)
    return g


def erdos_renyi(n: int, p: float, seed: int | None = None) -> LabeledGraph:
    """G(n, p): each of the C(n,2) possible edges present independently with probability p."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    g = LabeledGraph(n)
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_bipartite(a: int, b: int, p: float, seed: int | None = None) -> LabeledGraph:
    """Random bipartite graph with parts ``1..a`` and ``a+1..a+b`` (Theorem 3's family)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    g = LabeledGraph(a + b)
    for u in range(1, a + 1):
        for v in range(a + 1, a + b + 1):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def k_tree(n: int, k: int, seed: int | None = None) -> LabeledGraph:
    """A random k-tree: K_{k+1} plus vertices each adjacent to a random existing k-clique.

    k-trees are the maximal treewidth-k graphs; their degeneracy is exactly
    k (for n > k), which makes them the paper's canonical positive family.
    """
    if n < k + 1:
        raise GraphError(f"k-tree needs n >= k+1, got n={n}, k={k}")
    rng = random.Random(seed)
    g = LabeledGraph(n)
    cliques: list[tuple[int, ...]] = []
    base = tuple(range(1, k + 2))
    for u in base:
        for v in base:
            if u < v:
                g.add_edge(u, v)
    for sub in _k_subsets(base, k):
        cliques.append(sub)
    for v in range(k + 2, n + 1):
        clique = cliques[rng.randrange(len(cliques))]
        for u in clique:
            g.add_edge(v, u)
        for drop in range(k):
            new_clique = tuple(sorted(set(clique) - {clique[drop]} | {v}))
            cliques.append(new_clique)
    return g


def _k_subsets(items: Sequence[int], k: int) -> list[tuple[int, ...]]:
    from itertools import combinations

    return [tuple(c) for c in combinations(items, k)]


def partial_k_tree(n: int, k: int, keep_prob: float = 0.7, seed: int | None = None) -> LabeledGraph:
    """A random partial k-tree (subgraph of a k-tree): treewidth <= k, degeneracy <= k."""
    rng = random.Random(seed)
    g = k_tree(n, k, seed=rng.randrange(1 << 30))
    for u, v in list(g.edges()):
        if rng.random() > keep_prob:
            g.remove_edge(u, v)
    return g


def random_k_degenerate(n: int, k: int, seed: int | None = None, *, exact: bool = True) -> LabeledGraph:
    """A random graph with degeneracy <= k, built along a random elimination order.

    Vertices are inserted in a random permutation order; each new vertex
    picks ``min(k, #existing)`` earlier vertices as neighbours (all of them
    when ``exact`` is true, a random subset otherwise).  The insertion order
    reversed is a valid Definition-2 elimination order, so degeneracy <= k
    by construction.
    """
    if k < 0:
        raise GraphError(f"k must be >= 0, got {k}")
    rng = random.Random(seed)
    order = list(range(1, n + 1))
    rng.shuffle(order)
    g = LabeledGraph(n)
    placed: list[int] = []
    for v in order:
        if placed:
            want = min(k, len(placed))
            if not exact:
                want = rng.randint(0, want)
            for u in rng.sample(placed, want):
                g.add_edge(v, u)
        placed.append(v)
    return g


def apollonian(n: int, seed: int | None = None) -> LabeledGraph:
    """Random Apollonian network: planar triangulation grown by face subdivision.

    Start from a triangle; repeatedly pick a random face and put a new
    vertex inside it adjacent to the face's three corners.  Always planar
    and 3-degenerate — a convenient concrete member of the paper's
    "planar graphs have degeneracy at most 5" class.
    """
    if n < 3:
        raise GraphError(f"apollonian needs n >= 3, got {n}")
    rng = random.Random(seed)
    g = LabeledGraph(n, [(1, 2), (2, 3), (1, 3)])
    faces: list[tuple[int, int, int]] = [(1, 2, 3)]
    for v in range(4, n + 1):
        idx = rng.randrange(len(faces))
        a, b, c = faces[idx]
        g.add_edge(v, a)
        g.add_edge(v, b)
        g.add_edge(v, c)
        faces[idx] = (a, b, v)
        faces.append((a, c, v))
        faces.append((b, c, v))
    return g


def random_planar(n: int, keep_prob: float = 0.8, seed: int | None = None) -> LabeledGraph:
    """A random planar graph: an Apollonian triangulation with edges thinned."""
    rng = random.Random(seed)
    if n < 3:
        return path_graph(n)
    g = apollonian(n, seed=rng.randrange(1 << 30))
    for u, v in list(g.edges()):
        if rng.random() > keep_prob:
            g.remove_edge(u, v)
    return g


def polarity_graph(q: int) -> LabeledGraph:
    """The Erdős–Rényi polarity graph ER_q — the *extremal* C4-free graph.

    Vertices are the ``q² + q + 1`` points of the projective plane PG(2, q)
    (``q`` prime); two distinct points are adjacent iff their dot product
    over GF(q) is zero.  Any two points lie on exactly one common line, so
    no two vertices share two common neighbours: **square-free**, with
    ``~ ½ q(q+1)²`` edges ``≈ ½ n^{3/2}`` — the construction behind the
    Kővári–Sós–Turán bound that powers Theorem 1's counting argument
    (every subgraph of ER_q is C4-free, giving ``2^{Ω(n^{3/2})}``
    square-free graphs).

    Point IDs follow the canonical representative order: ``(1, y, z)``
    lexicographically, then ``(0, 1, z)``, then ``(0, 0, 1)``.
    """
    if q < 2 or any(q % d == 0 for d in range(2, int(q**0.5) + 1)):
        raise GraphError(f"polarity graph needs prime q, got {q}")
    points: list[tuple[int, int, int]] = []
    for y in range(q):
        for z in range(q):
            points.append((1, y, z))
    for z in range(q):
        points.append((0, 1, z))
    points.append((0, 0, 1))
    n = len(points)  # q^2 + q + 1
    g = LabeledGraph(n)
    for i in range(n):
        xi, yi, zi = points[i]
        for j in range(i + 1, n):
            xj, yj, zj = points[j]
            if (xi * xj + yi * yj + zi * zj) % q == 0:
                g.add_edge(i + 1, j + 1)
    return g


def random_square_free(n: int, p: float = 0.3, seed: int | None = None) -> LabeledGraph:
    """A random C4-free graph: G(n, p) repaired by deleting one edge per square.

    Theorem 1's hard family.  The repair loop deletes a random edge of some
    4-cycle until none remain; the result is square-free by construction
    (verified in tests), though not uniform over the family — uniformity is
    irrelevant for the reduction experiments, which only need membership.
    """
    rng = random.Random(seed)
    g = erdos_renyi(n, p, seed=rng.randrange(1 << 30))
    while True:
        cyc = _find_square(g)
        if cyc is None:
            return g
        a, b, c, d = cyc  # edges: ab, bc, cd, da
        edges = [(a, b), (b, c), (c, d), (d, a)]
        u, v = edges[rng.randrange(4)]
        g.remove_edge(u, v)


def _find_square(g: LabeledGraph) -> tuple[int, int, int, int] | None:
    """Return a 4-cycle ``(a, b, c, d)`` with edges ab, bc, cd, da, or None."""
    seen: dict[tuple[int, int], int] = {}
    for v in g.vertices():
        nbrs = sorted(g.neighbors(v))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                pair = (nbrs[i], nbrs[j])
                if pair in seen:
                    return (seen[pair], nbrs[i], v, nbrs[j])
                seen[pair] = v
    return None


def disjoint_union(*graphs: LabeledGraph) -> LabeledGraph:
    """Disjoint union; vertex IDs of later graphs are shifted past earlier ones."""
    total = sum(g.n for g in graphs)
    out = LabeledGraph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            out.add_edge(u + offset, v + offset)
        offset += g.n
    return out


# --------------------------------------------------------------------- #
# registered family builders
#
# The engine's graph-family registry entries.  Every builder takes the
# engine context ``(n, seed)`` first and the family's tunable parameters
# as keywords, and must produce exactly n vertices (or raise GraphError /
# ProtocolError for unsatisfiable sizes, which campaigns record as run
# errors rather than crashing).  This module *owns* these registrations —
# the engine resolves families purely by name through repro.registry.
# --------------------------------------------------------------------- #


@register("path", kind="graph_family", capabilities=("deterministic",),
          summary="Path P_n (degeneracy 1).")
def _family_path(n: int, seed: int) -> LabeledGraph:
    return path_graph(n)


@register("cycle", kind="graph_family", capabilities=("deterministic",),
          summary="Cycle C_n (degeneracy 2).")
def _family_cycle(n: int, seed: int) -> LabeledGraph:
    return cycle_graph(n)


@register("star", kind="graph_family", capabilities=("deterministic",),
          summary="Star K_{1,n-1}: one hub of degree n-1.")
def _family_star(n: int, seed: int) -> LabeledGraph:
    return star_graph(n)


@register("grid", kind="graph_family", capabilities=("deterministic", "planar"),
          summary="2-D grid on exactly n vertices (squarest factorization).")
def _family_grid(n: int, seed: int) -> LabeledGraph:
    # Squarest factorization with exactly n vertices (worst case 1 x n).
    if n < 1:
        raise ProtocolError(f"grid family needs size >= 1, got {n}")
    rows = next(d for d in range(int(n**0.5), 0, -1) if n % d == 0)
    return grid_2d(rows, n // rows)


@register("hypercube", kind="graph_family", capabilities=("deterministic",),
          summary="Hypercube Q_d; size must be a power of two >= 2.")
def _family_hypercube(n: int, seed: int) -> LabeledGraph:
    dim = max(0, n.bit_length() - 1)
    if n < 2 or (1 << dim) != n:
        raise ProtocolError(
            f"hypercube family needs a power-of-two size >= 2, got {n}"
        )
    return hypercube(dim)


@register("random_tree", kind="graph_family",
          capabilities=("random", "forest"),
          summary="Uniform random labelled tree (Prüfer sequence).")
def _family_random_tree(n: int, seed: int) -> LabeledGraph:
    return random_tree(n, seed=seed)


@register("random_forest", kind="graph_family",
          capabilities=("random", "forest"),
          summary="Random labelled forest (default n//20 trees).")
def _family_random_forest(n: int, seed: int, n_trees: int | None = None) -> LabeledGraph:
    return random_forest(n, n_trees if n_trees is not None else max(1, n // 20), seed=seed)


@register("two_components", kind="graph_family",
          capabilities=("random", "forest", "disconnected"),
          summary="Two random trees, disjoint — the canonical disconnected input.")
def _family_two_components(n: int, seed: int) -> LabeledGraph:
    a = n // 2
    return disjoint_union(random_tree(a, seed=seed), random_tree(n - a, seed=seed + 1))


@register("erdos_renyi", kind="graph_family", aliases=("gnp",),
          capabilities=("random",),
          summary="Erdős–Rényi G(n, p).")
def _family_erdos_renyi(n: int, seed: int, p: float = 0.1) -> LabeledGraph:
    return erdos_renyi(n, p, seed=seed)


@register("random_bipartite", kind="graph_family",
          capabilities=("random", "bipartite"),
          summary="Random bipartite graph with parts n//2 and n - n//2.")
def _family_random_bipartite(n: int, seed: int, p: float = 0.3) -> LabeledGraph:
    return random_bipartite(n // 2, n - n // 2, p, seed=seed)


@register("random_k_degenerate", kind="graph_family",
          capabilities=("random", "bounded_degeneracy"),
          summary="Random k-degenerate graph built from an elimination order.")
def _family_k_degenerate(n: int, seed: int, k: int = 2) -> LabeledGraph:
    return random_k_degenerate(n, k, seed=seed)


@register("random_planar", kind="graph_family",
          capabilities=("random", "planar", "bounded_degeneracy"),
          summary="Thinned Apollonian triangulation (planar, degeneracy <= 5).")
def _family_planar(n: int, seed: int, keep_prob: float = 0.8) -> LabeledGraph:
    return random_planar(n, keep_prob, seed=seed)


@register("apollonian", kind="graph_family",
          capabilities=("random", "planar", "bounded_degeneracy"),
          summary="Apollonian planar triangulation (3-degenerate).")
def _family_apollonian(n: int, seed: int) -> LabeledGraph:
    return apollonian(n, seed=seed)
