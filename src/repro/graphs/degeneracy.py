"""Degeneracy orderings (Definition 2 of the paper).

A graph has degeneracy ``k`` when its vertices admit an elimination order
``r_1, ..., r_n`` such that each ``r_i`` has at most ``k`` neighbours among
``{r_1, ..., r_{i-1}}`` — equivalently, repeatedly deleting a minimum-degree
vertex never meets degree above ``k``.  The paper's reconstruction protocol
(Theorem 5) works for exactly these graphs, and the referee *discovers* the
order while decoding; these functions give the ground truth the experiments
compare against.

The implementation is the Matula–Beck bucket algorithm, ``O(n + m)``.
"""

from __future__ import annotations

from repro.graphs.labeled import LabeledGraph

__all__ = ["degeneracy", "degeneracy_ordering", "core_numbers", "is_k_degenerate"]


def degeneracy(g: LabeledGraph) -> int:
    """The degeneracy of ``g`` (0 for the empty/edgeless graph)."""
    k, _ = degeneracy_ordering(g)
    return k


def degeneracy_ordering(g: LabeledGraph) -> tuple[int, list[int]]:
    """Return ``(k, order)`` where ``order`` is a degeneracy elimination order.

    ``order`` lists vertices in *removal* order: each vertex has at most
    ``k`` neighbours among the vertices after it... precisely, at most ``k``
    neighbours *not yet removed* at its turn, which matches Definition 2
    read right-to-left (the paper's ``r_1..r_n`` is our order reversed).
    """
    n = g.n
    if n == 0:
        return 0, []
    deg = [0] * (n + 1)
    max_deg = 0
    for v in g.vertices():
        deg[v] = g.degree(v)
        max_deg = max(max_deg, deg[v])
    buckets: list[set[int]] = [set() for _ in range(max_deg + 1)]
    for v in g.vertices():
        buckets[deg[v]].add(v)
    removed = [False] * (n + 1)
    order: list[int] = []
    k = 0
    cursor = 0
    for _ in range(n):
        while not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        k = max(k, cursor)
        removed[v] = True
        order.append(v)
        for w in g.neighbors(v):
            if not removed[w]:
                buckets[deg[w]].discard(w)
                deg[w] -= 1
                buckets[deg[w]].add(w)
        # degree of some neighbour may have dropped below the cursor
        cursor = max(0, cursor - 1)
    return k, order


def core_numbers(g: LabeledGraph) -> dict[int, int]:
    """Core number of each vertex (max k such that v lies in the k-core)."""
    n = g.n
    core: dict[int, int] = {}
    if n == 0:
        return core
    deg = {v: g.degree(v) for v in g.vertices()}
    max_deg = max(deg.values(), default=0)
    buckets: list[set[int]] = [set() for _ in range(max_deg + 1)]
    for v, d in deg.items():
        buckets[d].add(v)
    removed = set()
    current = 0
    cursor = 0
    for _ in range(n):
        while not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        current = max(current, cursor)
        core[v] = current
        removed.add(v)
        for w in g.neighbors(v):
            if w not in removed:
                buckets[deg[w]].discard(w)
                deg[w] -= 1
                buckets[deg[w]].add(w)
        cursor = max(0, cursor - 1)
    return core


def is_k_degenerate(g: LabeledGraph, k: int) -> bool:
    """Whether ``g`` has degeneracy at most ``k``."""
    return degeneracy(g) <= k
