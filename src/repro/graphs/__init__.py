"""Labelled-graph substrate.

The paper's model is defined on *labelled* graphs: simple undirected graphs
whose vertex set is exactly ``{1, ..., n}`` (Section I.B — "in the whole
paper, 'graph' means 'labelled graph'").  :class:`LabeledGraph` enforces that
invariant structurally, which keeps every protocol implementation honest
about what a node knows: its own ID, its neighbours' IDs, and ``n``.

Submodules
----------
``labeled``      the graph type itself (1-based IDs, adjacency sets)
``generators``   graph families used across experiments (forests, k-trees,
                 planar triangulations, bipartite, square-free, k-degenerate,
                 Erdős–Rényi, grids/hypercubes/fat-trees/tori)
``degeneracy``   Matula–Beck degeneracy ordering and core numbers
``properties``   predicates the paper reasons about (triangle, square,
                 diameter, connectivity, bipartiteness, girth)
``counting``     exact small-n family counts + the asymptotic exponents used
                 by Lemma 1's information bound
``families``     fixed named instances (Petersen, the Figure 1/2 style
                 demonstration graphs)
"""

from repro.graphs.labeled import LabeledGraph
from repro.graphs.degeneracy import (
    degeneracy,
    degeneracy_ordering,
    core_numbers,
    is_k_degenerate,
)
from repro.graphs.io import to_graph6, from_graph6
from repro.graphs.invariants import treewidth_exact, treewidth_upper_bound
from repro.graphs.properties import (
    has_triangle,
    has_square,
    girth,
    diameter,
    eccentricities,
    is_connected,
    connected_components,
    is_bipartite,
    bipartition,
)

__all__ = [
    "LabeledGraph",
    "to_graph6",
    "from_graph6",
    "treewidth_exact",
    "treewidth_upper_bound",
    "degeneracy",
    "degeneracy_ordering",
    "core_numbers",
    "is_k_degenerate",
    "has_triangle",
    "has_square",
    "girth",
    "diameter",
    "eccentricities",
    "is_connected",
    "connected_components",
    "is_bipartite",
    "bipartition",
]
