"""Graph predicates the paper reasons about.

These are the *ground truths* the experiments compare protocol outputs
against: triangle containment (Theorem 3), square/C4 containment
(Theorem 1), diameter (Theorem 2), connectivity and bipartiteness (the
conclusion's open questions), plus girth as a convenience for generating
square-free inputs.

All algorithms are elementary (BFS-based) and exact; they run on graphs up
to a few thousand vertices, which covers every experiment in the paper's
scope.
"""

from __future__ import annotations

import math
from collections import deque

from repro.graphs.labeled import LabeledGraph

__all__ = [
    "has_triangle",
    "has_square",
    "girth",
    "diameter",
    "eccentricities",
    "is_connected",
    "connected_components",
    "is_bipartite",
    "bipartition",
]


def has_triangle(g: LabeledGraph) -> bool:
    """Whether ``g`` contains K3 as a subgraph."""
    for u, v in g.edges():
        if g.neighbors(u) & g.neighbors(v):
            return True
    return False


def has_square(g: LabeledGraph) -> bool:
    """Whether ``g`` contains C4 as a (not necessarily induced) subgraph.

    Two distinct vertices with two common neighbours close a 4-cycle; we
    look for a repeated pair among the two-paths, ``O(sum deg²)``.
    """
    seen: set[tuple[int, int]] = set()
    for v in g.vertices():
        nbrs = sorted(g.neighbors(v))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                pair = (nbrs[i], nbrs[j])
                if pair in seen:
                    return True
                seen.add(pair)
    return False


def girth(g: LabeledGraph) -> float:
    """Length of a shortest cycle, ``math.inf`` for forests.

    BFS from every vertex; a non-tree edge closing at depths d1, d2 bounds
    the girth by ``d1 + d2 + 1``.  Exact for simple graphs.
    """
    best = math.inf
    for root in g.vertices():
        depth = {root: 0}
        parent = {root: 0}
        q = deque([root])
        while q:
            u = q.popleft()
            if depth[u] * 2 >= best - 1:
                continue
            for w in g.neighbors(u):
                if w not in depth:
                    depth[w] = depth[u] + 1
                    parent[w] = u
                    q.append(w)
                elif w != parent[u]:
                    best = min(best, depth[u] + depth[w] + 1)
    return best


def _bfs_depths(g: LabeledGraph, root: int) -> dict[int, int]:
    depth = {root: 0}
    q = deque([root])
    while q:
        u = q.popleft()
        for w in g.neighbors(u):
            if w not in depth:
                depth[w] = depth[u] + 1
                q.append(w)
    return depth


def eccentricities(g: LabeledGraph) -> dict[int, float]:
    """Eccentricity of every vertex; ``math.inf`` when the graph is disconnected."""
    ecc: dict[int, float] = {}
    for v in g.vertices():
        depth = _bfs_depths(g, v)
        ecc[v] = max(depth.values()) if len(depth) == g.n else math.inf
    return ecc


def diameter(g: LabeledGraph) -> float:
    """Max distance between vertex pairs; ``math.inf`` if disconnected; 0 for n <= 1."""
    if g.n <= 1:
        return 0
    best = 0
    for v in g.vertices():
        depth = _bfs_depths(g, v)
        if len(depth) != g.n:
            return math.inf
        best = max(best, max(depth.values()))
    return best


def is_connected(g: LabeledGraph) -> bool:
    """Whether ``g`` is connected (the empty graph and K1 count as connected)."""
    if g.n <= 1:
        return True
    return len(_bfs_depths(g, 1)) == g.n


def connected_components(g: LabeledGraph) -> list[frozenset[int]]:
    """Connected components as frozensets, ordered by smallest member."""
    seen: set[int] = set()
    comps: list[frozenset[int]] = []
    for v in g.vertices():
        if v not in seen:
            comp = frozenset(_bfs_depths(g, v))
            seen |= comp
            comps.append(comp)
    return comps


def bipartition(g: LabeledGraph) -> tuple[frozenset[int], frozenset[int]] | None:
    """A 2-colouring ``(A, B)`` if one exists, else ``None``.

    Every vertex appears in exactly one side; isolated vertices go to the
    side of their component's root colour (side A).
    """
    color: dict[int, int] = {}
    for root in g.vertices():
        if root in color:
            continue
        color[root] = 0
        q = deque([root])
        while q:
            u = q.popleft()
            for w in g.neighbors(u):
                if w not in color:
                    color[w] = 1 - color[u]
                    q.append(w)
                elif color[w] == color[u]:
                    return None
    a = frozenset(v for v, c in color.items() if c == 0)
    b = frozenset(v for v, c in color.items() if c == 1)
    return a, b


def is_bipartite(g: LabeledGraph) -> bool:
    """Whether ``g`` admits a proper 2-colouring."""
    return bipartition(g) is not None
