"""The labelled graph type used throughout the library.

A :class:`LabeledGraph` is a simple undirected graph whose vertex set is
exactly ``{1, ..., n}``.  The paper's protocols are all phrased in terms of
vertex identifiers, so the type never renames vertices implicitly; gadget
constructions (Section II) that *extend* a graph with fresh vertices
``n+1, n+2, ...`` do so through :meth:`extended`, which documents the ID
discipline explicitly.

Adjacency is stored as one Python ``set`` per vertex plus, lazily, one
integer bitmask per vertex (bit ``i`` set iff ``i`` is a neighbour).  The
masks make neighbourhood-equality and subset tests O(1)-ish and are what the
protocol layer serializes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.errors import InvalidVertexError

__all__ = ["LabeledGraph"]


class LabeledGraph:
    """Simple undirected graph on vertex set ``{1, ..., n}``.

    Parameters
    ----------
    n:
        Number of vertices; the vertex set is fixed to ``1..n``.
    edges:
        Optional iterable of ``(u, v)`` pairs; self-loops are rejected,
        duplicates are ignored (simple graph).
    """

    __slots__ = ("_n", "_adj", "_m")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise InvalidVertexError(f"n must be >= 0, got {n}")
        self._n = n
        self._adj: list[set[int]] = [set() for _ in range(n + 1)]
        self._m = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """The vertex set ``1..n`` in ID order."""
        return range(1, self._n + 1)

    def neighbors(self, v: int) -> frozenset[int]:
        """The open neighbourhood ``N(v)`` — exactly what node ``v`` knows."""
        self._check(v)
        return frozenset(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        self._check(v)
        return len(self._adj[v])

    def degrees(self) -> list[int]:
        """Degree sequence indexed by ID (``result[i-1] = deg(i)``)."""
        return [len(self._adj[v]) for v in self.vertices()]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` with ``u < v``, sorted."""
        for u in self.vertices():
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """The edge set as a frozenset of sorted pairs."""
        return frozenset(self.edges())

    def neighborhood_mask(self, v: int) -> int:
        """``N(v)`` as an integer bitmask (bit ``i`` set iff ``i in N(v)``)."""
        self._check(v)
        mask = 0
        for w in self._adj[v]:
            mask |= 1 << w
        return mask

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> None:
        """Add edge ``{u, v}``; no-op if already present; rejects self-loops."""
        self._check(u)
        self._check(v)
        if u == v:
            raise InvalidVertexError(f"self-loop at vertex {u} not allowed (simple graph)")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._m += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raises if absent."""
        self._check(u)
        self._check(v)
        if v not in self._adj[u]:
            raise InvalidVertexError(f"edge {{{u}, {v}}} not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def copy(self) -> "LabeledGraph":
        """Independent copy."""
        g = LabeledGraph(self._n)
        g._adj = [set(s) for s in self._adj]
        g._m = self._m
        return g

    def extended(self, extra: int, new_edges: Iterable[tuple[int, int]] = ()) -> "LabeledGraph":
        """Return a copy with ``extra`` fresh vertices ``n+1 .. n+extra``.

        This is the gadget-construction primitive of Section II: the
        original vertices keep their IDs, the fresh vertices take the next
        IDs, and ``new_edges`` may reference both.
        """
        if extra < 0:
            raise InvalidVertexError(f"extra must be >= 0, got {extra}")
        g = LabeledGraph(self._n + extra)
        for v in self.vertices():
            g._adj[v] = set(self._adj[v])
        g._m = self._m
        for u, v in new_edges:
            g.add_edge(u, v)
        return g

    def induced_subgraph(self, keep: Iterable[int]) -> "LabeledGraph":
        """Subgraph induced by ``keep``, *relabelled* to ``1..len(keep)``.

        Vertices are relabelled in increasing ID order; returns the new
        graph.  Use :meth:`induced_edges` when original IDs must survive.
        """
        kept = sorted(set(keep))
        for v in kept:
            self._check(v)
        index = {v: i + 1 for i, v in enumerate(kept)}
        g = LabeledGraph(len(kept))
        for v in kept:
            for w in self._adj[v]:
                if w in index and v < w:
                    g.add_edge(index[v], index[w])
        return g

    def induced_edges(self, keep: Iterable[int]) -> list[tuple[int, int]]:
        """Edges of the subgraph induced by ``keep`` with original IDs."""
        kept = set(keep)
        return [(u, v) for (u, v) in self.edges() if u in kept and v in kept]

    def complement(self) -> "LabeledGraph":
        """The complement graph on the same vertex set."""
        g = LabeledGraph(self._n)
        for u in self.vertices():
            for v in range(u + 1, self._n + 1):
                if v not in self._adj[u]:
                    g.add_edge(u, v)
        return g

    def relabeled(self, perm: dict[int, int]) -> "LabeledGraph":
        """Apply a permutation of ``1..n`` given as a dict ``old -> new``."""
        if sorted(perm) != list(self.vertices()) or sorted(perm.values()) != list(self.vertices()):
            raise InvalidVertexError("perm must be a permutation of 1..n")
        g = LabeledGraph(self._n)
        for u, v in self.edges():
            g.add_edge(perm[u], perm[v])
        return g

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_networkx(cls, g: "nx.Graph") -> "LabeledGraph":
        """Convert from networkx, relabelling nodes to ``1..n`` in sorted order.

        Node order is ``sorted(g.nodes())`` when sortable, insertion order
        otherwise; the mapping is deterministic either way.
        """
        nodes = list(g.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index = {node: i + 1 for i, node in enumerate(nodes)}
        out = cls(len(nodes))
        for u, v in g.edges():
            if u != v:
                out.add_edge(index[u], index[v])
        return out

    def to_networkx(self) -> "nx.Graph":
        """Convert to a networkx Graph with nodes ``1..n``."""
        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    def adjacency_matrix(self):
        """Dense 0/1 numpy adjacency matrix, shape ``(n, n)``, row/col ``i`` = vertex ``i+1``."""
        import numpy as np

        a = np.zeros((self._n, self._n), dtype=np.uint8)
        for u, v in self.edges():
            a[u - 1, v - 1] = 1
            a[v - 1, u - 1] = 1
        return a

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((self._n, self.edge_set()))

    def __repr__(self) -> str:
        return f"LabeledGraph(n={self._n}, m={self._m})"

    def _check(self, v: int) -> None:
        if not (isinstance(v, int) and 1 <= v <= self._n):
            raise InvalidVertexError(f"vertex {v!r} outside 1..{self._n}")
