"""Counting labelled graph families — the arithmetic behind Lemma 1.

Lemma 1 says a family reconstructible by a frugal one-round protocol has at
most ``2^{O(n log n)}`` members on ``n`` vertices.  The impossibility proofs
then exhibit families that are *too big*: all graphs (``2^{C(n,2)}``,
Theorem 2), bipartite graphs with fixed parts (``2^{(n/2)^2}``, Theorem 3),
and square-free graphs (``2^{Θ(n^{3/2})}`` by Kleitman–Winston, Theorem 1).

This module provides exact counts (closed forms where they exist, exhaustive
enumeration otherwise — vectorized with numpy up to n = 7), and the capacity
bound they are compared against.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from functools import lru_cache
from itertools import combinations

try:  # numpy vectorizes the exhaustive counts; the big-int path is the fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro.errors import GraphError
from repro.graphs.labeled import LabeledGraph

__all__ = [
    "labeled_graph_count",
    "connected_graph_count",
    "labeled_tree_count",
    "labeled_forest_count",
    "bipartite_fixed_parts_count",
    "enumerate_labeled_graphs",
    "count_graphs_satisfying",
    "count_square_free",
    "count_triangle_free",
    "frugal_capacity_bits",
    "zarankiewicz_lower_bound",
    "MAX_ENUM_N",
]

MAX_ENUM_N = 7
"""Largest n for which exhaustive enumeration is allowed (2^21 graphs)."""


def labeled_graph_count(n: int) -> int:
    """Number of labelled graphs on ``n`` vertices: ``2^C(n,2)``."""
    return 1 << math.comb(n, 2)


@lru_cache(maxsize=None)
def _connected_counts_up_to(n: int) -> tuple[int, ...]:
    """Bottom-up table of connected labelled graph counts C(0..n)."""
    counts = [1, 1]
    for m in range(2, n + 1):
        total = labeled_graph_count(m)
        for k in range(1, m):
            total -= math.comb(m - 1, k - 1) * counts[k] * labeled_graph_count(m - k)
        counts.append(total)
    return tuple(counts[: n + 1])


def connected_graph_count(n: int) -> int:
    """Number of connected labelled graphs (OEIS A001187) via the standard recurrence.

    ``C(n) = 2^C(n,2) - Σ_{k=1}^{n-1} binom(n-1, k-1) C(k) 2^C(n-k, 2)``
    (split off the component of vertex 1).  Computed bottom-up so large n
    does not recurse.
    """
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    return _connected_counts_up_to(n)[n]


def labeled_tree_count(n: int) -> int:
    """Cayley's formula ``n^{n-2}`` (1 for n in {0, 1, 2} degenerate cases)."""
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    if n <= 2:
        return 1
    return n ** (n - 2)


@lru_cache(maxsize=None)
def _forest_counts_up_to(n: int) -> tuple[int, ...]:
    """Bottom-up table of labelled forest counts F(0..n)."""
    counts = [1]
    for m in range(1, n + 1):
        counts.append(
            sum(
                math.comb(m - 1, k - 1) * labeled_tree_count(k) * counts[m - k]
                for k in range(1, m + 1)
            )
        )
    return tuple(counts)


def labeled_forest_count(n: int) -> int:
    """Number of labelled forests (OEIS A001858).

    Recurrence on the component of vertex ``n``:
    ``F(n) = Σ_{k=1}^{n} binom(n-1, k-1) T(k) F(n-k)`` with ``T`` Cayley's
    tree count, computed bottom-up.  (The degeneracy-1 family: Lemma 1
    predicts — and the table confirms — ``log2 F(n) = O(n log n)``,
    consistent with forests being reconstructible, Section III.A.)
    """
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    return _forest_counts_up_to(n)[n]


def bipartite_fixed_parts_count(n: int) -> int:
    """Bipartite graphs with parts ``{1..n/2}`` and ``{n/2+1..n}``: ``2^{(n/2)·(n - n/2)}``.

    This is Theorem 3's family (the paper takes n even; we allow odd n with
    the floor/ceil split).
    """
    a = n // 2
    return 1 << (a * (n - a))


def enumerate_labeled_graphs(n: int, *, max_n: int = MAX_ENUM_N) -> Iterator[LabeledGraph]:
    """Yield every labelled graph on ``n`` vertices (``2^C(n,2)`` of them).

    Guarded by ``max_n`` so a typo cannot start a year-long loop.
    """
    if n > max_n:
        raise GraphError(f"refusing to enumerate 2^{math.comb(n, 2)} graphs (n={n} > max_n={max_n})")
    pairs = list(combinations(range(1, n + 1), 2))
    for mask in range(1 << len(pairs)):
        yield LabeledGraph(n, (pairs[i] for i in range(len(pairs)) if mask >> i & 1))


def count_graphs_satisfying(
    n: int, predicate: Callable[[LabeledGraph], bool], *, max_n: int = MAX_ENUM_N
) -> int:
    """Exhaustively count labelled graphs on ``n`` vertices satisfying ``predicate``."""
    return sum(1 for g in enumerate_labeled_graphs(n, max_n=max_n) if predicate(g))


def _pair_bit_arrays(n: int) -> tuple[list[tuple[int, int]], np.ndarray]:
    """All graphs on n vertices as rows of edge-indicator bits, vectorized.

    Returns ``(pairs, bits)`` where ``bits[g, e]`` is 1 iff graph ``g``
    contains edge ``pairs[e]``.  Memory: ``2^C(n,2) * C(n,2)`` bytes
    (2M x 21 = 44 MB for n = 7).
    """
    pairs = list(combinations(range(1, n + 1), 2))
    ne = len(pairs)
    masks = np.arange(1 << ne, dtype=np.uint32)
    bits = np.empty((1 << ne, ne), dtype=np.uint8)
    for e in range(ne):
        bits[:, e] = (masks >> e) & 1
    return pairs, bits


def _pair_bit_columns(n: int) -> tuple[list[tuple[int, int]], list[int], int]:
    """The pure twin of :func:`_pair_bit_arrays`: edge columns as big ints.

    ``cols[e]`` has bit ``g`` set iff graph ``g`` contains edge
    ``pairs[e]`` — i.e. the ``2^C(n,2)``-bit integer whose bits are the
    ``e``-th column of the numpy matrix.  Bitwise ops on these integers
    act on all graphs at once, so the fallback stays exhaustive *and*
    vectorized (in C, via CPython's big-int arithmetic) without numpy.
    """
    pairs = list(combinations(range(1, n + 1), 2))
    ne = len(pairs)
    total = 1 << ne
    full = (1 << total) - 1
    cols = []
    for e in range(ne):
        # Column e is periodic with period 2^(e+1) graphs: the upper half
        # of each period has the edge.  One period, replicated.
        half = 1 << e
        unit = ((1 << half) - 1) << half
        rep = full // ((1 << (half * 2)) - 1)  # 1 every 2^(e+1) bits
        cols.append(unit * rep)
    return pairs, cols, total


def count_square_free(n: int) -> int:
    """Exact number of labelled C4-free graphs on ``n <= MAX_ENUM_N`` vertices.

    Vectorized: a C4 exists iff some vertex pair has >= 2 common neighbours;
    for every pair (u, v) we sum, over w, the AND of edge bits (u,w), (v,w).
    Uses numpy when available; otherwise the big-int columns with a
    two-bit bitsliced saturating counter (value-identical, pinned by
    ``tests/graphs/test_counting.py``).
    """
    if n > MAX_ENUM_N:
        raise GraphError(f"exact square-free count limited to n <= {MAX_ENUM_N}")
    if n < 4:
        return labeled_graph_count(n)
    if np is None:
        pairs, cols, total = _pair_bit_columns(n)
        eidx = {p: i for i, p in enumerate(pairs)}

        def col(u: int, v: int) -> int:
            return cols[eidx[(u, v) if u < v else (v, u)]]

        has_square = 0
        for u, v in pairs:
            ones = twos = 0  # per-graph common-neighbour count, saturating at 2
            for w in range(1, n + 1):
                if w != u and w != v:
                    x = col(u, w) & col(v, w)
                    twos |= ones & x
                    ones ^= x
            has_square |= twos
        return total - has_square.bit_count()
    pairs, bits = _pair_bit_arrays(n)
    eidx = {p: i for i, p in enumerate(pairs)}

    def e(u: int, v: int) -> int:
        return eidx[(u, v) if u < v else (v, u)]

    has_square = np.zeros(bits.shape[0], dtype=bool)
    for u, v in pairs:
        common = np.zeros(bits.shape[0], dtype=np.uint8)
        for w in range(1, n + 1):
            if w != u and w != v:
                common += bits[:, e(u, w)] & bits[:, e(v, w)]
        has_square |= common >= 2
    return int((~has_square).sum())


def count_triangle_free(n: int) -> int:
    """Exact number of labelled triangle-free graphs on ``n <= MAX_ENUM_N`` vertices."""
    if n > MAX_ENUM_N:
        raise GraphError(f"exact triangle-free count limited to n <= {MAX_ENUM_N}")
    if n < 3:
        return labeled_graph_count(n)
    if np is None:
        pairs, cols, total = _pair_bit_columns(n)
        eidx = {p: i for i, p in enumerate(pairs)}
        has_triangle = 0
        for a, b, c in combinations(range(1, n + 1), 3):
            has_triangle |= (
                cols[eidx[(a, b)]] & cols[eidx[(b, c)]] & cols[eidx[(a, c)]]
            )
        return total - has_triangle.bit_count()
    pairs, bits = _pair_bit_arrays(n)
    eidx = {p: i for i, p in enumerate(pairs)}
    has_triangle = np.zeros(bits.shape[0], dtype=bool)
    for a, b, c in combinations(range(1, n + 1), 3):
        has_triangle |= (
            (bits[:, eidx[(a, b)]] & bits[:, eidx[(b, c)]] & bits[:, eidx[(a, c)]]) == 1
        )
    return int((~has_triangle).sum())


def frugal_capacity_bits(n: int, k_const: float) -> float:
    """Lemma 1's capacity: total bits a frugal protocol delivers, ``k · n · log2 n``.

    A family with ``log2 g(n)`` above this for every constant ``k_const``
    (as n grows) cannot be reconstructed in one frugal round.
    """
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    return k_const * n * math.log2(n)


def zarankiewicz_lower_bound(n: int) -> float:
    """A lower bound on ``log2 #(C4-free graphs on n vertices)``.

    The Kővári–Sós–Turán / Erdős–Rényi–Sós extremal C4-free graph has
    ``ex(n; C4) >= (1/2)(n^{3/2} - n)`` edges for suitable n (polarity graphs
    achieve ~ (1/2) n^{3/2}); every subgraph of a C4-free graph is C4-free,
    so the count is at least ``2^{ex}``.  We use the conservative
    ``(1/2)(n^{3/2} - n)`` floor — enough to dominate ``k n log n``
    (Kleitman–Winston's ``2^{Θ(n^{3/2})}``, the paper's citation [9]).
    """
    return max(0.0, 0.5 * (n**1.5 - n))
