"""Treewidth — exact for small n, upper bounds beyond.

Section III's reach claims lean on the chain
``degeneracy(G) ≤ treewidth(G)`` (k-trees are the maximal treewidth-k
graphs): the reconstruction protocol covers every bounded-treewidth class.
This module lets the experiments *verify* that chain instead of assuming
it:

* :func:`treewidth_exact` — the Bodlaender–Koster subset dynamic program
  over elimination orders, ``O(2^n · n²)``, guarded to small n;
* :func:`treewidth_upper_bound` — the min-degree / min-fill greedy
  elimination heuristics, valid upper bounds at any size.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import GraphError
from repro.graphs.labeled import LabeledGraph

__all__ = ["treewidth_exact", "treewidth_upper_bound"]

_MAX_EXACT_N = 14


def treewidth_exact(g: LabeledGraph, *, max_n: int = _MAX_EXACT_N) -> int:
    """Exact treewidth via DP over vertex subsets (elimination orderings).

    Recurrence (Bodlaender & Koster, *Treewidth computations I*): for a set
    ``S`` of already-eliminated vertices,
    ``TW(S) = min_{v ∈ S} max(TW(S \\ v), q(S \\ v, v))`` where
    ``q(S, v)`` counts the vertices outside ``S ∪ {v}`` reachable from
    ``v`` through ``S`` — i.e. ``v``'s degree at its elimination point in
    the fill-in graph.  ``TW(V)`` is the treewidth.
    """
    n = g.n
    if n > max_n:
        raise GraphError(f"exact treewidth limited to n <= {max_n}, got {n}")
    if n == 0:
        return 0
    masks = [0] * (n + 1)
    for v in g.vertices():
        masks[v] = g.neighborhood_mask(v) >> 1  # bit i-1 <-> vertex i

    full = (1 << n) - 1

    def q(s: int, v: int) -> int:
        """|vertices outside s∪{v} reachable from v through s|."""
        vbit = 1 << (v - 1)
        seen = vbit
        frontier = vbit
        reach_out = 0
        while frontier:
            nxt = 0
            f = frontier
            while f:
                b = f & -f
                f ^= b
                nxt |= masks[b.bit_length()]
            nxt &= ~seen
            reach_out |= nxt & ~s
            frontier = nxt & s  # continue walking only through S
            seen |= nxt
        return bin(reach_out & ~vbit).count("1")

    @lru_cache(maxsize=None)
    def tw(s: int) -> int:
        if s == 0:
            return -1  # identity for max()
        best = n
        rest = s
        while rest:
            b = rest & -rest
            rest ^= b
            v = b.bit_length()
            prev = s ^ b
            cand = max(tw(prev), q(prev, v))
            if cand < best:
                best = cand
        return best

    result = tw(full)
    tw.cache_clear()
    return result


def treewidth_upper_bound(g: LabeledGraph, heuristic: str = "min-fill") -> int:
    """Greedy elimination upper bound (``min-degree`` or ``min-fill``)."""
    if heuristic not in ("min-degree", "min-fill"):
        raise GraphError(f"heuristic must be 'min-degree' or 'min-fill', got {heuristic!r}")
    adj = {v: set(g.neighbors(v)) for v in g.vertices()}
    width = 0
    remaining = set(g.vertices())
    while remaining:
        if heuristic == "min-degree":
            v = min(remaining, key=lambda u: (len(adj[u]), u))
        else:
            def fill(u: int) -> int:
                nbrs = sorted(adj[u])
                return sum(
                    1
                    for i in range(len(nbrs))
                    for j in range(i + 1, len(nbrs))
                    if nbrs[j] not in adj[nbrs[i]]
                )

            v = min(remaining, key=lambda u: (fill(u), len(adj[u]), u))
        nbrs = list(adj[v])
        width = max(width, len(nbrs))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                adj[nbrs[i]].add(nbrs[j])
                adj[nbrs[j]].add(nbrs[i])
        for u in nbrs:
            adj[u].discard(v)
        del adj[v]
        remaining.discard(v)
    return width
