"""Fixed named graph instances used by tests, examples, and the figure experiments.

The paper's Figures 1 and 2 illustrate the reduction gadgets on a 7-vertex
base graph G (circled vertices 1..7) extended with gadget vertices.  The
published PDF does not list the figure's edge set in machine-readable form,
so :func:`figure1_base` / :func:`figure2_base` provide representative
7-vertex instances with the properties the captions rely on (Figure 1's G is
an arbitrary connected graph where edge (1,7) is queried; Figure 2's G is
bipartite and edge (2,7) is queried); the experiments then check the gadget
iff-property over *all* vertex pairs, which subsumes the figure.
"""

from __future__ import annotations

from repro.graphs.labeled import LabeledGraph

__all__ = ["petersen", "figure1_base", "figure2_base", "bull", "paw", "kite"]


def petersen() -> LabeledGraph:
    """The Petersen graph: 3-regular, girth 5 (so square- and triangle-free)."""
    outer = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]
    spokes = [(i, i + 5) for i in range(1, 6)]
    inner = [(6, 8), (8, 10), (10, 7), (7, 9), (9, 6)]
    return LabeledGraph(10, outer + spokes + inner)


def figure1_base() -> LabeledGraph:
    """A connected 7-vertex graph standing in for Figure 1's G.

    Edge (1, 7) is absent so the diameter gadget demo can show both branches
    of "diam(G'_{s,t}) <= 3 iff {s,t} in E" by also querying a present edge.
    """
    return LabeledGraph(
        7,
        [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (2, 5), (3, 6), (1, 4)],
    )


def figure2_base() -> LabeledGraph:
    """A bipartite 7-vertex graph standing in for Figure 2's G.

    Parts {1, 2, 3} and {4, 5, 6, 7}; edge (2, 7) present, edge (1, 7)
    absent, so the triangle gadget demo can exercise both branches.
    """
    return LabeledGraph(
        7,
        [(1, 4), (1, 5), (2, 5), (2, 6), (2, 7), (3, 4), (3, 6)],
    )


def bull() -> LabeledGraph:
    """The bull: a triangle with two pendant horns (degeneracy 2)."""
    return LabeledGraph(5, [(1, 2), (2, 3), (1, 3), (1, 4), (2, 5)])


def paw() -> LabeledGraph:
    """The paw: a triangle with one pendant (smallest graph with a triangle and a leaf)."""
    return LabeledGraph(4, [(1, 2), (2, 3), (1, 3), (3, 4)])


def kite() -> LabeledGraph:
    """The kite/diamond-plus-tail: contains both a triangle and a square."""
    return LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (4, 5)])
