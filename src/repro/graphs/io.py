"""graph6 serialization — interchange format for labelled graphs.

The experiments emit witness graphs (collision pairs, reconstruction
mismatches); graph6 is the standard compact ASCII format for exchanging
them with other tools (nauty, networkx, SageMath).  Implemented from the
format specification directly; round-trips are property-tested against
networkx's reader.

Format: ``N(n)`` then the upper triangle of the adjacency matrix, read
column-by-column ``(0,1), (0,2), (1,2), (0,3), ...``, packed 6 bits per
character with 63 added to land in ASCII 63..126.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.labeled import LabeledGraph

__all__ = ["to_graph6", "from_graph6"]


def _encode_n(n: int) -> bytes:
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    if n <= 62:
        return bytes([n + 63])
    if n <= 258047:
        return bytes([126, (n >> 12) + 63, ((n >> 6) & 63) + 63, (n & 63) + 63])
    if n <= 68719476735:
        return bytes([126, 126]) + bytes(((n >> (6 * s)) & 63) + 63 for s in range(5, -1, -1))
    raise GraphError(f"n = {n} too large for graph6")


def _decode_n(data: bytes) -> tuple[int, int]:
    """Return (n, bytes consumed)."""
    if not data:
        raise GraphError("empty graph6 string")
    if data[0] != 126:
        return data[0] - 63, 1
    if len(data) >= 2 and data[1] != 126:
        if len(data) < 4:
            raise GraphError("truncated graph6 header")
        n = ((data[1] - 63) << 12) | ((data[2] - 63) << 6) | (data[3] - 63)
        return n, 4
    if len(data) < 8:
        raise GraphError("truncated graph6 header")
    n = 0
    for b in data[2:8]:
        n = (n << 6) | (b - 63)
    return n, 8


def to_graph6(g: LabeledGraph) -> str:
    """Serialize; vertex ``i`` (1-based) maps to graph6 vertex ``i-1``."""
    n = g.n
    out = bytearray(_encode_n(n))
    bits: list[int] = []
    for v in range(1, n):          # column v (0-based v), rows 0..v-1
        for u in range(1, v + 1):
            bits.append(1 if g.has_edge(u, v + 1) else 0)
    # pad to a multiple of 6 and pack
    while len(bits) % 6:
        bits.append(0)
    for i in range(0, len(bits), 6):
        word = 0
        for b in bits[i : i + 6]:
            word = (word << 1) | b
        out.append(word + 63)
    return out.decode("ascii")


def from_graph6(text: str) -> LabeledGraph:
    """Parse a graph6 string into a LabeledGraph (graph6 vertex v -> ID v+1)."""
    data = text.strip().encode("ascii")
    if data.startswith(b">>graph6<<"):
        data = data[10:]
    n, consumed = _decode_n(data)
    body = data[consumed:]
    need_bits = n * (n - 1) // 2
    need_bytes = (need_bits + 5) // 6
    if len(body) != need_bytes:
        raise GraphError(
            f"graph6 body length {len(body)} != expected {need_bytes} for n={n}"
        )
    bits: list[int] = []
    for byte in body:
        if not 63 <= byte <= 126:
            raise GraphError(f"invalid graph6 byte {byte}")
        word = byte - 63
        bits.extend((word >> s) & 1 for s in range(5, -1, -1))
    g = LabeledGraph(n)
    idx = 0
    for v in range(1, n):
        for u in range(1, v + 1):
            if bits[idx]:
                g.add_edge(u, v + 1)
            idx += 1
    return g
