"""repro.registry — one registry for everything pluggable.

The paper's pipeline is *build a graph, run a one-round protocol under a
referee, measure bits*; this package is where the pluggable pieces of that
pipeline are named.  Six typed registries cover the six kinds:

========================  ===========================================  =====================
kind                      what the factory builds                      registered by
========================  ===========================================  =====================
``graph_family``          ``(n, seed, **params) -> LabeledGraph``      ``repro.graphs.generators``
``protocol``              ``(n, **params) -> OneRoundProtocol``        ``repro/protocols/*.py``, ``repro/sketching/*.py``
``experiment``            ``(**params) -> (title, headers, rows)``     ``repro.analysis.experiments``
``campaign``              ``() -> list[Scenario]``                     ``repro.engine.campaign``
``benchmark``             ``(**params) -> BenchCase``                  ``repro.bench.builtin``
``span``                  ``() -> tuple[str, ...]`` (attr keys)        ``repro.obs.taxonomy``
========================  ===========================================  =====================

Modules self-register with the :func:`register` decorator::

    from repro.registry import register

    @register("degeneracy", kind="protocol",
              capabilities=("reconstruction", "deterministic"))
    def _build(n: int, k: int = 2, decoder: str = "newton") -> OneRoundProtocol:
        ...

so adding a protocol or family never touches engine code — the engine
resolves names through :func:`get` / the per-kind ``Registry`` objects.
Registries load their owning modules lazily on first lookup; capability
metadata and the tunable-parameter schema (derived from the factory
signature) are introspectable via :func:`catalog`, which feeds
``python -m repro list --json`` and the api-surface CI gate.  Unknown
names raise :class:`~repro.errors.UnknownRegistryEntry` with a difflib
"did you mean" suggestion.

This module is also the only place allowed to *enumerate* what exists —
the pre-registry dict literals survive solely as deprecated read-only
views (:data:`GRAPH_FAMILIES_VIEW` etc., surfaced under their old names by
the owning modules' ``__getattr__``).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.errors import RegistryError, UnknownRegistryEntry
from repro.registry.core import Registry, RegistryEntry
from repro.registry.compat import DeprecatedRegistryView

__all__ = [
    "Registry",
    "RegistryEntry",
    "DeprecatedRegistryView",
    "RegistryError",
    "UnknownRegistryEntry",
    "GRAPH_FAMILY",
    "PROTOCOL",
    "EXPERIMENT",
    "CAMPAIGN",
    "BENCHMARK",
    "SPAN",
    "KINDS",
    "register",
    "registry_for",
    "get",
    "entry",
    "catalog",
    "kinds",
]

#: The graph-family registry: ``(n, seed, **family_params) -> LabeledGraph``.
GRAPH_FAMILY: Registry = Registry(
    "graph_family",
    label="graph family",
    modules=("repro.graphs.generators",),
    context_params=2,  # (n, seed)
)

#: The protocol registry: ``(n, **protocol_params) -> OneRoundProtocol``.
PROTOCOL: Registry = Registry(
    "protocol",
    modules=(
        "repro.protocols.degeneracy_reconstruction",
        "repro.protocols.forest",
        "repro.protocols.generalized_degeneracy",
        "repro.protocols.bounded_degree",
        "repro.protocols.trivial",
        "repro.sketching.connectivity",
        "repro.sketching.bipartiteness",
    ),
    context_params=1,  # (n,)
)

#: The experiment registry: ``(**params) -> (title, headers, rows)``.
EXPERIMENT: Registry = Registry(
    "experiment",
    modules=("repro.analysis.experiments",),
)

#: The builtin-campaign registry: ``() -> list[Scenario]``.
CAMPAIGN: Registry = Registry(
    "campaign",
    label="builtin campaign",
    modules=("repro.engine.campaign",),
)

#: The benchmark registry: ``(**params) -> repro.bench.BenchCase``.
BENCHMARK: Registry = Registry(
    "benchmark",
    modules=("repro.bench.builtin",),
)

#: The trace-span taxonomy: ``() -> tuple[str, ...]`` (the span's attr keys).
SPAN: Registry = Registry(
    "span",
    label="trace span",
    modules=("repro.obs.taxonomy",),
)

#: kind key -> registry, in catalog order.
KINDS: dict[str, Registry] = {
    r.kind: r
    for r in (GRAPH_FAMILY, PROTOCOL, EXPERIMENT, CAMPAIGN, BENCHMARK, SPAN)
}


def registry_for(kind: str) -> Registry:
    """The :class:`Registry` owning ``kind``."""
    try:
        return KINDS[kind]
    except KeyError:
        raise RegistryError(
            f"unknown registry kind {kind!r}; known: {', '.join(KINDS)}"
        ) from None


def register(
    name: str,
    *,
    kind: str,
    summary: str | None = None,
    capabilities: Sequence[str] = (),
    params: Mapping[str, str] | None = None,
    aliases: Sequence[str] = (),
    deprecated_aliases: Sequence[str] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: register a factory under ``name`` in the ``kind`` registry."""
    return registry_for(kind).register(
        name,
        summary=summary,
        capabilities=capabilities,
        params=params,
        aliases=aliases,
        deprecated_aliases=deprecated_aliases,
    )


def get(kind: str, name: str) -> Callable[..., Any]:
    """The factory registered as ``name`` in the ``kind`` registry."""
    return registry_for(kind).get(name)


def entry(kind: str, name: str) -> RegistryEntry:
    """Full metadata for ``name`` in the ``kind`` registry."""
    return registry_for(kind).entry(name)


def kinds() -> tuple[str, ...]:
    """The registry kinds, in catalog order."""
    return tuple(KINDS)


def catalog() -> dict[str, dict[str, dict]]:
    """``{kind: {name: metadata}}`` for every registry — all keys sorted.

    The introspection surface: ``python -m repro list --json`` prints it
    verbatim and the api-surface CI job diffs it against a checked-in
    fixture, so growing (or accidentally breaking) the catalog is always
    an explicit, reviewed change.
    """
    return {kind: KINDS[kind].catalog() for kind in sorted(KINDS)}


# Deprecated dict-shaped views; handed out (under the old names) by
# module __getattr__ in repro.engine.scenario / repro.engine.campaign /
# repro.analysis.experiments and their packages.
GRAPH_FAMILIES_VIEW = DeprecatedRegistryView(
    GRAPH_FAMILY, "GRAPH_FAMILIES", "repro.registry.GRAPH_FAMILY")
PROTOCOL_BUILDERS_VIEW = DeprecatedRegistryView(
    PROTOCOL, "PROTOCOL_BUILDERS", "repro.registry.PROTOCOL")
EXPERIMENTS_VIEW = DeprecatedRegistryView(
    EXPERIMENT, "EXPERIMENTS", "repro.registry.EXPERIMENT")
BUILTIN_CAMPAIGNS_VIEW = DeprecatedRegistryView(
    CAMPAIGN, "BUILTIN_CAMPAIGNS", "repro.registry.CAMPAIGN")
