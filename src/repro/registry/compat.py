"""Deprecated dict-shaped views of the registries.

Before the registry subsystem, the pluggable maps were module-level dict
literals: ``repro.engine.scenario.GRAPH_FAMILIES`` / ``PROTOCOL_BUILDERS``,
``repro.analysis.experiments.EXPERIMENTS``, and
``repro.engine.campaign.BUILTIN_CAMPAIGNS``.  Those names still resolve —
each is now a read-only live :class:`~collections.abc.Mapping` over the
corresponding :class:`~repro.registry.core.Registry` — but the first touch
of each view emits a single :class:`DeprecationWarning`.  Mutation was
never supported API and now raises ``TypeError`` (Mapping has no
``__setitem__``).

The views are handed out by module ``__getattr__`` hooks in the owning
modules (PEP 562), so even ``from repro.engine import GRAPH_FAMILIES``
triggers the warning while ``import repro`` stays silent.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterator, Mapping
from typing import Any

from repro.registry.core import Registry

__all__ = ["DeprecatedRegistryView"]


class DeprecatedRegistryView(Mapping):
    """Read-only ``{name: factory}`` facade over a registry.

    Warns ``DeprecationWarning`` once per view (not per access) on the
    first operation, including the module-attribute access that imports it.
    """

    def __init__(self, registry: Registry, old_name: str, replacement: str) -> None:
        self._registry = registry
        self._old_name = old_name
        self._replacement = replacement
        self._warned = False

    def _warn(self) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"{self._old_name} is deprecated; use {self._replacement} instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def __getitem__(self, name: str) -> Callable[..., Any]:
        self._warn()
        # UnknownRegistryEntry subclasses KeyError: Mapping contract holds.
        return self._registry.get(name)

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(self._registry.names())

    def __len__(self) -> int:
        self._warn()
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        self._warn()
        return name in self._registry

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<deprecated view {self._old_name} of "
                f"{self._registry.kind} registry>")


def _reset_deprecation_warnings(*views: DeprecatedRegistryView) -> None:
    """Re-arm the warn-once latches (test hook)."""
    from repro import registry as _registry

    targets = views or (
        _registry.GRAPH_FAMILIES_VIEW,
        _registry.PROTOCOL_BUILDERS_VIEW,
        _registry.EXPERIMENTS_VIEW,
        _registry.BUILTIN_CAMPAIGNS_VIEW,
    )
    for view in targets:
        view._warned = False
