"""The typed registry: one ``name -> factory`` map per kind of pluggable thing.

A :class:`Registry` owns the entries of one *kind* (graph families,
protocols, experiments, campaigns).  Modules self-register their factories
with the :meth:`Registry.register` decorator, attaching capability
metadata (``decision`` / ``reconstruction`` / ``sketching`` / …), a
one-line summary (defaulting to the factory's docstring), and the tunable
parameter schema (derived from the factory signature unless given
explicitly).  Lookups resolve aliases, and unknown names raise
:class:`~repro.errors.UnknownRegistryEntry` carrying the nearest known
entry as a difflib suggestion.

Lazy loading: a registry is constructed with the list of modules that own
its registrations and imports them only on first use, so importing the
registry layer (or any single consumer) never drags in every protocol
implementation eagerly.  Loading is idempotent and thread-safe — pooled
executors may resolve specs from worker threads concurrently.
"""

from __future__ import annotations

import difflib
import importlib
import inspect
import threading
import warnings
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from repro.errors import RegistryError, UnknownRegistryEntry

__all__ = ["Registry", "RegistryEntry"]

T = TypeVar("T")


def _first_doc_line(obj: Any) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _describe_param(p: inspect.Parameter) -> str:
    """``"int = 2"`` / ``"float"`` — human- and JSON-friendly, stable."""
    ann = p.annotation
    if ann is inspect.Parameter.empty:
        type_s = ""
    elif isinstance(ann, str):  # modules use `from __future__ import annotations`
        type_s = ann
    else:
        type_s = getattr(ann, "__name__", str(ann))
    if p.default is inspect.Parameter.empty:
        return f"{type_s or 'any'} (required)"
    return f"{type_s or 'any'} = {p.default!r}"


@dataclass(frozen=True)
class RegistryEntry(Generic[T]):
    """One registered factory plus its introspectable metadata."""

    name: str
    kind: str
    factory: Callable[..., T]
    summary: str = ""
    capabilities: tuple[str, ...] = ()
    #: ``(param, "type = default")`` pairs for the *tunable* parameters —
    #: the context arguments the engine supplies (``n``, ``seed``) are
    #: excluded.  Declaration order.
    params: tuple[tuple[str, str], ...] = ()
    aliases: tuple[str, ...] = ()
    deprecated_aliases: tuple[str, ...] = ()
    module: str = ""
    #: The factory takes ``**kwargs`` — param-name validation is skipped.
    accepts_any_params: bool = False

    def describe(self) -> dict:
        """JSON-ready metadata (the ``catalog()`` payload for this entry)."""
        return {
            "aliases": sorted(self.aliases),
            "capabilities": sorted(self.capabilities),
            "deprecated_aliases": sorted(self.deprecated_aliases),
            "kind": self.kind,
            "module": self.module,
            "params": {name: spec for name, spec in sorted(self.params)},
            "summary": self.summary,
        }


class Registry(Generic[T]):
    """A lazily-populated ``name -> RegistryEntry`` map for one kind.

    Parameters
    ----------
    kind:
        Machine-readable kind key (``"protocol"``, ``"graph_family"``, …).
    label:
        Human phrase used in error messages (``"graph family"``).
    modules:
        Modules that own this kind's registrations; imported on first use.
    context_params:
        How many leading positional parameters of every factory are
        engine-supplied context (families take ``(n, seed, …)``, protocol
        builders ``(n, …)``) rather than user-tunable parameters.
    """

    def __init__(
        self,
        kind: str,
        *,
        label: str | None = None,
        modules: Sequence[str] = (),
        context_params: int = 0,
    ) -> None:
        self.kind = kind
        self.label = label or kind.replace("_", " ")
        self._modules = tuple(modules)
        self._context_params = context_params
        self._entries: dict[str, RegistryEntry[T]] = {}
        self._aliases: dict[str, str] = {}
        self._loaded = False
        self._load_lock = threading.Lock()
        self._warned_aliases: set[str] = set()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        *,
        summary: str | None = None,
        capabilities: Sequence[str] = (),
        params: Mapping[str, str] | None = None,
        aliases: Sequence[str] = (),
        deprecated_aliases: Sequence[str] = (),
    ) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator: register ``factory`` under ``name`` with metadata."""

        def deco(factory: Callable[..., T]) -> Callable[..., T]:
            # Validate everything before touching any state, so a rejected
            # registration never leaves a half-applied entry behind.
            existing = self._entries.get(name)
            if existing is not None:
                # Idempotent re-execution of the defining module is fine;
                # a *different* factory stealing the name is a bug.
                if (existing.module, getattr(existing.factory, "__qualname__", "")) != (
                    factory.__module__, getattr(factory, "__qualname__", "")
                ):
                    raise RegistryError(
                        f"duplicate {self.label} registration {name!r} "
                        f"({existing.module} vs {factory.__module__})"
                    )
            alias_target = self._aliases.get(name)
            if alias_target is not None and alias_target != name:
                raise RegistryError(
                    f"{self.label} name {name!r} is already an alias "
                    f"of {alias_target!r}"
                )
            new_aliases = (*aliases, *deprecated_aliases)
            for alias in new_aliases:
                target = self._aliases.get(alias)
                if target is not None and target != name:
                    raise RegistryError(
                        f"{self.label} alias {alias!r} already points at {target!r}"
                    )
                if alias in self._entries:
                    raise RegistryError(
                        f"{self.label} alias {alias!r} shadows a canonical entry"
                    )
            entry = RegistryEntry(
                name=name,
                kind=self.kind,
                factory=factory,
                summary=summary if summary is not None else _first_doc_line(factory),
                capabilities=tuple(capabilities),
                params=self._derive_params(factory) if params is None
                else tuple(params.items()),
                aliases=tuple(aliases),
                deprecated_aliases=tuple(deprecated_aliases),
                module=factory.__module__,
                accepts_any_params=self._accepts_any(factory),
            )
            self._entries[name] = entry
            for alias in new_aliases:
                self._aliases[alias] = name
            return factory

        return deco

    def _derive_params(self, factory: Callable[..., T]) -> tuple[tuple[str, str], ...]:
        try:
            sig = inspect.signature(factory)
        except (TypeError, ValueError):  # builtins without signatures
            return ()
        tunables = list(sig.parameters.values())[self._context_params:]
        return tuple(
            (p.name, _describe_param(p))
            for p in tunables
            if p.kind not in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD)
        )

    @staticmethod
    def _accepts_any(factory: Callable[..., T]) -> bool:
        try:
            sig = inspect.signature(factory)
        except (TypeError, ValueError):
            return True
        return any(p.kind is inspect.Parameter.VAR_KEYWORD
                   for p in sig.parameters.values())

    # ------------------------------------------------------------------ #
    # lazy loading
    # ------------------------------------------------------------------ #

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        with self._load_lock:
            if self._loaded:
                return
            for module in self._modules:
                importlib.import_module(module)
            self._loaded = True

    # ------------------------------------------------------------------ #
    # lookup and introspection
    # ------------------------------------------------------------------ #

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (resolving aliases), or raise."""
        self._ensure_loaded()
        if name in self._entries:
            return name
        if name in self._aliases:
            canonical = self._aliases[name]
            entry = self._entries[canonical]
            if name in entry.deprecated_aliases and name not in self._warned_aliases:
                self._warned_aliases.add(name)
                warnings.warn(
                    f"{self.label} name {name!r} is deprecated; "
                    f"use {canonical!r} instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
            return canonical
        raise self.unknown(name)

    def unknown(self, name: str) -> UnknownRegistryEntry:
        """The error for a failed lookup, with a difflib suggestion."""
        known = self.names()
        close = difflib.get_close_matches(name, known + tuple(self._aliases), n=1)
        suggestion = close[0] if close else None
        msg = f"unknown {self.label} {name!r}"
        if suggestion is not None:
            msg += f"; did you mean {suggestion!r}?"
        msg += f" (known: {', '.join(known)})"
        return UnknownRegistryEntry(
            msg, kind=self.kind, name=name, suggestion=suggestion, known=known
        )

    def entry(self, name: str) -> RegistryEntry[T]:
        """Full metadata for ``name`` (aliases resolve)."""
        return self._entries[self.resolve(name)]

    def get(self, name: str) -> Callable[..., T]:
        """The registered factory for ``name`` (aliases resolve)."""
        return self.entry(name).factory

    def build(self, name: str, *args: Any, **kwargs: Any) -> T:
        """Call the factory for ``name`` with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def validate_params(self, name: str, params: Mapping[str, Any]) -> None:
        """Reject parameter names the factory for ``name`` cannot accept."""
        entry = self.entry(name)
        if entry.accepts_any_params:
            return
        allowed = {p for p, _ in entry.params}
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise RegistryError(
                f"{self.label} {entry.name!r} got unknown parameter(s) "
                f"{', '.join(map(repr, unknown))}; accepted: "
                f"{', '.join(sorted(allowed)) or '(none)'}"
            )

    def names(self) -> tuple[str, ...]:
        """Canonical names, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._entries))

    def catalog(self) -> dict[str, dict]:
        """``{name: metadata}`` for every entry, sorted by name."""
        self._ensure_loaded()
        return {name: self._entries[name].describe() for name in self.names()}

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover
        loaded = f"{len(self._entries)} entries" if self._loaded else "unloaded"
        return f"Registry(kind={self.kind!r}, {loaded})"
