"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:  # e.g. `python -m repro list | head`
    sys.stderr.close()
    code = 0
raise SystemExit(code)
