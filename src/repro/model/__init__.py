"""The referee model — Definition 1 of the paper, executable.

A *one-round protocol* ``Γ`` is a pair of function families: a **local
function** ``Γ^l_n(i, N)`` mapping a vertex ID and its neighbourhood to a
message, and a **global function** ``Γ^g_n(m_1, ..., m_n)`` mapping the
vector of all n messages to the output.  ``Γ`` is **frugal** when the
longest message over all n-vertex graphs is ``O(log n)`` bits.

This package provides:

* :class:`~repro.model.message.Message` — an immutable bit string with an
  exact size, the only thing a node may hand the referee;
* :class:`~repro.model.protocol.OneRoundProtocol` — the abstract pair
  ``(local, global_)``; crucially ``local`` is a *pure function of
  (n, i, N)*, evaluable on hypothetical inputs, which is exactly the hook
  the Section II reductions exploit;
* :class:`~repro.model.referee.Referee` — the simulator: runs the local
  phase at every vertex, delivers messages (optionally in adversarial
  order, re-indexed by ID as the model allows), runs the global phase, and
  reports exact bit counts;
* :class:`~repro.model.frugality.FrugalityAuditor` — measures messages
  against a concrete ``c · ceil(log2 n)`` budget and fits the constant;
* :class:`~repro.model.multiround.MultiRoundProtocol` — the conclusion's
  "more rounds" extension: referee and nodes alternate, every per-round
  message still frugal.
"""

from repro.model.message import Message
from repro.model.protocol import (
    OneRoundProtocol,
    DecisionProtocol,
    ReconstructionProtocol,
)
from repro.model.referee import Referee, RunReport, monotonic_clock
from repro.model.frugality import FrugalityAuditor, FrugalityReport, log2_ceil
from repro.model.multiround import MultiRoundProtocol, MultiRoundReferee, MultiRoundReport

__all__ = [
    "Message",
    "OneRoundProtocol",
    "DecisionProtocol",
    "ReconstructionProtocol",
    "Referee",
    "monotonic_clock",
    "RunReport",
    "FrugalityAuditor",
    "FrugalityReport",
    "log2_ceil",
    "MultiRoundProtocol",
    "MultiRoundReferee",
    "MultiRoundReport",
]
