"""The one-round protocol abstraction (Definition 1).

A protocol is a pair ``(Γ^l_n, Γ^g_n)``:

* ``local(n, i, neighborhood)`` — the message node ``i`` sends when its
  neighbourhood is ``neighborhood`` in an ``n``-vertex graph.  The paper is
  explicit that this "can be evaluated in any pair (i, N)": the function is
  defined on *hypothetical* inputs too, not just ones arising from some
  actual graph.  The Section II reductions depend on this — the referee
  simulates Γ's local function on gadget vertices it invented.
* ``global_(n, messages)`` — the referee's output given the n-vector of
  messages, indexed by vertex ID (``messages[i-1]`` is from node ``i``).

Subclasses implement those two; :meth:`OneRoundProtocol.run` wires them
through an actual graph.  The model deliberately puts no complexity or
uniformity constraints on either function ("in agreement with the usual
setting of communication complexity") — oracle protocols used to validate
reductions may do exponential work in ``global_``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.errors import ProtocolError
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message

__all__ = ["OneRoundProtocol", "DecisionProtocol", "ReconstructionProtocol"]


class OneRoundProtocol(ABC):
    """Abstract one-round protocol ``Γ = (Γ^l_n, Γ^g_n)``."""

    #: Human-readable protocol name for reports.
    name: str = "protocol"

    @abstractmethod
    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        """``Γ^l_n(i, N)`` — the message node ``i`` sends to the referee.

        Must be a pure function of ``(n, i, neighborhood)``; it may be
        called with neighbourhoods that do not occur in any graph under
        simulation (the reductions do exactly that).
        """

    @abstractmethod
    def global_(self, n: int, messages: list[Message]) -> Any:
        """``Γ^g_n(m_1, ..., m_n)`` — the referee's output."""

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #

    def message_vector(self, g: LabeledGraph) -> list[Message]:
        """``Γ^l(G)`` — the messages of all n nodes, indexed by ID."""
        return [self.local(g.n, i, g.neighbors(i)) for i in g.vertices()]

    def run(self, g: LabeledGraph) -> Any:
        """``Γ(G) = Γ^g_n(Γ^l(G))`` — one full round on ``g``."""
        return self.global_(g.n, self.message_vector(g))

    def max_message_bits(self, g: LabeledGraph) -> int:
        """``|Γ^l(G)|`` — the longest message sent on ``g`` (paper's notation)."""
        return max((m.bits for m in self.message_vector(g)), default=0)


class DecisionProtocol(OneRoundProtocol):
    """A protocol whose global function outputs a boolean (property decision)."""

    def decide(self, g: LabeledGraph) -> bool:
        """Run and coerce the output to bool, checking the contract."""
        out = self.run(g)
        if not isinstance(out, bool):
            raise ProtocolError(
                f"{self.name}: decision protocol returned {type(out).__name__}, expected bool"
            )
        return out


class ReconstructionProtocol(OneRoundProtocol):
    """A protocol whose global function outputs the reconstructed graph.

    The paper phrases reconstruction as "output the adjacency matrix"; we
    return a :class:`LabeledGraph`, which carries the same information.
    """

    def reconstruct(self, g: LabeledGraph) -> LabeledGraph:
        """Run and coerce the output to a LabeledGraph, checking the contract."""
        out = self.run(g)
        if not isinstance(out, LabeledGraph):
            raise ProtocolError(
                f"{self.name}: reconstruction protocol returned {type(out).__name__}, "
                "expected LabeledGraph"
            )
        return out
