"""The referee simulator.

The interconnection network ``G̃`` is the graph ``G`` plus a universal node
``v_0`` (the referee).  In one round every node sends its message; the paper
notes the network may be asynchronous because the referee simply waits for
all ``n`` messages.  :class:`Referee` models exactly that: it gathers the
local-phase messages (optionally delivering them in an adversarial order and
re-indexing by ID, which must not change the outcome), then runs the global
phase, timing both phases and recording exact bit counts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import FrugalityViolation
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import OneRoundProtocol
from repro.obs.trace import current_tracer

if TYPE_CHECKING:  # deferred: repro.engine imports this module
    from repro.engine.executor import Executor
    from repro.engine.faults import FaultCounters, FaultInjector, FaultSpec

__all__ = ["Referee", "RunReport", "monotonic_clock"]

#: The one clock behind every timing field the library records
#: (:class:`RunReport` phase times, engine wall-clock fields).  Monotonic
#: by construction — ``time.perf_counter`` never goes backwards under NTP
#: slews or DST, unlike ``time.time`` — and threaded through
#: :mod:`repro.engine.scenario` / :mod:`repro.engine.campaign` so every
#: ``*_seconds`` in a record is measured on the same timebase.
monotonic_clock = time.perf_counter


@dataclass(frozen=True)
class RunReport:
    """Everything observable about one protocol round on one graph."""

    protocol: str
    n: int
    output: Any
    max_message_bits: int
    total_message_bits: int
    local_seconds: float
    global_seconds: float
    #: Time between the phases — fault injection and delivery shuffling
    #: (``t1..t2`` in :meth:`Referee.run`); 0 for a plain round.
    referee_seconds: float = 0.0
    per_vertex_bits: tuple[int, ...] = field(repr=False, default=())
    #: Transit-fault event counts; ``None`` unless fault injection was on.
    fault_counters: "FaultCounters | None" = None

    @property
    def mean_message_bits(self) -> float:
        """Average message length across nodes."""
        return self.total_message_bits / self.n if self.n else 0.0

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Per-phase durations keyed by span name (DESIGN.md §8 taxonomy).

        The public accessor for the ``t0..t3`` timestamps
        :meth:`Referee.run` captures — totals were always exposed, the
        split was not.  Keys match the tracer's span names (``local`` /
        ``referee`` / ``global``), so a trace's per-phase span totals
        reconcile with these values exactly.
        """
        return {
            "local": self.local_seconds,
            "referee": self.referee_seconds,
            "global": self.global_seconds,
        }


class Referee:
    """Runs one-round protocols on graphs and reports resource usage.

    Parameters
    ----------
    budget_bits:
        Optional hard per-message cap; when set, any longer message raises
        :class:`FrugalityViolation` *during* the round, modelling a link
        that physically cannot carry more.
    shuffle_delivery:
        When set, deliver messages to the global function after a random
        permutation + re-sort by ID (using ``shuffle_seed``).  Definition 1
        indexes messages by ID, so this is a no-op by construction — the
        flag exists so tests can assert the simulator doesn't smuggle
        ordering information.
    executor:
        Optional :class:`~repro.engine.executor.Executor` that batches the
        per-node ``local`` calls.  The default (``None``) keeps the
        original in-process loop, bit-for-bit; any backend yields the same
        report because messages are re-indexed by ID.
    faults:
        Optional :class:`~repro.engine.faults.FaultSpec` (or a prebuilt
        injector) modelling a lossy link between the local and global
        phases.  Frugality budgets audit the *sent* message; bit counts in
        the report measure what the referee *received*.
    fault_seed:
        Per-run component of the fault stream (combined with the spec's
        own seed), so campaigns get independent but reproducible faults.
    """

    def __init__(
        self,
        *,
        budget_bits: int | None = None,
        shuffle_delivery: bool = False,
        shuffle_seed: int | None = None,
        executor: "Executor | None" = None,
        faults: "FaultSpec | FaultInjector | None" = None,
        fault_seed: int = 0,
    ) -> None:
        self.budget_bits = budget_bits
        self.shuffle_delivery = shuffle_delivery
        self.shuffle_seed = shuffle_seed
        self.executor = executor
        self.faults = faults
        self.fault_seed = fault_seed

    def _check_budget(self, protocol: OneRoundProtocol, i: int, msg: Message) -> None:
        if self.budget_bits is not None and msg.bits > self.budget_bits:
            raise FrugalityViolation(
                f"{protocol.name}: node {i} sent {msg.bits} bits, budget {self.budget_bits}",
                vertex=i,
                bits=msg.bits,
                budget=self.budget_bits,
            )

    def _make_injector(self) -> "FaultInjector | None":
        if self.faults is None:
            return None
        from repro.engine.faults import FaultSpec

        if isinstance(self.faults, FaultSpec):
            if self.faults.is_noop:
                return None
            return self.faults.injector(self.fault_seed)
        return self.faults

    def run(self, protocol: OneRoundProtocol, g: LabeledGraph) -> RunReport:
        """Execute one full round of ``protocol`` on ``g``."""
        t0 = monotonic_clock()
        tagged: list[tuple[int, Message]] = []
        if self.executor is None:
            for i in g.vertices():
                msg = protocol.local(g.n, i, g.neighbors(i))
                self._check_budget(protocol, i, msg)
                tagged.append((i, msg))
        else:
            tagged = self.executor.map_local(protocol, g)
            for i, msg in tagged:
                self._check_budget(protocol, i, msg)
        t1 = monotonic_clock()

        fault_counters = None
        injector = self._make_injector()
        if injector is not None:
            tagged, fault_counters = injector.apply(tagged)

        if self.shuffle_delivery:
            rng = random.Random(self.shuffle_seed)
            rng.shuffle(tagged)  # asynchronous arrival...
            tagged.sort(key=lambda pair: pair[0])  # ...re-indexed by ID

        messages = [m for _, m in tagged]
        t2 = monotonic_clock()
        output = protocol.global_(g.n, messages)
        t3 = monotonic_clock()

        bits = tuple(m.bits for m in messages)
        report = RunReport(
            protocol=protocol.name,
            n=g.n,
            output=output,
            max_message_bits=max(bits, default=0),
            total_message_bits=sum(bits),
            local_seconds=t1 - t0,
            global_seconds=t3 - t2,
            referee_seconds=t2 - t1,
            per_vertex_bits=bits,
            fault_counters=fault_counters,
        )

        # Retro phase spans on the ambient tracer (a no-op unless the
        # caller installed one via ``use_tracer``; campaigns emit these
        # from the landed record instead — see DESIGN.md §8).  Durations
        # are the *measured* ones, copied bit-for-bit, so span totals
        # reconcile exactly with the report's ``*_seconds`` fields.
        tracer = current_tracer()
        if tracer.enabled:
            tracer.emit_span("local", t0, report.local_seconds,
                             protocol=protocol.name, n=g.n)
            tracer.emit_span("referee", t1, report.referee_seconds,
                             protocol=protocol.name, n=g.n)
            tracer.emit_span("global", t2, report.global_seconds,
                             protocol=protocol.name, n=g.n)
        return report
