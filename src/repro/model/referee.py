"""The referee simulator.

The interconnection network ``G̃`` is the graph ``G`` plus a universal node
``v_0`` (the referee).  In one round every node sends its message; the paper
notes the network may be asynchronous because the referee simply waits for
all ``n`` messages.  :class:`Referee` models exactly that: it gathers the
local-phase messages (optionally delivering them in an adversarial order and
re-indexing by ID, which must not change the outcome), then runs the global
phase, timing both phases and recording exact bit counts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FrugalityViolation
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import OneRoundProtocol

__all__ = ["Referee", "RunReport"]


@dataclass(frozen=True)
class RunReport:
    """Everything observable about one protocol round on one graph."""

    protocol: str
    n: int
    output: Any
    max_message_bits: int
    total_message_bits: int
    local_seconds: float
    global_seconds: float
    per_vertex_bits: tuple[int, ...] = field(repr=False, default=())

    @property
    def mean_message_bits(self) -> float:
        """Average message length across nodes."""
        return self.total_message_bits / self.n if self.n else 0.0


class Referee:
    """Runs one-round protocols on graphs and reports resource usage.

    Parameters
    ----------
    budget_bits:
        Optional hard per-message cap; when set, any longer message raises
        :class:`FrugalityViolation` *during* the round, modelling a link
        that physically cannot carry more.
    shuffle_delivery:
        When set, deliver messages to the global function after a random
        permutation + re-sort by ID (using ``shuffle_seed``).  Definition 1
        indexes messages by ID, so this is a no-op by construction — the
        flag exists so tests can assert the simulator doesn't smuggle
        ordering information.
    """

    def __init__(
        self,
        *,
        budget_bits: int | None = None,
        shuffle_delivery: bool = False,
        shuffle_seed: int | None = None,
    ) -> None:
        self.budget_bits = budget_bits
        self.shuffle_delivery = shuffle_delivery
        self.shuffle_seed = shuffle_seed

    def run(self, protocol: OneRoundProtocol, g: LabeledGraph) -> RunReport:
        """Execute one full round of ``protocol`` on ``g``."""
        t0 = time.perf_counter()
        tagged: list[tuple[int, Message]] = []
        for i in g.vertices():
            msg = protocol.local(g.n, i, g.neighbors(i))
            if self.budget_bits is not None and msg.bits > self.budget_bits:
                raise FrugalityViolation(
                    f"{protocol.name}: node {i} sent {msg.bits} bits, budget {self.budget_bits}",
                    vertex=i,
                    bits=msg.bits,
                    budget=self.budget_bits,
                )
            tagged.append((i, msg))
        t1 = time.perf_counter()

        if self.shuffle_delivery:
            rng = random.Random(self.shuffle_seed)
            rng.shuffle(tagged)  # asynchronous arrival...
            tagged.sort(key=lambda pair: pair[0])  # ...re-indexed by ID

        messages = [m for _, m in tagged]
        t2 = time.perf_counter()
        output = protocol.global_(g.n, messages)
        t3 = time.perf_counter()

        bits = tuple(m.bits for m in messages)
        return RunReport(
            protocol=protocol.name,
            n=g.n,
            output=output,
            max_message_bits=max(bits, default=0),
            total_message_bits=sum(bits),
            local_seconds=t1 - t0,
            global_seconds=t3 - t2,
            per_vertex_bits=bits,
        )
