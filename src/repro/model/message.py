"""The message type: an immutable bit string with an exact size.

The referee model's only resource is message length, so a message *is* its
bits — there is no out-of-band structure.  Protocols build messages with
:class:`~repro.bits.writer.BitWriter` and parse them with
:class:`~repro.bits.reader.BitReader`; the referee simulator and the
frugality auditor read only :attr:`Message.bits`.

Messages compare equal by content, which is what the adversarial collision
search (EXP-ADV) needs: two graphs are indistinguishable to the referee iff
their message *vectors* are equal.
"""

from __future__ import annotations

from repro.bits.reader import BitReader
from repro.bits.writer import BitWriter

__all__ = ["Message"]


class Message:
    """An immutable bit string sent by one node to the referee in one round."""

    __slots__ = ("_acc", "_nbits")

    def __init__(self, acc: int, nbits: int) -> None:
        if nbits < 0 or (acc >> nbits if nbits else acc):
            from repro.errors import CodecError

            raise CodecError(f"acc does not fit in {nbits} bits")
        self._acc = acc
        self._nbits = nbits

    @classmethod
    def from_writer(cls, writer: BitWriter) -> "Message":
        """Freeze a writer's contents into a message."""
        return cls(*writer.to_int())

    @classmethod
    def empty(cls) -> "Message":
        """The zero-bit message (what a protocol that ignores a node sends)."""
        return cls(0, 0)

    @property
    def bits(self) -> int:
        """Exact length in bits — the audited resource."""
        return self._nbits

    @property
    def acc(self) -> int:
        """The raw payload as an integer (MSB-first)."""
        return self._acc

    def reader(self) -> BitReader:
        """A fresh cursor over the message contents."""
        return BitReader(self._acc, self._nbits)

    def concat(self, other: "Message") -> "Message":
        """Concatenation — used by reductions that send tuples of Γ-messages.

        The paper's Theorems 2–3 build Δ-messages as pairs/triples of
        Γ-messages; the bit cost is additive, matching "twice/three times
        as big as those of Γ".  Self-delimiting framing is the caller's
        concern (our reductions store a length prefix).
        """
        return Message((self._acc << other._nbits) | other._acc, self._nbits + other._nbits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self._acc == other._acc and self._nbits == other._nbits

    def __hash__(self) -> int:
        return hash((self._acc, self._nbits))

    def __len__(self) -> int:
        return self._nbits

    def __repr__(self) -> str:
        if self._nbits <= 32:
            return f"Message({self._acc:0{self._nbits}b})" if self._nbits else "Message(<empty>)"
        return f"Message(bits={self._nbits})"
