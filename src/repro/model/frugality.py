"""Frugality auditing: turning "O(log n)" into a measured constant.

A protocol is frugal when ``max_G |Γ^l(G)| = O(log n)``.  Experimentally we
check the concrete form: there is a constant ``c`` with
``max bits <= c · ceil(log2 n)`` across the audited inputs.  The auditor
measures message lengths over a corpus of graphs, reports the worst case per
``n``, and fits the smallest admissible ``c`` — which is what Lemma 2's
``O(k² log n)`` and the reductions' "messages three times as big" become in
code.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import FrugalityViolation
from repro.graphs.labeled import LabeledGraph
from repro.model.protocol import OneRoundProtocol

__all__ = ["log2_ceil", "FrugalityReport", "FrugalityAuditor"]


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` for n >= 1, with ``log2_ceil(1) == 1``.

    The paper's unit of message size.  We floor it at 1 bit so budgets stay
    positive on the trivial single-vertex network.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return max(1, (n - 1).bit_length())


@dataclass(frozen=True)
class FrugalityReport:
    """Audit outcome for one protocol over a corpus of graphs."""

    protocol: str
    #: worst message length seen for each n: {n: bits}
    worst_bits: dict[int, int]
    #: smallest c such that bits <= c * ceil(log2 n) over the corpus
    fitted_constant: float
    #: total graphs audited
    graphs_audited: int

    def is_frugal(self, budget_constant: float) -> bool:
        """Whether every audited message fits ``budget_constant`` log-units."""
        return self.fitted_constant <= budget_constant

    def rows(self) -> list[tuple[int, int, int, float]]:
        """Table rows ``(n, worst_bits, log2_ceil(n), ratio)`` sorted by n."""
        return [
            (n, bits, log2_ceil(n), bits / log2_ceil(n))
            for n, bits in sorted(self.worst_bits.items())
        ]


class FrugalityAuditor:
    """Measures per-message bit usage of a protocol across graphs."""

    def __init__(self, *, budget_constant: float | None = None) -> None:
        #: when set, :meth:`audit` raises on any message above
        #: ``budget_constant * ceil(log2 n)`` bits.
        self.budget_constant = budget_constant

    def audit(self, protocol: OneRoundProtocol, graphs: Iterable[LabeledGraph]) -> FrugalityReport:
        """Run the local phase on every graph and record worst-case sizes."""
        worst: dict[int, int] = {}
        count = 0
        for g in graphs:
            count += 1
            unit = log2_ceil(g.n) if g.n else 1
            for i in g.vertices():
                bits = protocol.local(g.n, i, g.neighbors(i)).bits
                if self.budget_constant is not None and bits > self.budget_constant * unit:
                    raise FrugalityViolation(
                        f"{protocol.name}: node {i} on n={g.n} sent {bits} bits "
                        f"> {self.budget_constant} * {unit}",
                        vertex=i,
                        bits=bits,
                        budget=int(self.budget_constant * unit),
                    )
                if bits > worst.get(g.n, -1):
                    worst[g.n] = bits
        fitted = max(
            (bits / log2_ceil(n) for n, bits in worst.items()),
            default=0.0,
        )
        return FrugalityReport(
            protocol=protocol.name,
            worst_bits=worst,
            fitted_constant=fitted,
            graphs_audited=count,
        )

    @staticmethod
    def fit_scaling_exponent(samples: dict[int, int]) -> float:
        """Least-squares slope of ``log(bits)`` against ``log(log2 n)``.

        A frugal protocol's worst-case bits grow like ``c (log n)^e`` with
        ``e ≈ 1``; a protocol sending whole neighbourhoods shows ``e`` far
        above 1 (its bits track n, and log n is what we regress on).  Used
        by the Lemma 2 experiment to check *shape*, not just a constant.
        """
        pts = [(math.log(log2_ceil(n)), math.log(bits)) for n, bits in samples.items() if bits > 0]
        if len(pts) < 2:
            return 0.0
        mx = sum(x for x, _ in pts) / len(pts)
        my = sum(y for _, y in pts) / len(pts)
        sxx = sum((x - mx) ** 2 for x, _ in pts)
        if sxx == 0:
            return 0.0
        sxy = sum((x - mx) * (y - my) for x, y in pts)
        return sxy / sxx
