"""Multi-round extension of the referee model.

The paper's conclusion asks: "can we decide more properties by allowing more
rounds?"  In the underlying CONGEST network ``G̃ = G + v_0`` every round lets
each node exchange one ``O(log n)`` message with each neighbour — so the
referee (adjacent to everyone) may send *each node its own* feedback message
between rounds, and nodes may also talk to their graph neighbours.  This
module implements the referee<->nodes half, which is what the multi-round
connectivity protocol (``repro.sketching.multiround``) needs; node-to-node
exchange can be layered on by protocols that include neighbour payloads in
their state.

Contract per round ``r = 0..R-1``:

1. every node ``i`` computes ``node_step(n, i, N(i), r, inbox_i)`` where
   ``inbox_i`` is the referee's message to ``i`` from the previous round
   (``Message.empty()`` in round 0);
2. the referee computes ``referee_step(n, r, messages)`` returning either
   ``("continue", outboxes)`` with one message per node, or
   ``("output", value)`` to terminate early.

Frugality of a multi-round protocol is per-round: every node→referee and
referee→node message must individually be ``O(log n)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message

__all__ = ["MultiRoundProtocol", "MultiRoundReferee", "MultiRoundReport"]


class MultiRoundProtocol(ABC):
    """An R-round protocol with per-node referee feedback."""

    name: str = "multiround-protocol"

    @abstractmethod
    def rounds(self, n: int) -> int:
        """Maximum number of communication rounds on n-vertex graphs."""

    @abstractmethod
    def node_step(
        self, n: int, i: int, neighborhood: frozenset[int], round_idx: int, inbox: Message
    ) -> Message:
        """Node ``i``'s message in round ``round_idx`` given referee feedback."""

    @abstractmethod
    def referee_step(
        self, n: int, round_idx: int, messages: list[Message]
    ) -> tuple[str, Any]:
        """Referee's move: ``("continue", [outbox_1..outbox_n])`` or ``("output", value)``."""


@dataclass(frozen=True)
class MultiRoundReport:
    """Resource usage of a multi-round run."""

    protocol: str
    n: int
    output: Any
    rounds_used: int
    max_node_message_bits: int
    max_referee_message_bits: int
    total_bits: int


class MultiRoundReferee:
    """Drives a :class:`MultiRoundProtocol` on a graph."""

    def __init__(self, *, budget_bits: int | None = None) -> None:
        #: optional per-message hard cap (applies to both directions)
        self.budget_bits = budget_bits

    def run(self, protocol: MultiRoundProtocol, g: LabeledGraph) -> MultiRoundReport:
        n = g.n
        max_rounds = protocol.rounds(n)
        if max_rounds < 1:
            raise ProtocolError(f"{protocol.name}: rounds() must be >= 1, got {max_rounds}")
        inboxes = [Message.empty() for _ in range(n)]
        max_node_bits = 0
        max_ref_bits = 0
        total = 0
        for r in range(max_rounds):
            messages = []
            for i in g.vertices():
                msg = protocol.node_step(n, i, g.neighbors(i), r, inboxes[i - 1])
                self._check(protocol, msg, f"node {i} round {r}")
                max_node_bits = max(max_node_bits, msg.bits)
                total += msg.bits
                messages.append(msg)
            verdict, payload = protocol.referee_step(n, r, messages)
            if verdict == "output":
                return MultiRoundReport(
                    protocol=protocol.name,
                    n=n,
                    output=payload,
                    rounds_used=r + 1,
                    max_node_message_bits=max_node_bits,
                    max_referee_message_bits=max_ref_bits,
                    total_bits=total,
                )
            if verdict != "continue":
                raise ProtocolError(f"{protocol.name}: bad referee verdict {verdict!r}")
            outboxes = payload
            if len(outboxes) != n:
                raise ProtocolError(
                    f"{protocol.name}: referee must send one message per node "
                    f"({len(outboxes)} != {n})"
                )
            for i, msg in enumerate(outboxes, start=1):
                self._check(protocol, msg, f"referee->node {i} round {r}")
                max_ref_bits = max(max_ref_bits, msg.bits)
                total += msg.bits
            inboxes = outboxes
        raise ProtocolError(
            f"{protocol.name}: exhausted {max_rounds} rounds without producing output"
        )

    def _check(self, protocol: MultiRoundProtocol, msg: Message, where: str) -> None:
        if self.budget_bits is not None and msg.bits > self.budget_bits:
            from repro.errors import FrugalityViolation

            raise FrugalityViolation(
                f"{protocol.name}: {where} sent {msg.bits} bits, budget {self.budget_bits}",
                bits=msg.bits,
                budget=self.budget_bits,
            )
