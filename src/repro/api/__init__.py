"""repro.api — the fluent front door to the whole pipeline.

One import, one chain, the entire system: :class:`Session` strings the
graph registry, the protocol registry, the referee options, the execution
engine, and the results layer into a single builder::

    from repro.api import Session

    (Session("quick")
     .graphs("random_planar", n=[64, 256], seeds=range(5))
     .protocol("degeneracy", k=5)
     .executor("process")
     .run()
     .aggregate(by=["n"])
     .gate(baseline="smoke"))

A session builds the exact :class:`~repro.engine.scenario.Scenario` /
:class:`~repro.engine.campaign.Campaign` objects the engine has always
run — same spec content hashes, same output digests, same JSONL bytes —
so fluent chains, hand-wired campaigns, JSON spec files, and the CLI are
four spellings of one pipeline.  Discovery lives next door in
:func:`repro.registry.catalog` (CLI: ``python -m repro list``).
"""

from repro.api.session import Session, SessionAggregate, SessionRun
from repro.registry import catalog

__all__ = ["Session", "SessionRun", "SessionAggregate", "catalog"]
