"""The fluent pipeline: graph grid → protocol → referee options → run → report.

:class:`Session` is the front door to the whole system — one chainable
builder that assembles the same :class:`~repro.engine.scenario.Scenario` /
:class:`~repro.engine.campaign.Campaign` objects the engine always ran, so
its records are *identical* (same spec content hashes, same output
digests) to hand-wired campaigns.  The canonical chain::

    from repro.api import Session

    check = (
        Session("planar-study")
        .graphs("random_planar", n=[64, 256], seeds=range(5))
        .protocol("degeneracy", k=5)
        .faults(drop=0.01)
        .executor("process")
        .run()
        .aggregate(by=["n"])
        .gate(baseline="smoke")
    )

Every builder method returns a *new* session (copy-on-write), so partial
chains are reusable prefixes::

    base = Session().protocol("forest")
    a = base.graphs("random_forest", n=64)
    b = base.graphs("random_tree", n=[32, 64])

Names resolve through :mod:`repro.registry` at call time, so typos fail
fast with a did-you-mean suggestion instead of surfacing mid-campaign.

Scale-out rides the same chain: ``.persist(dir).shard(3, index=1)`` runs
one worker's slice of the campaign (durable stream + completion mark),
``.shard(3)`` runs every shard in-process with checkpoints and
auto-merges, and ``.resume()`` replays the durable prefix of an
interrupted run — see :mod:`repro.engine.shard`.  ``.submit(url)`` ships
the same campaign to a running ``repro serve`` daemon instead and returns
a :class:`~repro.serve.client.RemoteJob` handle — see :mod:`repro.serve`.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro import registry
from repro.errors import BaselineError, ProtocolError, ShardError
from repro.analysis.tables import format_table
from repro.engine.campaign import Campaign, CampaignResult
from repro.engine.executor import EXECUTOR_KINDS, Executor, make_executor
from repro.engine.faults import FaultSpec
from repro.engine.scenario import RunRecord, Scenario
from repro.results.aggregate import DEFAULT_AXES, aggregate, aggregate_table
from repro.results.baseline import (
    DEFAULT_BASELINES_DIR,
    BaselineCheck,
    check as baseline_check,
    freeze as baseline_freeze,
)

__all__ = ["Session", "SessionRun", "SessionAggregate"]


@dataclass(frozen=True)
class _GraphBlock:
    """One ``graphs()`` call: a family swept over sizes × seeds."""

    family: str
    sizes: tuple[int, ...]
    seeds: tuple[int, ...]
    params: tuple[tuple[str, Any], ...]


def _as_tuple(value: int | Iterable[int], what: str) -> tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    if isinstance(value, (str, bytes)):
        # iterating "64" would silently run sizes (6, 4)
        raise ProtocolError(
            f"Session: {what} must be an int or an iterable of ints, "
            f"got the string {value!r}"
        )
    out = tuple(int(v) for v in value)
    if not out:
        raise ProtocolError(f"Session: {what} must be non-empty")
    return out


class Session:
    """Chainable builder over the graph → protocol → campaign pipeline.

    Builder methods never mutate; each returns a derived session.  The
    terminal :meth:`run` builds a :class:`Campaign` (also reachable via
    :meth:`build` for inspection) and executes it.  By default nothing is
    written to disk — chain :meth:`persist` to stream JSONL records and
    enable the content-hash cache, exactly like the CLI's
    ``--results-dir``.
    """

    def __init__(self, name: str = "session") -> None:
        self._name = name
        self._blocks: list[_GraphBlock] = []
        self._protocol: str | None = None
        self._protocol_params: dict[str, Any] = {}
        self._faults: FaultSpec | None = None
        self._budget_bits: int | None = None
        self._shuffle: bool = False
        self._executor_kind: str = "serial"
        self._jobs: int | None = None
        self._results_dir: str | pathlib.Path | None = None
        self._use_cache: bool = True
        self._shards: int | None = None
        self._shard_index: int | None = None
        self._resume: bool = False
        self._trace: bool = False
        self._progress: Any = None
        self._kernels: str | None = None

    # ------------------------------------------------------------------ #
    # builder steps (copy-on-write)
    # ------------------------------------------------------------------ #

    def _clone(self) -> "Session":
        clone = Session.__new__(Session)
        clone.__dict__.update(self.__dict__)
        clone._blocks = list(self._blocks)
        clone._protocol_params = dict(self._protocol_params)
        return clone

    def graphs(
        self,
        family: str,
        *,
        n: int | Iterable[int],
        seeds: int | Iterable[int] = (0,),
        **family_params: Any,
    ) -> "Session":
        """Add a graph block: ``family`` swept over ``n`` × ``seeds``.

        ``n`` and ``seeds`` take a single value or any iterable (lists,
        tuples, ``range``).  Repeated calls add further blocks, all run
        under the session's one protocol and referee configuration.
        """
        family = registry.GRAPH_FAMILY.resolve(family)  # fail fast on typos
        registry.GRAPH_FAMILY.validate_params(family, family_params)
        clone = self._clone()
        clone._blocks.append(_GraphBlock(
            family=family,
            sizes=_as_tuple(n, "n"),
            seeds=_as_tuple(seeds, "seeds"),
            params=tuple(sorted(family_params.items())),
        ))
        return clone

    def protocol(self, name: str, **protocol_params: Any) -> "Session":
        """Select the one-round protocol every block runs (last call wins)."""
        name = registry.PROTOCOL.resolve(name)
        registry.PROTOCOL.validate_params(name, protocol_params)
        clone = self._clone()
        clone._protocol = name
        clone._protocol_params = dict(protocol_params)
        return clone

    def faults(
        self,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        flip: float = 0.0,
        seed: int = 0,
    ) -> "Session":
        """Inject transit faults on the node→referee link."""
        clone = self._clone()
        clone._faults = FaultSpec(drop=drop, duplicate=duplicate, flip=flip, seed=seed)
        return clone

    def budget(self, bits: int | None) -> "Session":
        """Hard per-message frugality cap (``None`` removes it)."""
        clone = self._clone()
        clone._budget_bits = bits
        return clone

    def shuffle(self, enabled: bool = True) -> "Session":
        """Deliver messages in adversarial order (re-indexed by ID)."""
        clone = self._clone()
        clone._shuffle = bool(enabled)
        return clone

    def executor(self, kind: str, *, jobs: int | None = None) -> "Session":
        """Execution backend for :meth:`run`: serial, thread, or process."""
        if kind not in EXECUTOR_KINDS:
            raise ProtocolError(
                f"unknown executor {kind!r}; known: {', '.join(EXECUTOR_KINDS)}"
            )
        clone = self._clone()
        clone._executor_kind = kind
        clone._jobs = jobs
        return clone

    def persist(
        self,
        results_dir: str | pathlib.Path | None = "results",
        *,
        use_cache: bool = True,
    ) -> "Session":
        """Stream JSONL records under ``results_dir`` and enable the cache."""
        clone = self._clone()
        clone._results_dir = results_dir
        clone._use_cache = use_cache
        return clone

    def shard(self, shards: int, index: int | None = None) -> "Session":
        """Split the campaign into ``shards`` by spec content hash.

        With ``index`` this session runs only that shard (the scale-out
        form: one worker per index, :meth:`SessionRun` pointing at the
        shard stream); with ``index=None`` :meth:`run` executes every
        shard in-process and merges them into the canonical JSONL —
        the checkpointed single-machine form.  Requires :meth:`persist`
        (shard streams and the manifest are durable artifacts).
        """
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        if index is not None and not 0 <= index < shards:
            raise ShardError(
                f"shard index {index} out of range for {shards} shard(s) "
                f"(valid: 0..{shards - 1})"
            )
        clone = self._clone()
        clone._shards = shards
        clone._shard_index = index
        return clone

    def resume(self, enabled: bool = True) -> "Session":
        """Replay the durable prefix of an interrupted run, execute the rest.

        Requires the checkpoint manifest a previous persisted :meth:`run`
        wrote; a manifest whose grid, shard count, or ``SPEC_VERSION`` no
        longer matches is refused with an actionable error.
        """
        clone = self._clone()
        clone._resume = bool(enabled)
        return clone

    def trace(self, enabled: bool = True) -> "Session":
        """Stream span/mark/metrics events next to the records.

        :meth:`run` writes ``<results_dir>/<name>[.shard-…].events.jsonl``
        (DESIGN.md §8) — requires :meth:`persist`, like every durable
        artifact.  Read it back with ``repro trace`` or
        :func:`repro.obs.load_events`.
        """
        clone = self._clone()
        clone._trace = bool(enabled)
        return clone

    def progress(self, enabled: Any = True) -> "Session":
        """Live progress (rate, ETA, per-shard completion) on stderr.

        Pass ``True`` for a default
        :class:`~repro.obs.progress.ProgressReporter`, an instance to
        control the stream/TTY mode, or ``False`` to turn it back off.
        Works without :meth:`persist` — the event bus stays in-process.
        """
        clone = self._clone()
        clone._progress = enabled
        return clone

    def kernels(self, backend: str | None) -> "Session":
        """Select the sketch kernel backend (``"pure"`` or ``"numpy"``).

        ``"numpy"`` runs the hot paths (L0 updates, field derivation, bit
        packing) in array lanes — bit-identical records, guaranteed by the
        parity gate (:mod:`repro.sketching.kernels`), so it never changes
        content hashes or cache keys.  ``None`` restores the default
        (the ambient backend, normally ``"pure"``).  Validation happens at
        :meth:`run` time; requesting numpy without it installed raises
        :class:`~repro.errors.KernelError`.
        """
        clone = self._clone()
        clone._kernels = backend
        return clone

    # ------------------------------------------------------------------ #
    # terminal steps
    # ------------------------------------------------------------------ #

    def scenarios(self) -> list[Scenario]:
        """The scenario blocks this session describes (one per ``graphs()``)."""
        if not self._blocks:
            raise ProtocolError(
                "Session has no graph blocks; chain .graphs(family, n=...) first"
            )
        if self._protocol is None:
            raise ProtocolError(
                "Session has no protocol; chain .protocol(name, ...) first"
            )
        return [
            Scenario(
                name=f"{self._name}-{i}-{block.family}",
                family=block.family,
                sizes=block.sizes,
                protocol=self._protocol,
                seeds=block.seeds,
                family_params=block.params,
                protocol_params=self._protocol_params,
                budget_bits=self._budget_bits,
                shuffle_delivery=self._shuffle,
                faults=self._faults,
            )
            for i, block in enumerate(self._blocks)
        ]

    def build(self) -> Campaign:
        """The equivalent hand-wired :class:`Campaign` (records are identical)."""
        return Campaign(
            self.scenarios(),
            name=self._name,
            results_dir=self._results_dir,
            use_cache=self._use_cache,
        )

    def run(self, executor: Executor | None = None) -> "SessionRun":
        """Execute the campaign and return the chainable result."""
        campaign = self.build()
        kwargs = dict(
            shards=self._shards, shard_index=self._shard_index,
            resume=self._resume, trace=self._trace, progress=self._progress,
            kernels=self._kernels,
        )
        if executor is not None:
            result = campaign.run(executor, **kwargs)
        else:
            with make_executor(self._executor_kind, self._jobs) as ex:
                result = campaign.run(ex, **kwargs)
        return SessionRun(session=self, result=result)

    def submit(self, url: str | None = None, *, priority: str = "normal"):
        """Submit this session's campaign to a running daemon (DESIGN.md §9).

        The builder state maps straight onto the submission: the built
        campaign travels as an inline spec, ``.shard(n)`` becomes the
        job's shard count (each shard independently scheduled on the
        daemon's worker pool), ``.executor(kind, jobs=...)`` its
        per-shard backend, and ``.persist(use_cache=...)`` its cache
        flag.  Results live under the daemon's job store, not this
        process's ``results_dir``.  Returns the
        :class:`~repro.serve.client.RemoteJob` handle — ``wait()`` it,
        stream its ``records()``, fetch its ``summary()``, or
        ``cancel()`` it::

            job = (Session("sweep")
                   .graphs("random_forest", n=[32, 64], seeds=range(4))
                   .protocol("forest")
                   .shard(2)
                   .submit("http://127.0.0.1:7341"))
            print(job.wait()["state"])          # "done"
        """
        from repro.serve.client import DEFAULT_URL, ServeClient

        campaign = self.build()  # validates blocks/protocol before the wire
        return ServeClient(url or DEFAULT_URL).submit(
            spec=campaign.to_dict(),
            shards=self._shards or 1,
            priority=priority,
            executor=self._executor_kind,
            jobs=self._jobs,
            use_cache=self._use_cache,
        )

    def __repr__(self) -> str:  # pragma: no cover
        blocks = ", ".join(b.family for b in self._blocks) or "(no graphs)"
        return (f"Session({self._name!r}, graphs=[{blocks}], "
                f"protocol={self._protocol!r}, executor={self._executor_kind!r})")


@dataclass
class SessionRun:
    """A finished session run: records plus the chainable read side."""

    session: Session
    result: CampaignResult
    _json_dicts: list[dict] | None = field(default=None, repr=False)

    @property
    def records(self) -> list[RunRecord]:
        """The run records, in deterministic spec order."""
        return self.result.records

    def to_json_dicts(self) -> list[dict]:
        """The records in JSONL-object form (the results-layer currency).

        Serialized once and cached — chained ``aggregate``/``gate``/
        ``freeze`` calls on a large campaign reuse the same list.
        """
        if self._json_dicts is None:
            self._json_dicts = [r.to_json_dict() for r in self.records]
        return self._json_dicts

    def summary(self) -> dict[str, Any]:
        """The campaign summary (same shape as ``repro campaign --json``)."""
        return self.result.summary()

    @property
    def metrics(self) -> dict[str, Any] | None:
        """The run's metrics snapshot (counters/gauges/histograms)."""
        return self.result.metrics

    def aggregate(
        self,
        *,
        by: Sequence[str] = DEFAULT_AXES,
        include_timing: bool = False,
    ) -> "SessionAggregate":
        """Group-by over spec axes (``repro report`` as a method)."""
        groups = aggregate(self.to_json_dicts(), by=tuple(by),
                           include_timing=include_timing)
        return SessionAggregate(run=self, by=tuple(by), groups=groups,
                                include_timing=include_timing)

    def gate(
        self,
        *,
        baseline: str | pathlib.Path | Mapping,
        bits_tolerance: float = 0.0,
        baselines_dir: str | pathlib.Path = DEFAULT_BASELINES_DIR,
    ) -> BaselineCheck:
        """Check this run against a frozen baseline (``repro baseline check``).

        ``baseline`` is a baseline *name* (a bare string: resolved to
        ``<baselines_dir>/<name>.json``), a path to a frozen JSON file
        (anything with a suffix or a directory part), or an
        already-loaded baseline mapping.
        """
        if isinstance(baseline, str):
            as_path = pathlib.Path(baseline)
            if len(as_path.parts) == 1 and not as_path.suffix:
                # a bare name always means the baselines directory — a
                # stray cwd file with the same name must not shadow it
                candidate = pathlib.Path(baselines_dir) / f"{baseline}.json"
                if not candidate.exists():
                    raise BaselineError(
                        f"baseline {baseline!r} does not exist under "
                        f"{baselines_dir} (expected {candidate})"
                    )
                baseline = candidate
        return baseline_check(self.to_json_dicts(), baseline,
                              bits_tolerance=bits_tolerance)

    def freeze(
        self,
        name: str,
        *,
        baselines_dir: str | pathlib.Path = DEFAULT_BASELINES_DIR,
    ) -> pathlib.Path:
        """Freeze this run as a named baseline for future :meth:`gate` calls."""
        return baseline_freeze(self.to_json_dicts(), name,
                               baselines_dir=baselines_dir)


@dataclass
class SessionAggregate:
    """Aggregated groups, still chainable into the regression gate."""

    run: SessionRun
    by: tuple[str, ...]
    groups: list[dict] = field(repr=False, default_factory=list)
    include_timing: bool = False

    def table(self, *, title: str | None = None) -> str:
        """The aligned plain-text report table."""
        t, headers, rows = aggregate_table(
            self.groups, self.by,
            title=title or f"session {self.run.result.name} — "
                           f"{self.run.result.summary()['runs']} runs "
                           f"by {', '.join(self.by)}",
            include_timing=self.include_timing,
        )
        return format_table(t, headers, rows)

    def gate(self, **kwargs: Any) -> BaselineCheck:
        """Gate the *underlying run* (all records, not just these groups)."""
        return self.run.gate(**kwargs)

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)
