"""Command-line interface: experiments and campaigns.

Usage::

    python -m repro list                       # experiments + builtin campaigns
    python -m repro experiment EXP-L2          # run one experiment table
    python -m repro experiment all --json      # every experiment, as JSON
    python -m repro campaign smoke             # run a builtin campaign
    python -m repro campaign spec.json --jobs 4 --executor process

``python -m repro EXP-L2`` / ``python -m repro all`` remain as aliases for
the ``experiment`` subcommand so existing scripts keep working.

Experiment tables are also written by ``pytest benchmarks/`` into
``benchmarks/results/``; campaigns stream JSONL records into ``results/``
(see DESIGN.md for the record schema).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import EXPERIMENTS, format_table

__all__ = ["main"]

_SUBCOMMANDS = ("list", "experiment", "campaign")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Becker et al., 'Adding a referee "
        "to an interconnection network' (IPDPS 2011).",
    )
    sub = parser.add_subparsers(dest="command", metavar="{list,experiment,campaign}")

    p_list = sub.add_parser("list", help="show experiment IDs and builtin campaigns")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")

    p_exp = sub.add_parser("experiment", help="run one experiment table (or 'all')")
    p_exp.add_argument("experiment", help="experiment ID (e.g. EXP-T5) or 'all'")
    p_exp.add_argument("--json", action="store_true", help="emit tables as JSON")

    p_camp = sub.add_parser("campaign", help="run a campaign (builtin name or spec.json)")
    p_camp.add_argument("campaign", help="builtin campaign name or path to a JSON spec")
    p_camp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for pooled executors (default: all cores)")
    p_camp.add_argument("--executor", choices=("serial", "thread", "process"),
                        default="serial", help="execution backend (default: serial)")
    p_camp.add_argument("--results-dir", default="results", metavar="DIR",
                        help="where JSONL records and the cache live (default: results/)")
    p_camp.add_argument("--no-cache", action="store_true",
                        help="recompute every run, ignoring cached results")
    p_camp.add_argument("--json", action="store_true", help="emit the summary as JSON")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.engine import BUILTIN_CAMPAIGNS

    if args.json:
        payload = {
            "experiments": [
                {"id": exp_id, "title": (fn.__doc__ or "").strip().splitlines()[0]}
                for exp_id, fn in EXPERIMENTS.items()
            ],
            "campaigns": sorted(BUILTIN_CAMPAIGNS),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("experiments:")
    for exp_id, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:12s} {doc}")
    print("campaigns:")
    for name in sorted(BUILTIN_CAMPAIGNS):
        print(f"  {name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    tables = []
    for exp_id in ids:
        title, headers, rows = EXPERIMENTS[exp_id]()
        if args.json:
            tables.append({"id": exp_id, "title": title, "headers": headers,
                           "rows": [list(r) for r in rows]})
        else:
            print(format_table(title, headers, rows))
    if args.json:
        print(json.dumps(tables, indent=2, default=str))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.engine import load_campaign, make_executor

    try:
        campaign = load_campaign(
            args.campaign, results_dir=args.results_dir, use_cache=not args.no_cache
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:  # malformed JSON / wrong-typed fields
        print(f"error: cannot parse {args.campaign}: {exc}", file=sys.stderr)
        return 2

    if args.executor == "serial" and args.jobs is not None:
        print("note: --jobs has no effect with the serial executor "
              "(use --executor thread|process)", file=sys.stderr)
    try:
        executor = make_executor(args.executor, args.jobs)
    except ReproError as exc:  # e.g. --jobs 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with executor:
        result = campaign.run(executor)

    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"campaign {summary['campaign']}: {summary['runs']} runs "
          f"({summary['cache_hits']} cached) via {summary['executor']} "
          f"in {summary['wall_seconds']}s")
    for status, count in sorted(summary["statuses"].items()):
        print(f"  {status:10s} {count}")
    if summary["exact"] or summary["inexact"]:
        print(f"  exact      {summary['exact']}/{summary['exact'] + summary['inexact']}")
    if summary["jsonl"]:
        print(f"  records -> {summary['jsonl']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro EXP-T5` / `all` mean `experiment <id>`.
    if argv and argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "experiment")

    parser = _build_parser()
    if not argv:
        parser.print_usage(sys.stderr)
        print("repro: error: a subcommand is required", file=sys.stderr)
        return 2
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    return _cmd_campaign(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
