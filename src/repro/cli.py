"""Command-line interface: regenerate any experiment table.

Usage::

    python -m repro list            # show experiment IDs and docstrings
    python -m repro EXP-L2          # run one experiment, print its table
    python -m repro all             # run every experiment

The same tables are written by ``pytest benchmarks/`` into
``benchmarks/results/``; the CLI is for interactive spelunking.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import EXPERIMENTS, format_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Becker et al., 'Adding a referee "
        "to an interconnection network' (IPDPS 2011).",
    )
    parser.add_argument(
        "experiment",
        help="experiment ID (e.g. EXP-T5), 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:12s} {doc}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        title, headers, rows = EXPERIMENTS[exp_id]()
        print(format_table(title, headers, rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
