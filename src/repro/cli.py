"""Command-line interface: experiments, campaigns, and the results layer.

Usage::

    python -m repro list                       # experiments + builtin campaigns
    python -m repro experiment EXP-L2          # run one experiment table
    python -m repro experiment all --json      # every experiment, as JSON
    python -m repro campaign smoke             # run a builtin campaign
    python -m repro campaign spec.json --jobs 4 --executor process
    python -m repro campaign smoke --shards 3 --shard-index 0   # one worker's slice
    python -m repro campaign smoke --shards 3 --shard-index 0 --resume
    python -m repro campaign smoke --trace     # + results/smoke.events.jsonl
    python -m repro trace results/smoke.events.jsonl   # phase breakdown
    python -m repro stats smoke                # metrics, Prometheus text
    python -m repro merge smoke                # reassemble shard streams
    python -m repro merge smoke --compact      # + columnar sibling & trend point
    python -m repro store compact results/smoke.jsonl   # write smoke.columns
    python -m repro store verify results/smoke.jsonl    # prove it lossless
    python -m repro report results/smoke.jsonl --by protocol,n
    python -m repro report results/smoke.jsonl --trend  # + trend ledger gate
    python -m repro diff results-a/smoke.jsonl results-b/smoke.jsonl
    python -m repro baseline freeze results/smoke.jsonl --name smoke
    python -m repro baseline check results/smoke.jsonl benchmarks/baselines/smoke.json
    python -m repro bench --json                   # perf suite -> BENCH_PR4.json
    python -m repro bench --gate benchmarks/baselines/bench.json  # exit 1 on regression
    python -m repro serve --root serve-data        # the campaign service daemon
    python -m repro submit smoke --shards 2        # submit a job over HTTP
    python -m repro jobs                           # list the daemon's jobs
    python -m repro job j000001 --follow           # follow one to completion

``python -m repro EXP-L2`` / ``python -m repro all`` remain as aliases for
the ``experiment`` subcommand so existing scripts keep working.

Exit codes: 0 success, 1 gate/domain failure (``diff`` found differences,
``baseline check`` failed, ``bench --gate`` regressed — including a trend
regression from ``--trends``, ``merge`` found incomplete shards — retry
after resuming them, ``report`` pointed at a missing/empty records file
or found a trend regression with ``--trend``, ``store verify`` found a
stale or lossy columnar file, ``submit`` refused by a full queue — retry
later, ``job`` landed failed/cancelled), 2 usage or connection error
(unknown subcommand, malformed flags, unreadable or schema-invalid
input, bad shard geometry, ``--resume`` without a manifest or against a
stale/edited one, no daemon listening at ``--url``, an unknown job ID).  An interrupted ``campaign`` returns 130 after releasing
its workers (partial results stay durable — re-run with ``--resume``).
Argparse errors are converted to return codes — :func:`main` never lets
``SystemExit`` escape.

Experiment tables are also written by ``pytest benchmarks/`` into
``benchmarks/results/``; campaigns stream JSONL records into ``results/``
(see DESIGN.md §3 for the record schema, §4 for the results layer).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import registry
from repro.analysis import format_table

__all__ = ["main"]

_SUBCOMMANDS = ("list", "experiment", "campaign", "merge", "report", "diff",
                "baseline", "bench", "trace", "stats", "store", "serve",
                "submit", "jobs", "job")


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Becker et al., 'Adding a referee "
        "to an interconnection network' (IPDPS 2011).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(
        dest="command", metavar="{" + ",".join(_SUBCOMMANDS) + "}"
    )

    p_list = sub.add_parser(
        "list", help="show the registry catalog (families, protocols, "
        "experiments, campaigns)")
    p_list.add_argument("--kind", choices=registry.kinds(), default=None,
                        help="restrict the listing to one registry kind")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")

    p_exp = sub.add_parser("experiment", help="run one experiment table (or 'all')")
    p_exp.add_argument("experiment", help="experiment ID (e.g. EXP-T5) or 'all'")
    p_exp.add_argument("--json", action="store_true", help="emit tables as JSON")

    p_camp = sub.add_parser("campaign", help="run a campaign (builtin name or spec.json)")
    p_camp.add_argument("campaign", help="builtin campaign name or path to a JSON spec")
    p_camp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for pooled executors (default: all cores)")
    p_camp.add_argument("--executor", choices=("serial", "thread", "process"),
                        default="serial", help="execution backend (default: serial)")
    p_camp.add_argument("--results-dir", default="results", metavar="DIR",
                        help="where JSONL records and the cache live (default: results/)")
    p_camp.add_argument("--no-cache", action="store_true",
                        help="recompute every run, ignoring cached results")
    p_camp.add_argument("--shards", type=int, default=None, metavar="N",
                        help="split the grid into N shards by spec content "
                        "hash (see `repro merge`)")
    p_camp.add_argument("--shard-index", type=int, default=None, metavar="I",
                        help="run only shard I (0-based); omit to run every "
                        "shard in this process and auto-merge")
    p_camp.add_argument("--resume", action="store_true",
                        help="replay the durable prefix of an interrupted "
                        "run and execute only what is missing")
    p_camp.add_argument("--trace", action="store_true",
                        help="stream span/mark/metrics events to "
                        "<results-dir>/<name>.events.jsonl (see `repro trace`)")
    progress_group = p_camp.add_mutually_exclusive_group()
    progress_group.add_argument("--progress", action="store_true", default=None,
                                dest="progress",
                                help="live progress on stderr (default: on "
                                "when stderr is a TTY)")
    progress_group.add_argument("--no-progress", action="store_false",
                                dest="progress",
                                help="disable live progress")
    p_camp.add_argument("--kernels", choices=("pure", "numpy"), default=None,
                        help="sketch kernel backend (default: pure; numpy "
                        "needs the optional dependency installed — records "
                        "are bit-identical either way)")
    p_camp.add_argument("--json", action="store_true", help="emit the summary as JSON")

    p_merge = sub.add_parser(
        "merge", help="merge completed shard streams into the canonical JSONL")
    p_merge.add_argument("campaign", help="campaign name (the manifest lives at "
                         "<results-dir>/<name>.manifest.json)")
    p_merge.add_argument("--results-dir", default="results", metavar="DIR",
                         help="where the manifest and shard streams live "
                         "(default: results/)")
    p_merge.add_argument("--compact", action="store_true",
                         help="also write the columnar .columns sibling and "
                         "append the campaign's trend point to "
                         "<results-dir>/trends.jsonl")
    p_merge.add_argument("--json", action="store_true",
                         help="emit the merge summary as JSON")

    p_rep = sub.add_parser("report", help="aggregate a campaign JSONL file")
    p_rep.add_argument("records", help="path to a results/<name>.jsonl file")
    p_rep.add_argument("--by", default=None, metavar="AXES",
                       help="comma-separated spec axes to group by "
                       "(default: protocol,family,n)")
    p_rep.add_argument("--timing", action="store_true",
                       help="include (nondeterministic) wall-clock columns")
    p_rep.add_argument("--trend", action="store_true",
                       help="append this campaign's point to the trend "
                       "ledger and exit 1 when its p95 message bits rose "
                       "for three consecutive comparable runs")
    p_rep.add_argument("--trends", default=None, metavar="LEDGER",
                       help="trend ledger path (default: trends.jsonl next "
                       "to the records file; implies --trend)")
    p_rep.add_argument("--json", action="store_true", help="emit groups as JSON")

    p_diff = sub.add_parser("diff", help="compare two campaign JSONL files run-by-run")
    p_diff.add_argument("a", help="baseline campaign JSONL")
    p_diff.add_argument("b", help="candidate campaign JSONL")
    p_diff.add_argument("--bits-tolerance", type=float, default=0.0, metavar="F",
                        help="relative bit-count tolerance (default: 0 = exact)")
    p_diff.add_argument("--time-tolerance", type=float, default=None, metavar="R",
                        help="fail when mean wall-clock ratio b/a exceeds R "
                        "(default: timing never fails the diff)")
    p_diff.add_argument("--json", action="store_true", help="emit the report as JSON")

    p_base = sub.add_parser("baseline", help="freeze or check a regression baseline")
    base_sub = p_base.add_subparsers(dest="action", metavar="{freeze,check}")
    p_freeze = base_sub.add_parser("freeze", help="freeze a campaign summary to JSON")
    p_freeze.add_argument("records", help="path to a results/<name>.jsonl file")
    p_freeze.add_argument("--name", required=True, help="baseline name (file stem)")
    p_freeze.add_argument("--dir", default="benchmarks/baselines", metavar="DIR",
                          help="baselines directory (default: benchmarks/baselines)")
    p_check = base_sub.add_parser("check", help="check a campaign against a baseline")
    p_check.add_argument("records", help="path to a results/<name>.jsonl file")
    p_check.add_argument("baseline", help="path to a frozen baseline JSON file")
    p_check.add_argument("--bits-tolerance", type=float, default=0.0, metavar="F",
                         help="relative bit-count tolerance (default: 0 = exact)")
    p_check.add_argument("--json", action="store_true", help="emit the verdict as JSON")

    p_bench = sub.add_parser(
        "bench", help="run the registered benchmark suite (kind 'benchmark')")
    p_bench.add_argument("benchmarks", nargs="*", metavar="NAME",
                         help="benchmark names (default: the whole suite; "
                         "see `repro list --kind benchmark`)")
    p_bench.add_argument("--scale", type=float, default=1.0, metavar="F",
                         help="input-size multiplier applied to every "
                         "benchmark (default: 1.0)")
    p_bench.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="timed repetitions per benchmark (default: 3)")
    p_bench.add_argument("--output", default=None, metavar="PATH",
                         help="where to write the JSON report "
                         "(default: BENCH_PR4.json; '-' disables)")
    p_bench.add_argument("--freeze", default=None, metavar="PATH",
                         help="also freeze this run as a bench baseline at PATH")
    p_bench.add_argument("--gate", default=None, metavar="BASELINE",
                         help="check the run against a frozen bench baseline "
                         "(exit 1 on regression)")
    p_bench.add_argument("--time-tolerance", type=float, default=None, metavar="R",
                         help="with --gate: fail when a benchmark's mean wall "
                         "time exceeds R x the baseline's (default: timing "
                         "never fails the gate)")
    p_bench.add_argument("--trends", default=None, metavar="LEDGER",
                         help="append each benchmark's p95 wall seconds to "
                         "this trend ledger and fail (exit 1) when one rose "
                         "for three consecutive comparable runs")
    p_bench.add_argument("--json", action="store_true",
                         help="emit the report (and gate verdict) as JSON")

    p_trace = sub.add_parser(
        "trace", help="analyze a campaign's events.jsonl: phase breakdown, "
        "critical path, slowest runs")
    p_trace.add_argument("events", help="path to a <name>.events.jsonl file")
    p_trace.add_argument("--top", type=int, default=10, metavar="K",
                         help="slowest runs to show (default: 10)")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")

    p_stats = sub.add_parser(
        "stats", help="show a campaign's metrics snapshot "
        "(Prometheus text format)")
    p_stats.add_argument("metrics", help="campaign name (resolved under "
                         "--results-dir) or path to a <name>.metrics.json file")
    p_stats.add_argument("--results-dir", default="results", metavar="DIR",
                         help="where metrics snapshots live (default: results/)")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the raw snapshot as JSON")

    p_store = sub.add_parser(
        "store", help="columnar record store: compact, verify, read")
    store_sub = p_store.add_subparsers(dest="action",
                                       metavar="{compact,verify,read}")
    p_sc = store_sub.add_parser(
        "compact", help="write the columnar .columns sibling of a JSONL file")
    p_sc.add_argument("records", help="path to a results/<name>.jsonl file")
    p_sc.add_argument("--no-compress", action="store_true",
                      help="skip deflating the column pages")
    p_sc.add_argument("--json", action="store_true",
                      help="emit the compaction summary as JSON")
    p_sv = store_sub.add_parser(
        "verify", help="prove a columnar file lossless against its JSONL "
        "(exit 1 when stale or lossy)")
    p_sv.add_argument("records", help="path to a results/<name>.jsonl file")
    p_sv.add_argument("columns", nargs="?", default=None,
                      help="columnar file (default: the .columns sibling)")
    p_sv.add_argument("--json", action="store_true",
                      help="emit the verdict as JSON")
    p_sr = store_sub.add_parser(
        "read", help="decode a .columns file back to canonical JSONL on stdout")
    p_sr.add_argument("columns", help="path to a <name>.columns file")

    p_serve = sub.add_parser(
        "serve", help="run the campaign service daemon (HTTP/JSON on "
        "--host:--port; Ctrl-C or SIGTERM stops it cleanly)")
    p_serve.add_argument("--host", default=None, metavar="HOST",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None, metavar="PORT",
                         help="listen port (default: 7341; 0 picks an "
                         "ephemeral port, printed in the banner)")
    p_serve.add_argument("--root", default="serve-data", metavar="DIR",
                         help="the durable job store root (default: "
                         "serve-data/; restart on the same root resumes "
                         "unfinished jobs)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="shard-pulling worker tasks (default: 2)")
    p_serve.add_argument("--queue-limit", type=int, default=16, metavar="N",
                         help="max active (queued+running) jobs before "
                         "submissions get 429 (default: 16)")
    p_serve.add_argument("--executor", choices=("serial", "thread", "process"),
                         default="process",
                         help="execution backend per shard (default: process)")
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="pool size inside each shard's executor "
                         "(default: all cores)")
    p_serve.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="hard per-shard wall-clock limit "
                         "(default: none)")
    p_serve.add_argument("--retries", type=int, default=2, metavar="N",
                         help="re-runs of a shard whose worker process "
                         "crashed (default: 2)")

    url_help = ("daemon URL (default: $REPRO_SERVE_URL or "
                "http://127.0.0.1:7341)")
    p_submit = sub.add_parser(
        "submit", help="submit a campaign job to a running daemon")
    p_submit.add_argument("campaign", help="builtin campaign name or path to "
                          "a JSON spec")
    p_submit.add_argument("--url", default=None, metavar="URL", help=url_help)
    p_submit.add_argument("--shards", type=int, default=1, metavar="N",
                          help="split the grid into N independently-"
                          "scheduled shards (default: 1)")
    p_submit.add_argument("--priority", choices=("high", "normal", "low"),
                          default="normal",
                          help="queue priority class (default: normal)")
    p_submit.add_argument("--executor", choices=("serial", "thread", "process"),
                          default=None,
                          help="override the daemon's executor for this job")
    p_submit.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="override the daemon's per-shard pool size")
    p_submit.add_argument("--no-cache", action="store_true",
                          help="recompute every run, ignoring cached results")
    p_submit.add_argument("--follow", action="store_true",
                          help="after submitting, follow the job to "
                          "completion (like `repro job <id> --follow`)")
    p_submit.add_argument("--json", action="store_true",
                          help="emit the created job view as JSON")

    p_jobs = sub.add_parser("jobs", help="list a daemon's jobs")
    p_jobs.add_argument("--url", default=None, metavar="URL", help=url_help)
    p_jobs.add_argument("--json", action="store_true",
                        help="emit the job list as JSON")

    p_job = sub.add_parser(
        "job", help="show one job (exit 0 done, 1 failed/cancelled)")
    p_job.add_argument("id", help="job ID (e.g. j000001; see `repro jobs`)")
    p_job.add_argument("--url", default=None, metavar="URL", help=url_help)
    p_job.add_argument("--follow", action="store_true",
                       help="poll until the job is terminal, printing "
                       "progress")
    p_job.add_argument("--cancel", action="store_true",
                       help="request cancellation instead of showing the job")
    p_job.add_argument("--json", action="store_true",
                       help="emit the (final) job view as JSON")
    return parser


_KIND_HEADINGS = {
    "graph_family": "graph families",
    "protocol": "protocols",
    "experiment": "experiments",
    "campaign": "campaigns",
    "benchmark": "benchmarks",
    "span": "trace spans",
}


def _cmd_list(args: argparse.Namespace) -> int:
    """Emit the registry catalog: kinds, capabilities, params, summaries.

    Key ordering is stable everywhere — kinds, entry names, and parameter
    names are sorted, and the JSON form is dumped with ``sort_keys`` — so
    the output is diffable and the api-surface CI job can pin it.
    """
    if args.kind is not None:
        # load only the requested kind's modules, not the whole surface
        catalog = {args.kind: registry.registry_for(args.kind).catalog()}
    else:
        catalog = registry.catalog()
    if args.json:
        print(json.dumps(catalog, indent=2, sort_keys=True))
        return 0
    for kind, entries in catalog.items():  # kinds sorted by catalog()
        print(f"{_KIND_HEADINGS.get(kind, kind)}:")
        for name, meta in entries.items():
            tags = f" [{', '.join(meta['capabilities'])}]" if meta["capabilities"] else ""
            params = ", ".join(f"{k}: {v}" for k, v in meta["params"].items())
            print(f"  {name:24s}{tags} {meta['summary']}".rstrip())
            if params:
                print(f"  {'':24s}   params: {params}")
            if meta["aliases"]:
                print(f"  {'':24s}   aliases: {', '.join(meta['aliases'])}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiments = registry.EXPERIMENT
    ids = list(experiments.names()) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in experiments]
    if unknown:
        for name in unknown:
            print(experiments.unknown(name), file=sys.stderr)
        return 2
    tables = []
    for exp_id in ids:
        title, headers, rows = experiments.build(exp_id)
        if args.json:
            tables.append({"id": exp_id, "title": title, "headers": headers,
                           "rows": [list(r) for r in rows]})
        else:
            print(format_table(title, headers, rows))
    if args.json:
        print(json.dumps(tables, indent=2, default=str))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.errors import KernelError, ObsError, ReproError, ShardError
    from repro.engine import load_campaign, make_executor

    try:
        campaign = load_campaign(
            args.campaign, results_dir=args.results_dir, use_cache=not args.no_cache
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:  # malformed JSON / wrong-typed fields
        print(f"error: cannot parse {args.campaign}: {exc}", file=sys.stderr)
        return 2

    if args.executor == "serial" and args.jobs is not None:
        print("note: --jobs has no effect with the serial executor "
              "(use --executor thread|process)", file=sys.stderr)
    try:
        executor = make_executor(args.executor, args.jobs)
    except ReproError as exc:  # e.g. --jobs 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --progress/--no-progress; the default (None) means "on for a TTY",
    # so interactive runs get the live line and piped runs stay clean.
    progress = args.progress
    if progress is None:
        progress = sys.stderr.isatty()
    try:
        with executor:
            result = campaign.run(
                executor,
                shards=args.shards,
                shard_index=args.shard_index,
                resume=args.resume,
                trace=args.trace,
                progress=progress,
                kernels=args.kernels,
            )
    except (ShardError, ObsError, KernelError) as exc:
        # bad shard geometry, missing/stale manifest, edited grid, a trace
        # without a results_dir, a kernel backend whose dependency is
        # missing — all usage-shaped refusals with the fix in the message
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # the with-block already cancelled pending work and reaped the
        # pool; everything durably written so far replays on --resume
        print(f"\ninterrupted: workers released; partial results are "
              f"durable — re-run with --resume to finish", file=sys.stderr)
        return 130

    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    shard_note = ""
    if result.shards is not None:
        which = "all shards" if result.shard_index is None \
            else f"shard {result.shard_index}"
        shard_note = f" [{which} of {result.shards}]"
    print(f"campaign {summary['campaign']}{shard_note}: {summary['runs']} runs "
          f"({summary['cache_hits']} cached) via {summary['executor']} "
          f"in {summary['wall_seconds']}s")
    if result.resumed:
        print(f"  resumed    {result.resumed} (replayed from the durable stream)")
    for status, count in sorted(summary["statuses"].items()):
        print(f"  {status:10s} {count}")
    if summary["exact"] or summary["inexact"]:
        print(f"  exact      {summary['exact']}/{summary['exact'] + summary['inexact']}")
    if summary["jsonl"]:
        print(f"  records -> {summary['jsonl']}")
    if result.events_path is not None:
        print(f"  events  -> {result.events_path}")
    if result.metrics_path is not None:
        print(f"  metrics -> {result.metrics_path}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.errors import ReproError, ShardIncomplete
    from repro.engine import ShardManifest, merge_shards

    try:
        path, count = merge_shards(args.results_dir, args.campaign,
                                   compact=args.compact)
    except ShardIncomplete as exc:
        # shards still running / torn — a retryable gate failure, not misuse
        print(f"not ready: {exc}", file=sys.stderr)
        try:
            manifest = ShardManifest.load(args.results_dir, args.campaign)
            done = manifest.completion(args.results_dir)
            print(f"  shards complete: {sum(done)}/{manifest.shards} "
                  f"{['done' if d else 'pending' for d in done]}",
                  file=sys.stderr)
        except ReproError:
            pass
        return 1
    except (ReproError, OSError) as exc:  # missing/stale/corrupt manifest
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {"campaign": args.campaign, "records": count, "jsonl": str(path)}
    if args.compact:
        from repro.store import columnar_path, trends_path

        payload["columns"] = str(columnar_path(path))
        payload["trends"] = str(trends_path(args.results_dir))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"merged {args.campaign}: {count} records -> {path}")
    if args.compact:
        print(f"  columns -> {payload['columns']}")
        print(f"  trends  -> {payload['trends']}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.errors import ResultsError
    from repro.results import Aggregator, DEFAULT_AXES, aggregate_table, iter_records

    by = tuple(a.strip() for a in args.by.split(",") if a.strip()) if args.by \
        else DEFAULT_AXES
    records_path = pathlib.Path(args.records)
    trend = args.trend or args.trends is not None
    if not records_path.exists():
        # A missing records file is an empty results dir — a domain state
        # ("nothing to report yet"), not CLI misuse: exit 1, no traceback.
        print(f"error: no records at {records_path} — the campaign has not "
              "written (or merged) its results yet", file=sys.stderr)
        return 1
    try:
        # Streaming + incremental: only the per-group rollups (and, with
        # --trend, the campaign-wide bit stats) stay in memory.
        agg = Aggregator(by=by, include_timing=args.timing)
        spec_hashes: list[str] = []
        bits = None
        if trend:
            from repro.results import spec_content_hash
            from repro.results.aggregate import RunningStats

            bits = RunningStats()
        for record in iter_records(records_path):
            agg.feed(record)
            if trend:
                spec_hashes.append(spec_content_hash(record["spec"]))
                bits.feed(record["result"]["max_message_bits"])
    except (ResultsError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if agg.records == 0:
        print(f"error: {records_path} holds no records; nothing to report",
              file=sys.stderr)
        return 1
    groups = agg.groups()

    trend_view = None
    if trend:
        trend_view = _report_trend(args, records_path, spec_hashes, bits)
        if trend_view is None:
            return 2  # the helper already printed the error

    total_runs = sum(g["runs"] for g in groups)
    if args.json:
        payload = {"records": total_runs, "by": list(by), "groups": groups}
        if trend_view is not None:
            payload["trend"] = trend_view
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        title, headers, rows = aggregate_table(
            groups, by,
            title=f"{args.records} — {total_runs} runs by {', '.join(by)}",
            include_timing=args.timing,
        )
        print(format_table(title, headers, rows))
        if trend_view is not None:
            tail = trend_view["series"]
            print(f"  trend {trend_view['ledger']} (key {trend_view['key']}): "
                  f"{trend_view['points']} comparable run(s), "
                  f"p95 bits tail {tail}")
            if trend_view["regressed"]:
                print("  TREND REGRESSION: p95 message bits rose "
                      f"{len(tail) - 1} consecutive runs")
    if trend_view is not None and trend_view["regressed"]:
        return 1
    return 0


def _report_trend(args, records_path, spec_hashes, bits):
    """Append this report's trend point and check the series; the dict
    view on success, ``None`` after printing an error (exit 2)."""
    import pathlib

    from repro.errors import StoreError
    from repro.store import (
        DEFAULT_WINDOW, TREND_VERSION, append_point, campaign_trend_key,
        load_points, regressed, series, trends_path,
    )

    ledger = pathlib.Path(args.trends) if args.trends \
        else trends_path(records_path.parent)
    name = records_path.stem
    key = campaign_trend_key(spec_hashes)
    stats = bits.stats()
    point = {
        "trend_version": TREND_VERSION,
        "kind": "campaign",
        "key": key,
        "name": name,
        "metrics": {
            "records": stats["count"],
            "max_message_bits_mean": stats["mean"],
            "max_message_bits_p95": stats["p95"],
        },
    }
    try:
        prior = series(load_points(ledger), kind="campaign", key=key,
                       name=name, metric="max_message_bits_p95")
        append_point(ledger, point)
    except (StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    values = prior + [stats["p95"]]
    return {
        "ledger": str(ledger),
        "key": key,
        "points": len(values),
        "metrics": point["metrics"],
        "series": values[-(DEFAULT_WINDOW + 1):],
        "regressed": regressed(values),
    }


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.errors import ResultsError
    from repro.results import diff_campaigns, load_records

    try:
        report = diff_campaigns(
            load_records(args.a),
            load_records(args.b),
            bits_tolerance=args.bits_tolerance,
            time_tolerance=args.time_tolerance,
        )
    except (ResultsError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"diff {args.a} vs {args.b}: {report.matched} matched, "
          f"{len(report.only_in_a)} only in a, {len(report.only_in_b)} only in b")
    for delta in report.result_mismatches[:20]:
        s = delta.spec
        print(f"  MISMATCH {delta.field} @ {s['scenario']}/{s['family']}/n={s['n']}/"
              f"seed={s['seed']}: {delta.a!r} -> {delta.b!r}")
    for delta in report.bit_deltas[:20]:
        s = delta.spec
        print(f"  BITS {delta.field} @ {s['scenario']}/{s['family']}/n={s['n']}/"
              f"seed={s['seed']}: {delta.a} -> {delta.b} "
              f"(tolerance {report.bits_tolerance})")
    hidden = max(0, len(report.result_mismatches) - 20) + \
        max(0, len(report.bit_deltas) - 20)
    if hidden > 0:
        print(f"  ... and {hidden} more (use --json for the full report)")
    if report.time_ok is not None:
        if report.wall_ratio is None:
            print("  wall-clock ratio b/a: unavailable (no wall_seconds "
                  "measured); timing gate vacuously ok")
        else:
            print(f"  wall-clock ratio b/a: mean {report.wall_ratio['mean']} "
                  f"({'ok' if report.time_ok else 'EXCEEDS'} tolerance "
                  f"{report.time_tolerance})")
    print("identical" if report.ok else "DIFFERS")
    return 0 if report.ok else 1


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.errors import ResultsError
    from repro.results import check, freeze, load_records

    if args.action is None:
        print("repro baseline: error: an action is required (freeze or check)",
              file=sys.stderr)
        return 2
    try:
        records = load_records(args.records)
        if args.action == "freeze":
            path = freeze(records, args.name, baselines_dir=args.dir)
            print(f"baseline {args.name} ({len(records)} runs) -> {path}")
            return 0
        verdict = check(records, args.baseline, bits_tolerance=args.bits_tolerance)
    except (ResultsError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
        return 0 if verdict.passed else 1
    print(f"baseline check {args.baseline}: {verdict.runs_checked} runs, "
          f"{len(verdict.failures)} failure(s)")
    for failure in verdict.failures[:20]:
        print(f"  FAIL [{failure.kind}] {failure.key}: {failure.detail}")
    if len(verdict.failures) > 20:
        print(f"  ... and {len(verdict.failures) - 20} more (use --json)")
    print("passed" if verdict.passed else "FAILED")
    return 0 if verdict.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        DEFAULT_OUTPUT,
        check_suite,
        freeze_suite,
        run_suite,
        write_suite,
    )
    from repro.errors import BenchError, ReproError

    try:
        report = run_suite(args.benchmarks or None, scale=args.scale,
                           repeats=args.repeats)
    except (BenchError, ReproError) as exc:
        # covers UnknownRegistryEntry too (the did-you-mean is in the message)
        print(f"error: {exc}", file=sys.stderr)
        return 2

    output = DEFAULT_OUTPUT if args.output is None else args.output
    written = None
    try:
        if str(output) != "-":
            written = write_suite(report, output)
        if args.freeze:
            freeze_suite(report, args.freeze)
    except (BenchError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    verdict = None
    if args.gate is not None:
        try:
            verdict = check_suite(report, args.gate,
                                  time_tolerance=args.time_tolerance)
        except (BenchError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.time_tolerance is not None:
        print("note: --time-tolerance has no effect without --gate",
              file=sys.stderr)

    trend_failures = []
    if args.trends is not None:
        trend_failures = _bench_trends(args.trends, report)
        if trend_failures is None:
            return 2  # the helper already printed the error
        if verdict is not None:
            # Fold trajectory failures into the gate verdict so one
            # structured verdict carries both kinds of regression.
            verdict.failures.extend(trend_failures)

    if args.json:
        payload = dict(report)
        if verdict is not None:
            payload["gate"] = verdict.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = []
        for name in report["suite"]:
            entry = report["results"][name]
            rows.append([
                name, entry["ops"], entry["bits"],
                entry["wall_seconds"]["mean"], entry["ops_per_second"],
            ])
        print(format_table(
            f"bench suite — {len(rows)} benchmark(s), scale "
            f"{report['scale']}, {report['repeats']} repeat(s)",
            ["benchmark", "ops", "bits", "mean s", "ops/s"], rows,
        ))
        for name, ratio in sorted(report["speedups"].items()):
            print(f"  speedup {name}: {ratio}x vs {name}-naive")
        if written is not None:
            print(f"  report -> {written}")
        if args.freeze:
            print(f"  baseline -> {args.freeze}")
        if verdict is not None:
            print(f"  gate {verdict.baseline_name}: "
                  f"{len(verdict.failures)} failure(s)")
            for failure in verdict.failures[:20]:
                print(f"    FAIL [{failure.kind}] {failure.key}: {failure.detail}")
            if len(verdict.failures) > 20:
                print(f"    ... and {len(verdict.failures) - 20} more (use --json)")
            print("  " + ("passed" if verdict.passed else "FAILED"))
        elif trend_failures:
            for failure in trend_failures:
                print(f"  FAIL [{failure.kind}] {failure.key}: {failure.detail}")
    if verdict is not None:
        return 0 if verdict.passed else 1
    return 1 if trend_failures else 0


def _bench_trends(ledger: str, report: dict):
    """Append this run's per-benchmark p95 points and check each series.

    Returns the (possibly empty) list of trend
    :class:`~repro.results.baseline.CheckFailure` entries, or ``None``
    after printing an error (exit 2).
    """
    from repro.errors import StoreError
    from repro.results.baseline import CheckFailure
    from repro.store import (
        DEFAULT_WINDOW, append_point, bench_point, bench_trend_key,
        load_points, regressed, series,
    )

    failures = []
    try:
        key = bench_trend_key(report["suite"], report["scale"])
        points = load_points(ledger)
        for name in report["suite"]:
            p95 = report["results"][name]["wall_seconds"]["p95"]
            prior = series(points, kind="bench", key=key, name=name,
                           metric="wall_p95_seconds")
            append_point(ledger, bench_point(key=key, name=name,
                                             wall_p95_seconds=p95))
            values = prior + [p95]
            if regressed(values):
                tail = values[-(DEFAULT_WINDOW + 1):]
                failures.append(CheckFailure(
                    "trend", name,
                    f"wall p95 seconds rose {DEFAULT_WINDOW} consecutive "
                    f"comparable runs: {tail}"))
    except (StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    return failures


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ObsError, ShardError
    from repro.obs.report import render_trace_report, trace_report_data

    try:
        # Crash-tolerant read: a trace whose writer died mid-line is still
        # analyzable up to the torn tail.
        from repro.obs.events import load_partial_events

        events, _torn, _good = load_partial_events(args.events)
        if args.json:
            print(json.dumps(trace_report_data(events, top=args.top),
                             indent=2, sort_keys=True))
            return 0
        print(render_trace_report(events, top=args.top, source=args.events))
    except (ObsError, ShardError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import pathlib

    from repro.errors import ObsError
    from repro.obs.events import metrics_path
    from repro.obs.metrics import load_metrics_file, render_prometheus

    source = pathlib.Path(args.metrics)
    if not source.suffix and len(source.parts) == 1:
        # a bare name means <results-dir>/<name>.metrics.json
        source = metrics_path(args.results_dir, args.metrics)
    try:
        payload = load_metrics_file(source)
    except (ObsError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    try:
        print(render_prometheus(payload["metrics"]), end="")
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.errors import ResultsError, StoreError
    from repro.store import columnar_path, compact, read_columnar, verify

    if args.action is None:
        print("repro store: error: an action is required (compact, verify, "
              "or read)", file=sys.stderr)
        return 2
    try:
        if args.action == "compact":
            path, count = compact(args.records,
                                  compress=not args.no_compress)
            if args.json:
                print(json.dumps({"records": count, "columns": str(path)},
                                 indent=2, sort_keys=True))
            else:
                print(f"compacted {args.records}: {count} records -> {path}")
            return 0
        if args.action == "read":
            for record in read_columnar(args.columns):
                print(json.dumps(record, sort_keys=True))
            return 0
        # verify: losslessness is a gate — a stale/lossy store is exit 1.
        try:
            count = verify(args.records, args.columns)
        except StoreError as exc:
            if args.json:
                print(json.dumps({"passed": False, "error": str(exc)},
                                 indent=2, sort_keys=True))
            else:
                print(f"FAILED: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps({"passed": True, "records": count},
                             indent=2, sort_keys=True))
        else:
            print(f"verified {args.records}: {count} records round-trip "
                  "byte-identical")
        return 0
    except (ResultsError, OSError) as exc:  # unreadable/schema-invalid input
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _serve_url(args: argparse.Namespace) -> str:
    import os

    from repro.serve.client import DEFAULT_URL

    return args.url or os.environ.get("REPRO_SERVE_URL") or DEFAULT_URL


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.serve.http import DEFAULT_HOST, DEFAULT_PORT, ReproServer

    host = DEFAULT_HOST if args.host is None else args.host
    port = DEFAULT_PORT if args.port is None else args.port
    try:
        server = ReproServer(
            args.root, host=host, port=port, workers=args.workers,
            queue_limit=args.queue_limit, executor=args.executor,
            jobs=args.jobs, shard_timeout=args.shard_timeout,
            retries=args.retries,
        )
    except (ReproError, OSError) as exc:  # bad pool size, unwritable root
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def banner() -> None:
        # flush: subprocess tests parse this line for the bound port
        print(f"repro serve: listening on http://{server.host}:{server.port} "
              f"(root: {args.root}, workers: {args.workers}, "
              f"executor: {args.executor})", flush=True)

    try:
        asyncio.run(server.run_until_interrupted(ready=banner))
    except OSError as exc:  # bind failure: port in use, bad host
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # Ctrl-C before the signal handler is live
        return 130
    print("repro serve: stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import pathlib

    from repro.errors import QueueFull, ServeError
    from repro.serve.client import ServeClient

    # A path-shaped argument is an inline spec; anything else is a
    # builtin campaign name the daemon resolves against its registry.
    source = pathlib.Path(args.campaign)
    name, spec = args.campaign, None
    if source.suffix == ".json" or source.exists():
        try:
            spec = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            print(f"error: cannot read spec {args.campaign}: {exc}",
                  file=sys.stderr)
            return 2
        name = None
    try:
        client = ServeClient(_serve_url(args))
        job = client.submit(
            name, spec=spec, shards=args.shards, priority=args.priority,
            executor=args.executor, jobs=args.jobs,
            use_cache=not args.no_cache,
        )
    except QueueFull as exc:  # a full queue is a retryable domain refusal
        print(f"queue full: {exc} (retry in {exc.retry_after:.0f}s)",
              file=sys.stderr)
        return 1
    except ServeError as exc:  # bad submission or no daemon at --url
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.follow:
        return _follow(client, job.id, as_json=args.json)
    if args.json:
        print(json.dumps(job.view, indent=2, sort_keys=True))
        return 0
    print(f"submitted {job.id}: {job.view['name']} x{job.view['shards']} "
          f"shard(s), priority {job.view['priority']} -> {client.url}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve.client import ServeClient

    try:
        jobs = ServeClient(_serve_url(args)).jobs()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    rows = [[j["id"], j["name"], j["state"], j["priority"],
             f"{len(j['shards_done'])}/{j['shards']}", j["records"]]
            for j in jobs]
    print(format_table(
        f"{len(jobs)} job(s)",
        ["id", "campaign", "state", "priority", "shards", "records"], rows,
    ))
    return 0


def _follow(client: Any, job_id: str, *, as_json: bool) -> int:
    """Poll a job to a terminal state, printing progress transitions."""
    import time

    from repro.errors import ServeError
    from repro.serve.store import TERMINAL_STATES

    last = None
    while True:
        view = client.job(job_id)
        progress = view.get("progress") or {}
        line = (f"{job_id}: {view['state']}  "
                f"shards {len(view['shards_done'])}/{view['shards']}  "
                f"records {progress.get('records', 0)}"
                f"/{progress.get('total', 0) or '?'}")
        if not as_json and line != last:
            print(line, flush=True)
            last = line
        if view["state"] in TERMINAL_STATES:
            break
        time.sleep(0.2)
    return _job_epilogue(view, as_json=as_json)


def _job_epilogue(view: dict[str, Any], *, as_json: bool) -> int:
    """Final job view -> output + exit code (0 done, 1 failed/cancelled)."""
    if as_json:
        print(json.dumps(view, indent=2, sort_keys=True))
    else:
        if view["state"] == "done" and view.get("jsonl"):
            print(f"  records -> {view['jsonl']}")
        if view.get("error"):
            print(f"  error: {view['error']}")
    return 0 if view["state"] == "done" else 1


def _cmd_job(args: argparse.Namespace) -> int:
    from repro.errors import JobNotFound, ServeError
    from repro.serve.client import ServeClient
    from repro.serve.store import TERMINAL_STATES

    client = ServeClient(_serve_url(args))
    try:
        if args.cancel:
            view = client.cancel(args.id)
        elif args.follow:
            return _follow(client, args.id, as_json=args.json)
        else:
            view = client.job(args.id)
    except JobNotFound as exc:  # a typo'd ID is usage, like a bad flag
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(view, indent=2, sort_keys=True))
        return 0 if view["state"] not in ("failed", "cancelled") else 1
    progress = view.get("progress") or {}
    print(f"{view['id']}: {view['name']}  state={view['state']}  "
          f"priority={view['priority']}  "
          f"shards {len(view['shards_done'])}/{view['shards']}  "
          f"records {progress.get('records', view.get('records', 0))}"
          f"/{progress.get('total', 0) or '?'}")
    if view["state"] in TERMINAL_STATES:
        return _job_epilogue(view, as_json=False)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro EXP-T5` / `all` mean `experiment <id>`.
    # Only experiment-shaped tokens get the shim — anything else unknown
    # must fall through to argparse's invalid-choice usage error.
    if argv and (argv[0] == "all" or argv[0].startswith("EXP")):
        argv.insert(0, "experiment")

    parser = _build_parser()
    if not argv:
        parser.print_usage(sys.stderr)
        print("repro: error: a subcommand is required", file=sys.stderr)
        return 2
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help (0) and usage errors (2); callers of
        # main() get a return code either way, never an exception.
        return int(exc.code) if exc.code is not None else 0
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "job":
        return _cmd_job(args)
    return _cmd_baseline(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
