"""Compact columnar encoding of campaign record files.

One ``<name>.columns`` file sits next to the canonical ``<name>.jsonl``
(DESIGN.md §3) and holds the same records decomposed into per-column
binary pages: int64 arrays for the counters, bitmaps for the booleans, a
tri-state byte column for ``result.exact``, offset-indexed UTF-8 blobs
for the strings, and canonical-JSON blobs for the open-schema sections
(``family_params`` / ``protocol_params`` / ``spec.faults`` / ``timing``).
Readers that only need a few columns (trend metrics, the bit-count
sketches) touch a few contiguous pages instead of parsing every JSON
object, and the whole body deflates well because like bytes sit together.

The format is stdlib-only and deterministic:

* header — ``RCOL`` magic, ``u16`` version, ``u16`` flags (bit 0 = the
  body is zlib-deflated), ``u64`` record count, ``u16`` column count;
* directory — per column: ``u16`` name length, UTF-8 name, ``u8`` kind,
  ``u64`` payload length;
* body — the column payloads concatenated in directory order,
  deflated as a whole when flag bit 0 is set (``zlib``, not ``gzip``:
  no mtime byte, so identical records give identical files).

Losslessness is the contract, not an aspiration: the JSON columns store
each value's *canonical* dump (sorted keys), and re-serializing a decoded
record with ``json.dumps(..., sort_keys=True)`` reproduces the original
canonical JSONL line byte for byte — :func:`verify` checks exactly that,
and the round-trip test pins it.  Anything the codec cannot represent
(an integer outside int64, a string page past 4 GiB) raises
:class:`~repro.errors.StoreError` at write time; the canonical JSONL is
never the artifact at risk.

All read-side failures — missing file, bad magic, newer version, unknown
flags, a truncated directory or body — raise
:class:`~repro.errors.StoreError` with the offending path.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import tempfile
import zlib
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import StoreError

__all__ = [
    "COLUMNAR_VERSION",
    "COLUMNAR_SUFFIX",
    "columnar_path",
    "encode_columnar",
    "decode_columnar",
    "write_columnar",
    "read_columnar",
    "read_column",
    "iter_columnar",
    "compact",
    "verify",
]

COLUMNAR_VERSION = 1

#: Suffix of the columnar sibling: ``results/<name>.jsonl`` → ``<name>.columns``.
COLUMNAR_SUFFIX = ".columns"

_MAGIC = b"RCOL"
_FLAG_DEFLATE = 0x0001
_KNOWN_FLAGS = _FLAG_DEFLATE
_HEADER = struct.Struct(">4sHHQH")
_DIR_NAME = struct.Struct(">H")
_DIR_META = struct.Struct(">BQ")

# Column kinds.
_INT = 0        # int64 big-endian array
_NULL_INT = 1   # presence bitmap + int64 array (zeros where null)
_BOOL = 2       # bitmap
_TRI = 3        # one byte per row: 0=null, 1=false, 2=true
_STR = 4        # u32 cumulative end offsets + UTF-8 blob
_JSON = 5       # string layout; values are canonical JSON dumps

#: The fixed record schema as columns: ``(name, kind, path)`` where
#: ``path`` is the key chain into the record dict.  This table IS the
#: file layout — reordering or retyping an entry is a format change and
#: must bump :data:`COLUMNAR_VERSION`.  Open-schema sections (params,
#: fault spec, timing) ride as canonical-JSON columns so int-vs-float
#: spellings survive the round trip untouched.
_COLUMNS: tuple[tuple[str, int, tuple[str, ...]], ...] = (
    ("spec_version", _INT, ("spec_version",)),
    ("cached", _BOOL, ("cached",)),
    ("spec.scenario", _STR, ("spec", "scenario")),
    ("spec.family", _STR, ("spec", "family")),
    ("spec.n", _INT, ("spec", "n")),
    ("spec.seed", _INT, ("spec", "seed")),
    ("spec.protocol", _STR, ("spec", "protocol")),
    ("spec.family_params", _JSON, ("spec", "family_params")),
    ("spec.protocol_params", _JSON, ("spec", "protocol_params")),
    ("spec.budget_bits", _NULL_INT, ("spec", "budget_bits")),
    ("spec.shuffle_delivery", _BOOL, ("spec", "shuffle_delivery")),
    ("spec.faults", _JSON, ("spec", "faults")),
    ("result.status", _STR, ("result", "status")),
    ("result.output_kind", _STR, ("result", "output_kind")),
    ("result.output_digest", _STR, ("result", "output_digest")),
    ("result.exact", _TRI, ("result", "exact")),
    ("result.graph_n", _INT, ("result", "graph_n")),
    ("result.graph_m", _INT, ("result", "graph_m")),
    ("result.max_message_bits", _INT, ("result", "max_message_bits")),
    ("result.total_message_bits", _INT, ("result", "total_message_bits")),
    ("result.faults.dropped", _INT, ("result", "faults", "dropped")),
    ("result.faults.duplicated", _INT, ("result", "faults", "duplicated")),
    ("result.faults.flipped", _INT, ("result", "faults", "flipped")),
    ("result.error", _STR, ("result", "error")),
    ("timing", _JSON, ("timing",)),
)


def columnar_path(jsonl_path: str | pathlib.Path) -> pathlib.Path:
    """The columnar sibling of a records file (``.jsonl`` → ``.columns``)."""
    return pathlib.Path(jsonl_path).with_suffix(COLUMNAR_SUFFIX)


def _get(record: Mapping, path: tuple[str, ...]):
    value = record
    for key in path:
        value = value[key]
    return value


def _bitmap(bits: list[bool]) -> bytes:
    out = bytearray((len(bits) + 7) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def _unbitmap(data: bytes, count: int) -> list[bool]:
    return [bool(data[i >> 3] & (1 << (i & 7))) for i in range(count)]


def _pack_ints(name: str, values: list[int]) -> bytes:
    try:
        return struct.pack(f">{len(values)}q", *values)
    except struct.error as exc:
        raise StoreError(
            f"column {name}: value outside int64 range ({exc}); "
            "the canonical JSONL remains authoritative"
        ) from None


def _pack_strings(name: str, values: list[str]) -> bytes:
    blob = bytearray()
    offsets = bytearray()
    for value in values:
        blob += value.encode("utf-8")
        if len(blob) > 0xFFFFFFFF:
            raise StoreError(f"column {name}: string page exceeds 4 GiB")
        offsets += struct.pack(">I", len(blob))
    return bytes(offsets) + bytes(blob)


def _unpack_strings(name: str, payload: bytes, count: int,
                    *, where: str) -> list[str]:
    index_len = 4 * count
    if len(payload) < index_len:
        raise StoreError(f"{where}: column {name} offset index is truncated")
    ends = struct.unpack(f">{count}I", payload[:index_len]) if count else ()
    blob = payload[index_len:]
    out: list[str] = []
    start = 0
    for end in ends:
        if end < start or end > len(blob):
            raise StoreError(f"{where}: column {name} has a corrupt offset")
        out.append(blob[start:end].decode("utf-8"))
        start = end
    return out


def _encode_column(name: str, kind: int, values: list) -> bytes:
    if kind == _INT:
        return _pack_ints(name, values)
    if kind == _NULL_INT:
        present = [v is not None for v in values]
        return _bitmap(present) + _pack_ints(
            name, [v if v is not None else 0 for v in values]
        )
    if kind == _BOOL:
        return _bitmap(values)
    if kind == _TRI:
        return bytes(0 if v is None else 2 if v else 1 for v in values)
    if kind == _STR:
        return _pack_strings(name, values)
    if kind == _JSON:
        return _pack_strings(
            name, [json.dumps(v, sort_keys=True) for v in values]
        )
    raise StoreError(f"column {name}: unknown kind {kind}")  # pragma: no cover


def _decode_column(name: str, kind: int, payload: bytes, count: int,
                   *, where: str) -> list:
    if kind == _INT:
        if len(payload) != 8 * count:
            raise StoreError(f"{where}: column {name} payload is truncated")
        return list(struct.unpack(f">{count}q", payload))
    if kind == _NULL_INT:
        bm = (count + 7) // 8
        if len(payload) != bm + 8 * count:
            raise StoreError(f"{where}: column {name} payload is truncated")
        present = _unbitmap(payload[:bm], count)
        ints = struct.unpack(f">{count}q", payload[bm:]) if count else ()
        return [v if p else None for p, v in zip(present, ints)]
    if kind == _BOOL:
        if len(payload) != (count + 7) // 8:
            raise StoreError(f"{where}: column {name} payload is truncated")
        return _unbitmap(payload, count)
    if kind == _TRI:
        if len(payload) != count:
            raise StoreError(f"{where}: column {name} payload is truncated")
        if any(b > 2 for b in payload):
            raise StoreError(f"{where}: column {name} holds a byte outside 0..2")
        return [None if b == 0 else b == 2 for b in payload]
    if kind == _STR:
        return _unpack_strings(name, payload, count, where=where)
    if kind == _JSON:
        return [
            json.loads(s)
            for s in _unpack_strings(name, payload, count, where=where)
        ]
    raise StoreError(f"{where}: column {name} has unknown kind {kind}")


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    # Same discipline as shard._atomic_write_text: readers only ever see
    # the old bytes or the new bytes.
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def encode_columnar(
    records: Iterable[Mapping], *, compress: bool = True
) -> bytes:
    """Encode validated records to columnar bytes (the write-path core).

    ``records`` must already satisfy the record schema (the engine and
    :func:`repro.results.iter_records` both guarantee that); the codec
    trusts the shape and only rejects values it cannot *represent*.
    """
    rows = list(records)
    payloads = []
    for name, kind, key_path in _COLUMNS:
        payloads.append(
            _encode_column(name, kind, [_get(r, key_path) for r in rows])
        )
    directory = bytearray()
    for (name, kind, _), payload in zip(_COLUMNS, payloads):
        encoded = name.encode("utf-8")
        directory += _DIR_NAME.pack(len(encoded)) + encoded
        directory += _DIR_META.pack(kind, len(payload))
    body = b"".join(payloads)
    flags = 0
    if compress:
        flags |= _FLAG_DEFLATE
        body = zlib.compress(body, 6)
    header = _HEADER.pack(_MAGIC, COLUMNAR_VERSION, flags, len(rows),
                          len(_COLUMNS))
    return header + bytes(directory) + body


def write_columnar(
    path: str | pathlib.Path,
    records: Iterable[Mapping],
    *,
    compress: bool = True,
) -> pathlib.Path:
    """Atomically write validated records as one columnar file."""
    path = pathlib.Path(path)
    _atomic_write_bytes(path, encode_columnar(records, compress=compress))
    return path


def read_columnar(path: str | pathlib.Path) -> list[dict]:
    """Decode one columnar file back into record dicts.

    The inverse of :func:`write_columnar`:
    ``json.dumps(record, sort_keys=True)`` over each returned dict
    reproduces the canonical JSONL lines the file was compacted from.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise StoreError(f"columnar file {path} does not exist")
    return decode_columnar(path.read_bytes(), where=path.name)


def decode_columnar(data: bytes, *, where: str = "<bytes>") -> list[dict]:
    """Decode columnar bytes back into record dicts (the read-path core)."""
    if len(data) < _HEADER.size:
        raise StoreError(f"{where}: truncated header "
                         f"({len(data)} < {_HEADER.size} bytes)")
    count, columns, body = _parse_frame(data, where)

    offset = 0
    decoded: list[list] = []
    for name, kind, payload_len in columns:
        decoded.append(
            _decode_column(name, kind, body[offset:offset + payload_len],
                           count, where=where)
        )
        offset += payload_len

    records: list[dict] = []
    for i in range(count):
        record: dict = {}
        for (name, _kind, key_path), values in zip(_COLUMNS, decoded):
            target = record
            for key in key_path[:-1]:
                target = target.setdefault(key, {})
            target[key_path[-1]] = values[i]
        records.append(record)
    return records


def _parse_frame(
    data: bytes, where: str
) -> tuple[int, list[tuple[str, int, int]], bytes]:
    """Validate header + directory; return ``(count, columns, flat body)``."""
    magic, version, flags, count, ncols = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise StoreError(f"{where}: bad magic {magic!r} (not a .columns file)")
    if version > COLUMNAR_VERSION:
        raise StoreError(
            f"{where}: columnar version {version} is newer than this reader "
            f"(understands <= {COLUMNAR_VERSION})"
        )
    if flags & ~_KNOWN_FLAGS:
        raise StoreError(f"{where}: unknown flag bits 0x{flags:04x}")

    pos = _HEADER.size
    columns: list[tuple[str, int, int]] = []
    for _ in range(ncols):
        if pos + _DIR_NAME.size > len(data):
            raise StoreError(f"{where}: truncated column directory")
        (name_len,) = _DIR_NAME.unpack_from(data, pos)
        pos += _DIR_NAME.size
        if pos + name_len + _DIR_META.size > len(data):
            raise StoreError(f"{where}: truncated column directory")
        name = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        kind, payload_len = _DIR_META.unpack_from(data, pos)
        pos += _DIR_META.size
        columns.append((name, kind, payload_len))

    body = data[pos:]
    if flags & _FLAG_DEFLATE:
        try:
            body = zlib.decompress(body)
        except zlib.error as exc:
            raise StoreError(f"{where}: corrupt deflated body: {exc}") from None
    if len(body) != sum(c[2] for c in columns):
        raise StoreError(
            f"{where}: body holds {len(body)} byte(s) but the directory "
            f"promises {sum(c[2] for c in columns)}"
        )
    expected = [(name, kind) for name, kind, _ in _COLUMNS]
    if [(name, kind) for name, kind, _ in columns] != expected:
        raise StoreError(
            f"{where}: column directory does not match the v{COLUMNAR_VERSION} "
            "record schema"
        )
    return count, columns, body


def read_column(path: str | pathlib.Path, column: str) -> list:
    """Decode ONE named column — the point of storing columns at all.

    A trend metric or sketch feed needs a single field per record;
    this slices that column's contiguous page out of the body and decodes
    it alone, skipping every byte of the other 24 pages.  Unknown column
    names raise :class:`~repro.errors.StoreError` listing what exists.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise StoreError(f"columnar file {path} does not exist")
    data = path.read_bytes()
    where = path.name
    count, columns, body = _parse_frame(data, where)
    offset = 0
    for name, kind, payload_len in columns:
        if name == column:
            return _decode_column(
                name, kind, body[offset:offset + payload_len], count,
                where=where,
            )
        offset += payload_len
    raise StoreError(
        f"{where}: no column {column!r} "
        f"(columns: {', '.join(n for n, _, _ in columns)})"
    )


def iter_columnar(path: str | pathlib.Path) -> Iterator[dict]:
    """Iterate decoded records (columnar decode is batch; this is sugar)."""
    yield from read_columnar(path)


def compact(
    jsonl_path: str | pathlib.Path, *, compress: bool = True
) -> tuple[pathlib.Path, int]:
    """Compact a canonical records file into its ``.columns`` sibling.

    Returns ``(columns_path, record_count)``.  The JSONL stays in place
    and stays authoritative; the columnar file is a derived artifact a
    re-merge simply overwrites.
    """
    from repro.results.records import load_records

    jsonl_path = pathlib.Path(jsonl_path)
    records = load_records(jsonl_path)
    out = columnar_path(jsonl_path)
    write_columnar(out, records, compress=compress)
    return out, len(records)


def verify(
    jsonl_path: str | pathlib.Path,
    columns_path: str | pathlib.Path | None = None,
) -> int:
    """Prove the columnar sibling lossless against its JSONL; return count.

    Compares the canonical line bytes of every decoded record against the
    JSONL's non-blank lines, in order.  Any difference — count or content —
    raises :class:`~repro.errors.StoreError` naming the first divergent
    record.
    """
    jsonl_path = pathlib.Path(jsonl_path)
    if columns_path is None:
        columns_path = columnar_path(jsonl_path)
    if not jsonl_path.exists():
        raise StoreError(f"records file {jsonl_path} does not exist")
    lines = [
        line for line in jsonl_path.read_text().splitlines() if line.strip()
    ]
    decoded = read_columnar(columns_path)
    if len(lines) != len(decoded):
        raise StoreError(
            f"{pathlib.Path(columns_path).name} holds {len(decoded)} "
            f"record(s) but {jsonl_path.name} holds {len(lines)}"
        )
    for i, (line, record) in enumerate(zip(lines, decoded), start=1):
        if json.dumps(record, sort_keys=True) != line:
            raise StoreError(
                f"record {i}: columnar decode differs from "
                f"{jsonl_path.name} — the store is stale or corrupt; "
                "re-run compaction"
            )
    return len(decoded)
