"""repro.store — the columnar record store and the cross-campaign trend ledger.

The results layer at fleet scale (DESIGN.md §11).  Canonical JSONL stays
the source of truth; this package adds two derived, cheaper views:

* :mod:`~repro.store.columnar` — ``<name>.columns``, a compact per-column
  binary sibling of each merged campaign file (stdlib-only, deflate-
  optional, provably lossless: decode + canonical dump reproduces the
  JSONL bytes exactly);
* :mod:`~repro.store.trends` — ``trends.jsonl``, an append-only ledger of
  per-run metric points, content-hash keyed so a series only chains
  comparable runs, consulted by ``repro bench --gate --trends`` and
  ``repro report --trend`` to fail on trajectories ("p95 regressed three
  consecutive runs"), not just one frozen pin.

:func:`compact_campaign` is the merge hook: after
:func:`repro.engine.shard.merge_shards` publishes ``<name>.jsonl``, it
writes the columnar sibling and appends the campaign's trend point in one
call (``merge_shards(..., compact=True)`` / ``repro merge --compact``).

Everything here raises :class:`~repro.errors.StoreError` and is pure
stdlib.
"""

from __future__ import annotations

import pathlib

from repro.store.columnar import (
    COLUMNAR_SUFFIX,
    COLUMNAR_VERSION,
    columnar_path,
    compact,
    decode_columnar,
    encode_columnar,
    iter_columnar,
    read_column,
    read_columnar,
    verify,
    write_columnar,
)
from repro.store.trends import (
    DEFAULT_WINDOW,
    TREND_VERSION,
    TRENDS_FILENAME,
    append_point,
    bench_point,
    bench_trend_key,
    campaign_point,
    campaign_trend_key,
    load_points,
    regressed,
    series,
    trends_path,
    validate_point,
)

__all__ = [
    "COLUMNAR_VERSION",
    "COLUMNAR_SUFFIX",
    "columnar_path",
    "encode_columnar",
    "decode_columnar",
    "write_columnar",
    "read_columnar",
    "read_column",
    "iter_columnar",
    "compact",
    "verify",
    "TREND_VERSION",
    "TRENDS_FILENAME",
    "DEFAULT_WINDOW",
    "trends_path",
    "validate_point",
    "append_point",
    "load_points",
    "series",
    "regressed",
    "bench_trend_key",
    "campaign_trend_key",
    "campaign_point",
    "bench_point",
    "compact_campaign",
]


def compact_campaign(
    results_dir: str | pathlib.Path, name: str
) -> tuple[pathlib.Path, dict]:
    """Compact a merged campaign and append its trend point.

    Expects ``<results_dir>/<name>.jsonl`` and its checkpoint manifest to
    exist (i.e. run *after* :func:`~repro.engine.shard.merge_shards`).
    Returns ``(columns_path, trend_point)``.
    """
    from repro.engine.shard import ShardManifest
    from repro.results.records import load_records

    results_dir = pathlib.Path(results_dir)
    manifest = ShardManifest.load(results_dir, name)
    jsonl = results_dir / f"{name}.jsonl"
    records = load_records(jsonl)
    columns = write_columnar(columnar_path(jsonl), records)
    point = campaign_point(
        name=name, spec_hashes=manifest.spec_hashes, records=records
    )
    append_point(trends_path(results_dir), point)
    return columns, point
