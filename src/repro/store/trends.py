"""The cross-campaign trend ledger: ``trends.jsonl``.

A frozen baseline answers "is this run worse than the pin?"; it cannot
answer "has p95 been creeping up for three releases?".  The trend ledger
closes that gap: every gated bench run and every compacted campaign merge
appends one *point* per metric source to an append-only
``<results_dir>/trends.jsonl``, and the gates (``repro bench --gate
--trends``, ``repro report --trend``) read the series back and fail on
trajectories, not just point regressions.

A point is one canonical-JSON line::

    {"trend_version": 1, "kind": "bench" | "campaign",
     "key": "<content hash of what makes runs comparable>",
     "name": "<benchmark or campaign name>",
     "metrics": {"<metric>": <number>, ...}}

``key`` is a *content* hash — the sorted benchmark names + scale for a
bench suite, the manifest's spec-hash list for a campaign — so a series
only ever chains runs that measured the same thing; edit the grid or the
suite and the series starts fresh instead of comparing apples to oranges.

The file shares the fsync-per-line durability contract of the shard
streams: a crash tears at most the final line, :func:`load_points`
drops a torn tail silently, and corruption anywhere else raises
:class:`~repro.errors.StoreError`.

The regression rule (:func:`regressed`) is deliberately simple and
deliberately about *trajectory*: with the current run appended, the last
``window + 1`` values must be strictly increasing — "p95 regressed
``window`` consecutive runs".  One noisy spike does not trip it; a
monotone climb does.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ShardError, StoreError
from repro.results.records import check_mapping

__all__ = [
    "TREND_VERSION",
    "TRENDS_FILENAME",
    "DEFAULT_WINDOW",
    "trends_path",
    "validate_point",
    "append_point",
    "load_points",
    "series",
    "regressed",
    "bench_trend_key",
    "campaign_trend_key",
    "campaign_point",
    "bench_point",
]

TREND_VERSION = 1
TRENDS_FILENAME = "trends.jsonl"

#: Consecutive strictly-increasing deltas that constitute a regression.
DEFAULT_WINDOW = 3

_POINT_FIELDS: dict[str, tuple[type, ...]] = {
    "trend_version": (int,),
    "kind": (str,),
    "key": (str,),
    "name": (str,),
    "metrics": (dict,),
}

_KINDS = ("bench", "campaign")


def trends_path(results_dir: str | pathlib.Path) -> pathlib.Path:
    """``<results_dir>/trends.jsonl`` — one ledger per results directory."""
    return pathlib.Path(results_dir) / TRENDS_FILENAME


def validate_point(point: Mapping, *, where: str = "trend point") -> dict:
    """Check one ledger entry; returns it as a plain dict."""
    point = dict(point)
    check_mapping(point, _POINT_FIELDS, "point", where, error=StoreError)
    if point["trend_version"] > TREND_VERSION:
        raise StoreError(
            f"{where}: trend_version {point['trend_version']} is newer than "
            f"this reader (understands <= {TREND_VERSION})"
        )
    if point["kind"] not in _KINDS:
        raise StoreError(
            f"{where}: kind must be one of {_KINDS}, got {point['kind']!r}"
        )
    if not point["metrics"]:
        raise StoreError(f"{where}: metrics must be non-empty")
    for name, value in point["metrics"].items():
        if not isinstance(name, str):
            raise StoreError(f"{where}: metric names must be strings")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StoreError(
                f"{where}: metrics.{name} must be a number, "
                f"got {type(value).__name__}"
            )
    return point


def append_point(
    path: str | pathlib.Path, point: Mapping
) -> pathlib.Path:
    """Durably append one validated point (one line, one flush, one fsync)."""
    path = pathlib.Path(path)
    point = validate_point(point)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(point, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return path


def load_points(path: str | pathlib.Path) -> list[dict]:
    """Read the ledger; missing file → empty, torn tail → dropped.

    Mid-stream corruption raises :class:`~repro.errors.StoreError` — an
    append-only ledger with a bad line in the middle was hand-edited or
    hit real disk corruption, and silently skipping points would bend the
    very series the gate trusts.
    """
    from repro.engine.shard import scan_partial_lines

    path = pathlib.Path(path)
    try:
        points, _torn, _good = scan_partial_lines(
            path,
            lambda raw: validate_point(json.loads(raw.decode())),
            what="trend point",
        )
    except ShardError as exc:
        raise StoreError(str(exc)) from None
    return points


def series(
    points: Iterable[Mapping],
    *,
    kind: str,
    key: str,
    name: str,
    metric: str,
) -> list[float]:
    """One metric's values across comparable runs, in ledger order."""
    out: list[float] = []
    for point in points:
        if (point["kind"] == kind and point["key"] == key
                and point["name"] == name and metric in point["metrics"]):
            out.append(point["metrics"][metric])
    return out


def regressed(values: Sequence[float], *, window: int = DEFAULT_WINDOW) -> bool:
    """True when the last ``window`` deltas are all strictly increasing.

    Needs at least ``window + 1`` points — a young series cannot regress.
    """
    if window < 1:
        raise StoreError(f"trend window must be >= 1, got {window}")
    if len(values) < window + 1:
        return False
    tail = values[-(window + 1):]
    return all(b > a for a, b in zip(tail, tail[1:]))


def bench_trend_key(names: Iterable[str], scale: float) -> str:
    """Content key for a bench suite: same benches + scale ⇒ same series."""
    payload = json.dumps(
        {"names": sorted(names), "scale": scale}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def campaign_trend_key(spec_hashes: Sequence[str]) -> str:
    """Content key for a campaign grid: same specs ⇒ same series."""
    return hashlib.sha256("\n".join(spec_hashes).encode()).hexdigest()[:16]


def bench_point(
    *, key: str, name: str, wall_p95_seconds: float
) -> dict:
    """The ledger entry for one benchmark of one gated suite run."""
    return {
        "trend_version": TREND_VERSION,
        "kind": "bench",
        "key": key,
        "name": name,
        "metrics": {"wall_p95_seconds": wall_p95_seconds},
    }


def campaign_point(
    *, name: str, spec_hashes: Sequence[str], records: Iterable[Mapping]
) -> dict:
    """The ledger entry for one merged campaign.

    Metrics are the campaign-wide record count and the p95 / mean of
    ``result.max_message_bits`` — the paper's headline number, and the
    one whose slow creep across re-runs a single frozen baseline misses.
    """
    from repro.results.aggregate import RunningStats

    bits = RunningStats()
    for record in records:
        bits.feed(record["result"]["max_message_bits"])
    if bits.count == 0:
        raise StoreError(f"campaign {name!r}: no records to summarize")
    stats = bits.stats()
    return {
        "trend_version": TREND_VERSION,
        "kind": "campaign",
        "key": campaign_trend_key(spec_hashes),
        "name": name,
        "metrics": {
            "records": stats["count"],
            "max_message_bits_mean": stats["mean"],
            "max_message_bits_p95": stats["p95"],
        },
    }
