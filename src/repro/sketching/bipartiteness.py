"""One-round randomized bipartiteness — the paper's *other* open question.

Conclusion: "Another natural question is whether one can find a frugal
one-round protocol deciding if a graph is bipartite."  The same linear-
sketching technology that answers connectivity answers this too, via the
classical **bipartite double cover** reduction:

    G is bipartite  ⟺  cc(DC(G)) = 2 · cc(G)

where ``DC(G)`` has vertices ``{v, v' : v ∈ V}`` and edges
``{u, v'}, {u', v}`` for every edge ``{u, v}`` of G.  (Each connected
component of G lifts to two components when — and only when — it is
bipartite; an odd cycle glues its lift into one.)

Each node ``v`` knows *its own* double-cover edges (they are determined by
``N(v)``), so it can sketch both the plain incidence vector (for ``cc(G)``)
and the double-cover incidence vectors of ``v`` and ``v'`` (for
``cc(DC(G))``) locally — three AGM sketch banks, still ``O(log³ n)`` bits,
one round, public coins.  The referee runs Borůvka twice and compares
component counts.

Error is one-sided in the *safe* direction for each sub-count (sketch
failures only leave components unmerged, i.e. over-count), so the derived
answer can err both ways but with small probability; accuracy is measured
in EXP-BIP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.writer import BitWriter
from repro.errors import DecodeError, SketchFailure
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol
from repro.sketching import kernels
from repro.sketching.connectivity import (
    _UnionFind,
    _unzigzag,
    _zigzag,
    edge_index,
    edge_pair,
    incidence_updates,
)
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams
from repro.registry import register

__all__ = ["SketchBipartitenessProtocol", "BipartitenessReport", "double_cover_components"]


@dataclass(frozen=True)
class BipartitenessReport:
    """Outcome of one bipartiteness round."""

    bipartite: bool
    n: int
    components_g: int
    components_double_cover: int
    bits_per_node: int


def _dc_vertex(v: int, primed: bool, n: int) -> int:
    """Double-cover vertex numbering: v -> v, v' -> v + n (IDs 1..2n)."""
    return v + n if primed else v


def double_cover_components(n: int, edges) -> int:
    """Reference count of DC(G) components (used by tests, not the protocol)."""
    uf = _UnionFind(2 * n)
    for u, v in edges:
        uf.union(u, v + n)
        uf.union(u + n, v)
    return len({uf.find(x) for x in range(1, 2 * n + 1)})


class SketchBipartitenessProtocol(DecisionProtocol):
    """One-round randomized bipartiteness via double-cover component counting."""

    def __init__(self, seed: int = 0, rounds: int | None = None) -> None:
        self.seed = seed
        self._rounds_override = rounds
        self.name = f"sketch-bipartiteness(seed={seed})"

    # ------------------------------------------------------------------ #
    # shared parameters: one bank over G, one bank over DC(G)
    # ------------------------------------------------------------------ #

    def rounds_for(self, n: int) -> int:
        if self._rounds_override is not None:
            return self._rounds_override
        return 2 * max(1, (2 * n - 1).bit_length()) + 2

    def _params(self, n: int, which: str, r: int) -> L0SamplerParams:
        m = max(1, (2 * n) * (2 * n - 1) // 2) if which == "dc" else max(1, n * (n - 1) // 2)
        return L0SamplerParams.derive(m, self.seed, n, r, 0 if which == "g" else 1)

    def _widths(self, n: int, which: str) -> tuple[int, int]:
        size = 2 * n if which == "dc" else n
        m = max(1, size * (size - 1) // 2)
        return (2 * size).bit_length(), (2 * size * m).bit_length()

    # ------------------------------------------------------------------ #
    # local phase
    # ------------------------------------------------------------------ #

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        if n < 2:
            return Message.empty()
        rounds = self.rounds_for(n)
        fields: list[tuple[int, int]] = []
        # bank 1: plain incidence sketches of i in G.  The update stream is
        # round-independent: build it once, batch it into every sampler.
        wg0, wg1 = self._widths(n, "g")
        g_updates = incidence_updates(n, i, neighborhood)
        for r in range(rounds):
            sampler = L0Sampler(self._params(n, "g", r))
            sampler.update_many(g_updates)
            for c0, c1, c2 in sampler.counters():
                fields.append((_zigzag(c0), wg0))
                fields.append((_zigzag(c1), wg1))
                fields.append((c2, 61))
        # bank 2: DC incidence sketches of BOTH lifts of i (i and i+n)
        wd0, wd1 = self._widths(n, "dc")
        for primed in (False, True):
            me = _dc_vertex(i, primed, n)
            dc_updates = []
            for w in neighborhood:
                other = _dc_vertex(w, not primed, n)  # edges cross the lift
                if me < other:
                    dc_updates.append((edge_index(2 * n, me, other), +1))
                else:
                    dc_updates.append((edge_index(2 * n, other, me), -1))
            for r in range(rounds):
                sampler = L0Sampler(self._params(n, "dc", r))
                sampler.update_many(dc_updates)
                for c0, c1, c2 in sampler.counters():
                    fields.append((_zigzag(c0), wd0))
                    fields.append((_zigzag(c1), wd1))
                    fields.append((c2, 61))
        writer = BitWriter()
        kernels.write_fields(writer, fields)
        return Message.from_writer(writer)

    # ------------------------------------------------------------------ #
    # global phase
    # ------------------------------------------------------------------ #

    def global_(self, n: int, messages: list[Message]) -> bool:
        return self.decode_and_solve(n, messages).bipartite

    def decode_and_solve(self, n: int, messages: list[Message]) -> BipartitenessReport:
        if n <= 1:
            return BipartitenessReport(True, n, n, 2 * n, 0)
        rounds = self.rounds_for(n)
        wg0, wg1 = self._widths(n, "g")
        wd0, wd1 = self._widths(n, "dc")
        g_bank: list[list[L0Sampler]] = []     # per node, per round
        dc_bank: list[list[L0Sampler]] = []    # per DC vertex (1..2n), per round
        dc_bank = [[] for _ in range(2 * n)]
        bits = 0
        for v, msg in enumerate(messages, start=1):
            bits = max(bits, msg.bits)
            reader = msg.reader()
            try:
                per_round = []
                for r in range(rounds):
                    params = self._params(n, "g", r)
                    counters = [
                        (_unzigzag(reader.read_bits(wg0)), _unzigzag(reader.read_bits(wg1)), reader.read_bits(61))
                        for _ in range(params.levels)
                    ]
                    per_round.append(L0Sampler.from_counters(params, counters))
                g_bank.append(per_round)
                for primed in (False, True):
                    me = _dc_vertex(v, primed, n)
                    for r in range(rounds):
                        params = self._params(n, "dc", r)
                        counters = [
                            (_unzigzag(reader.read_bits(wd0)), _unzigzag(reader.read_bits(wd1)), reader.read_bits(61))
                            for _ in range(params.levels)
                        ]
                        dc_bank[me - 1].append(L0Sampler.from_counters(params, counters))
                reader.expect_exhausted()
            except Exception as exc:
                raise DecodeError(f"malformed bipartiteness sketch: {exc}") from exc

        cc_g = self._boruvka(n, rounds, lambda v, r: g_bank[v - 1][r], lambda idx: edge_pair(n, idx))
        cc_dc = self._boruvka(
            2 * n, rounds, lambda v, r: dc_bank[v - 1][r], lambda idx: edge_pair(2 * n, idx)
        )
        return BipartitenessReport(
            bipartite=cc_dc == 2 * cc_g,
            n=n,
            components_g=cc_g,
            components_double_cover=cc_dc,
            bits_per_node=bits,
        )

    @staticmethod
    def _boruvka(size: int, rounds: int, sampler_of, pair_of) -> int:
        uf = _UnionFind(size)
        components = size
        for r in range(rounds):
            if components == 1:
                break
            agg: dict[int, L0Sampler] = {}
            for v in range(1, size + 1):
                root = uf.find(v)
                s = sampler_of(v, r)
                agg[root] = agg[root].merged(s) if root in agg else s
            merged_any = False
            failures = 0
            for root, sampler in agg.items():
                try:
                    hit = sampler.sample()
                except SketchFailure:
                    failures += 1
                    continue
                if hit is None:
                    continue
                u, v = pair_of(hit[0])
                if uf.union(u, v):
                    components -= 1
                    merged_any = True
            if not merged_any and failures == 0:
                break
        return components



@register("sketch_bipartiteness", kind="protocol",
          capabilities=("decision", "sketching", "randomized"),
          summary="Bipartiteness via double-cover connectivity sketches "
                  "(randomized, one round).")
def _build_sketch_bipartiteness(n: int, sketch_seed: int = 0) -> "SketchBipartitenessProtocol":
    return SketchBipartitenessProtocol(seed=sketch_seed)
