"""L0 sampling: recover *some* nonzero coordinate of a sketched signed vector.

Subsample the coordinate universe at geometric rates: level ``ℓ`` keeps
coordinate ``e`` iff the pairwise-independent hash ``h(e) = (α·e + β) mod p``
is divisible by ``2^ℓ`` (so a ~``2^{-ℓ}`` fraction survives, and levels are
nested).  If the vector has ``s`` nonzeros, the level with ``2^ℓ ≈ s`` keeps
exactly one of them with constant probability, where the one-sparse sketch
recovers it exactly.  Querying scans all levels and returns the first
success; failure at every level is reported (not guessed), so the caller
can retry with an independent sampler.

Like its building block the sampler is linear, and all parameters are
derived from ``(seed, tags)`` public randomness so distributed parties agree.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import SketchFailure
from repro.sketching import kernels
from repro.sketching.field import MERSENNE61, derive_params_block
from repro.sketching.onesparse import OneSparseResult, OneSparseSketch, RecoveryStatus

__all__ = ["L0SamplerParams", "L0Sampler"]


@dataclass(frozen=True)
class L0SamplerParams:
    """Shared-randomness parameters of one sampler instance."""

    m: int          # coordinate universe size
    levels: int     # number of subsampling levels
    alpha: int      # level hash multiplier (nonzero mod p)
    beta: int       # level hash offset
    z: int          # fingerprint base

    @classmethod
    def derive(cls, m: int, seed: int, *tags: int) -> "L0SamplerParams":
        """Derive parameters for instance ``tags`` from the public seed.

        Deterministic in ``(m, seed, tags)``, so results are memoized:
        protocols that re-derive the same per-round parameters for every
        node (the referee does, once per node per Borůvka round) hit the
        cache after the first call.
        """
        return _derive_cached(m, seed, tags)


@lru_cache(maxsize=1 << 16)
def _derive_cached(m: int, seed: int, tags: tuple[int, ...]) -> L0SamplerParams:
    """The memoized body of :meth:`L0SamplerParams.derive` (pure function)."""
    levels = max(1, m.bit_length() + 1)
    # One batched derivation (alpha, beta, z) <-> which = 1, 2, 3 — value-
    # identical to three scalar derive_params(seed, which, *tags) calls.
    raw_alpha, raw_beta, raw_z = derive_params_block(seed, 3, *tags)
    return L0SamplerParams(
        m=m,
        levels=levels,
        alpha=raw_alpha % (MERSENNE61 - 1) + 1,
        beta=raw_beta % MERSENNE61,
        z=raw_z % (MERSENNE61 - 1) + 1,
    )


class L0Sampler:
    """A bank of nested one-sparse sketches over ``0..m-1``."""

    __slots__ = ("params", "sketches")

    def __init__(self, params: L0SamplerParams) -> None:
        self.params = params
        self.sketches = [OneSparseSketch(params.m, params.z) for _ in range(params.levels)]

    def _level_of(self, index: int) -> int:
        """Deepest level the coordinate survives to (trailing zeros of h)."""
        h = (self.params.alpha * index + self.params.beta) % MERSENNE61
        if h == 0:
            return self.params.levels - 1
        tz = (h & -h).bit_length() - 1
        return min(tz, self.params.levels - 1)

    def update(self, index: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``index`` at every level it survives to.

        Hot path: every level shares the fingerprint base ``z``, so the
        exponentiation ``z^{index+1}`` is computed once and its term fanned
        out inline across the surviving levels — counter-identical to
        calling each sketch's ``update`` (the parity suite pins this).
        """
        params = self.params
        if not 0 <= index < params.m:
            raise ValueError(f"index {index} outside 0..{params.m - 1}")
        deepest = self._level_of(index)
        term = delta % MERSENNE61 * pow(params.z, index + 1, MERSENNE61) % MERSENNE61
        idelta = index * delta
        for sketch in self.sketches[:deepest + 1]:
            sketch.c0 += delta
            sketch.c1 += idelta
            sketch.c2 = (sketch.c2 + term) % MERSENNE61

    def update_many(self, updates: "Iterable[tuple[int, int]]") -> None:
        """Apply ``(index, delta)`` pairs in one pass (batched :meth:`update`).

        Dispatches on the active kernel backend: under ``"numpy"`` the whole
        stream is fanned across levels in one vectorized pass
        (:func:`repro.sketching.kernels.l0_update_many`), counter-identical
        to the pure loop below — the parity suite pins this.
        """
        if kernels.active_kernels() != "pure":
            kernels.l0_update_many(self, updates)
            return
        for index, delta in updates:
            self.update(index, delta)

    def merged(self, other: "L0Sampler") -> "L0Sampler":
        """Linear combination (same parameters required)."""
        if other.params != self.params:
            raise ValueError("cannot merge samplers with different parameters")
        out = L0Sampler(self.params)
        out.sketches = [a.merged(b) for a, b in zip(self.sketches, other.sketches)]
        return out

    def sample(self) -> tuple[int, int] | None:
        """Return ``(index, weight)`` of some nonzero coordinate, or None for zero vectors.

        Raises :class:`SketchFailure` when the vector is (whp) nonzero but no
        level isolated a single coordinate — the caller retries with an
        independent instance.
        """
        all_zero = True
        for sketch in self.sketches:
            result: OneSparseResult = sketch.recover()
            if result.status is RecoveryStatus.ONE_SPARSE:
                return result.index, result.weight
            if result.status is RecoveryStatus.DENSE:
                all_zero = False
        if all_zero:
            return None
        raise SketchFailure("no subsampling level isolated a single coordinate")

    def counters(self) -> list[tuple[int, int, int]]:
        """Per-level counters, the serialization payload."""
        return [s.counters() for s in self.sketches]

    @classmethod
    def from_counters(
        cls, params: L0SamplerParams, counters: list[tuple[int, int, int]]
    ) -> "L0Sampler":
        """Rebuild a sampler from deserialized per-level counters."""
        if len(counters) != params.levels:
            raise ValueError(f"expected {params.levels} levels, got {len(counters)}")
        out = cls(params)
        out.sketches = [
            OneSparseSketch.from_counters(params.m, params.z, *c) for c in counters
        ]
        return out
