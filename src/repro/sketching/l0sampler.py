"""L0 sampling: recover *some* nonzero coordinate of a sketched signed vector.

Subsample the coordinate universe at geometric rates: level ``ℓ`` keeps
coordinate ``e`` iff the pairwise-independent hash ``h(e) = (α·e + β) mod p``
is divisible by ``2^ℓ`` (so a ~``2^{-ℓ}`` fraction survives, and levels are
nested).  If the vector has ``s`` nonzeros, the level with ``2^ℓ ≈ s`` keeps
exactly one of them with constant probability, where the one-sparse sketch
recovers it exactly.  Querying scans all levels and returns the first
success; failure at every level is reported (not guessed), so the caller
can retry with an independent sampler.

Like its building block the sampler is linear, and all parameters are
derived from ``(seed, tags)`` public randomness so distributed parties agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SketchFailure
from repro.sketching.field import MERSENNE61, derive_params
from repro.sketching.onesparse import OneSparseResult, OneSparseSketch, RecoveryStatus

__all__ = ["L0SamplerParams", "L0Sampler"]


@dataclass(frozen=True)
class L0SamplerParams:
    """Shared-randomness parameters of one sampler instance."""

    m: int          # coordinate universe size
    levels: int     # number of subsampling levels
    alpha: int      # level hash multiplier (nonzero mod p)
    beta: int       # level hash offset
    z: int          # fingerprint base

    @classmethod
    def derive(cls, m: int, seed: int, *tags: int) -> "L0SamplerParams":
        """Derive parameters for instance ``tags`` from the public seed."""
        levels = max(1, m.bit_length() + 1)
        alpha = derive_params(seed, 1, *tags) % (MERSENNE61 - 1) + 1
        beta = derive_params(seed, 2, *tags) % MERSENNE61
        z = derive_params(seed, 3, *tags) % (MERSENNE61 - 1) + 1
        return cls(m=m, levels=levels, alpha=alpha, beta=beta, z=z)


class L0Sampler:
    """A bank of nested one-sparse sketches over ``0..m-1``."""

    __slots__ = ("params", "sketches")

    def __init__(self, params: L0SamplerParams) -> None:
        self.params = params
        self.sketches = [OneSparseSketch(params.m, params.z) for _ in range(params.levels)]

    def _level_of(self, index: int) -> int:
        """Deepest level the coordinate survives to (trailing zeros of h)."""
        h = (self.params.alpha * index + self.params.beta) % MERSENNE61
        if h == 0:
            return self.params.levels - 1
        tz = (h & -h).bit_length() - 1
        return min(tz, self.params.levels - 1)

    def update(self, index: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``index`` at every level it survives to."""
        deepest = self._level_of(index)
        for lvl in range(deepest + 1):
            self.sketches[lvl].update(index, delta)

    def merged(self, other: "L0Sampler") -> "L0Sampler":
        """Linear combination (same parameters required)."""
        if other.params != self.params:
            raise ValueError("cannot merge samplers with different parameters")
        out = L0Sampler(self.params)
        out.sketches = [a.merged(b) for a, b in zip(self.sketches, other.sketches)]
        return out

    def sample(self) -> tuple[int, int] | None:
        """Return ``(index, weight)`` of some nonzero coordinate, or None for zero vectors.

        Raises :class:`SketchFailure` when the vector is (whp) nonzero but no
        level isolated a single coordinate — the caller retries with an
        independent instance.
        """
        all_zero = True
        for sketch in self.sketches:
            result: OneSparseResult = sketch.recover()
            if result.status is RecoveryStatus.ONE_SPARSE:
                return result.index, result.weight
            if result.status is RecoveryStatus.DENSE:
                all_zero = False
        if all_zero:
            return None
        raise SketchFailure("no subsampling level isolated a single coordinate")

    def counters(self) -> list[tuple[int, int, int]]:
        """Per-level counters, the serialization payload."""
        return [s.counters() for s in self.sketches]

    @classmethod
    def from_counters(
        cls, params: L0SamplerParams, counters: list[tuple[int, int, int]]
    ) -> "L0Sampler":
        """Rebuild a sampler from deserialized per-level counters."""
        if len(counters) != params.levels:
            raise ValueError(f"expected {params.levels} levels, got {len(counters)}")
        out = cls(params)
        out.sketches = [
            OneSparseSketch.from_counters(params.m, params.z, *c) for c in counters
        ]
        return out
