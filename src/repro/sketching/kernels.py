"""Array-backed execution kernels for the sketch hot paths.

The pure-Python paths in :mod:`repro.sketching.field`,
:class:`~repro.sketching.l0sampler.L0Sampler` and
:class:`~repro.bits.writer.BitWriter` are the *reference semantics* — every
digest pinned by the bench suite and the regression baselines was produced
by them.  This module adds an optional numpy backend that computes the same
values in int64/uint64 lanes:

* :func:`mulmod61` / :func:`powmod61` — Mersenne-61 field arithmetic via
  31-bit limb splitting, entirely in uint64 (no Python-int round trips);
* :func:`splitmix64_np` / :func:`derive_params_block_batch` — the seeded
  parameter derivation chains, batched across many instances;
* :func:`l0_update_many` — one vectorized pass fanning a whole update
  stream across all subsampling levels of an
  :class:`~repro.sketching.l0sampler.L0Sampler`;
* :func:`pack_fields` / :func:`write_fields` — whole-stream bit packing
  feeding :meth:`BitWriter.write_packed`.

Contract: **bit-for-bit parity**.  Every kernel either produces exactly the
bytes/counters the pure twin produces, or falls back to the pure twin (for
shapes outside its safe envelope — e.g. values beyond 64 bits, or batch
aggregates that could overflow an int64 lane).  The parity fuzz suite and
the pinned bench digests enforce this, so backend selection can never leak
into results — it is an execution-level axis like the executor kind, and is
deliberately *excluded* from :meth:`RunSpec.content_hash`.

Selection: numpy is strictly optional.  ``"pure"`` is the default backend;
``"numpy"`` is chosen per-scope with :func:`use_kernels` (what
``Session.kernels("numpy")`` and ``repro campaign --kernels numpy`` thread
through the engine).  The active backend is a :class:`contextvars.ContextVar`
so concurrent runs on the thread executor cannot observe each other's
choice.
"""

from __future__ import annotations

import contextlib
import contextvars
from collections.abc import Iterable, Iterator

from repro.errors import CodecError, KernelError
from repro.sketching.field import MERSENNE61, splitmix64

try:  # numpy is strictly optional — every caller guards on numpy_available()
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_KERNELS",
    "numpy_available",
    "available_kernels",
    "resolve_kernels",
    "active_kernels",
    "use_kernels",
    "splitmix64_np",
    "derive_params_block_batch",
    "mulmod61",
    "powmod61",
    "l0_update_many",
    "pack_fields",
    "pack_arrays",
    "write_fields",
]

KERNEL_BACKENDS = ("pure", "numpy")
DEFAULT_KERNELS = "pure"

_MASK64 = 0xFFFFFFFFFFFFFFFF

_active: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_kernels", default=DEFAULT_KERNELS
)


def numpy_available() -> bool:
    """True when the optional numpy dependency imported successfully."""
    return _np is not None


def available_kernels() -> tuple[str, ...]:
    """Backends usable in this interpreter (``"pure"`` is always first)."""
    return KERNEL_BACKENDS if _np is not None else ("pure",)


def resolve_kernels(name: str | None) -> str:
    """Validate a backend name; ``None`` means the currently active one."""
    if name is None:
        return _active.get()
    if name not in KERNEL_BACKENDS:
        raise KernelError(
            f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKENDS}"
        )
    if name == "numpy" and _np is None:
        raise KernelError(
            "kernel backend 'numpy' requested but numpy is not installed; "
            "install numpy or use --kernels pure"
        )
    return name


def active_kernels() -> str:
    """The backend hot paths dispatch on right now (default ``"pure"``)."""
    return _active.get()


@contextlib.contextmanager
def use_kernels(name: str | None) -> Iterator[str]:
    """Scope the active kernel backend (``None`` leaves it unchanged)."""
    resolved = resolve_kernels(name)
    token = _active.set(resolved)
    try:
        yield resolved
    finally:
        _active.reset(token)


# --------------------------------------------------------------------------
# Field arithmetic: Mersenne-61 in uint64 lanes
# --------------------------------------------------------------------------

def mulmod61(a, b):
    """``(a * b) mod (2^61 - 1)`` elementwise for uint64 arrays ``< 2^61``.

    31-bit limb split keeps every intermediate inside uint64: with
    ``a = a1·2^31 + a0`` and ``b = b1·2^31 + b0`` the cross term is folded
    through ``2^61 ≡ 1 (mod p)`` before it can overflow.
    """
    np = _np
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    m31 = np.uint64((1 << 31) - 1)
    m30 = np.uint64((1 << 30) - 1)
    a0 = a & m31
    a1 = a >> np.uint64(31)          # < 2^30
    b0 = b & m31
    b1 = b >> np.uint64(31)
    hi = a1 * b1                     # < 2^60; contributes hi·2^62 ≡ 2·hi
    mid = a1 * b0 + a0 * b1          # < 2^62; contributes mid·2^31
    lo = a0 * b0                     # < 2^62
    mid_hi = mid >> np.uint64(30)    # mid·2^31 = mid_hi·2^61 + mid_lo·2^31
    mid_lo = mid & m30
    t = (hi << np.uint64(1)) + mid_hi + (mid_lo << np.uint64(31)) + lo
    p = np.uint64(MERSENNE61)
    t = (t >> np.uint64(61)) + (t & p)
    t = (t >> np.uint64(61)) + (t & p)
    # Subtract p only where t >= p; the where-on-the-subtrahend form never
    # underflows, so scalar (0-d) inputs don't trip overflow warnings.
    return t - np.where(t >= p, p, np.uint64(0))


def powmod61(base, exp):
    """``pow(base, exp, 2^61 - 1)`` elementwise (square-and-multiply).

    Iteration count is the bit length of the *largest* exponent in the
    batch — ~13 vector multiplies for L0 fingerprint exponents — not 61.
    """
    np = _np
    base = np.asarray(base, dtype=np.uint64)
    exp = np.asarray(exp, dtype=np.uint64)
    base, exp = np.broadcast_arrays(base, exp)
    result = np.ones(base.shape, dtype=np.uint64)
    if exp.size == 0:
        return result
    sq = base.copy()
    for bit in range(int(exp.max()).bit_length()):
        odd = ((exp >> np.uint64(bit)) & np.uint64(1)).astype(bool)
        result = np.where(odd, mulmod61(result, sq), result)
        sq = mulmod61(sq, sq)
    return result


def _pow_table(base: int, size: int):
    """``[base^0, base^1, ..., base^(size-1)] mod p`` by doubling.

    ``base^(k+len) = base^k · base^len`` lets each round double the table
    with one vector multiply, so a size-``s`` table costs ``O(log s)``
    vector ops rather than ``s`` scalar pows.
    """
    np = _np
    b = np.uint64(base % MERSENNE61)
    t = np.array([1, base % MERSENNE61], dtype=np.uint64)[: max(size, 1)]
    while len(t) < size:
        t = np.concatenate([t, mulmod61(t, mulmod61(t[-1], b))])
    return t[:size]


def _powmod61_dense(base: int, exp):
    """``base^exp mod p`` for a batch of *small* exponents via two tables.

    Baby-step/giant-step: with ``B = 2^b ≈ sqrt(max_exp)``, ``base^e =
    T1[e mod B] · T2[e div B]`` — two gathers and one vector multiply
    instead of ``bit_length(max_exp)`` square-and-multiply rounds.  Falls
    back to :func:`powmod61` when the exponents are too large for the
    tables to stay small.
    """
    np = _np
    max_exp = int(exp.max()) if exp.size else 0
    if max_exp.bit_length() > 26:  # tables would exceed ~2^13 entries each
        return powmod61(np.uint64(base), exp)
    b = (max_exp.bit_length() + 1) // 2
    baby = _pow_table(base, 1 << b)
    giant = _pow_table(pow(base, 1 << b, MERSENNE61), (max_exp >> b) + 1)
    return mulmod61(baby[exp & np.uint64((1 << b) - 1)], giant[exp >> np.uint64(b)])


def splitmix64_np(x):
    """Vector :func:`repro.sketching.field.splitmix64` (uint64 wraparound)."""
    np = _np
    x = np.asarray(x, dtype=np.uint64)
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def derive_params_block_batch(seed: int, count: int, tags_rows) -> list[tuple[int, ...]]:
    """Batched :func:`~repro.sketching.field.derive_params_block`.

    ``tags_rows`` is a sequence of equal-length tag tuples; the result is
    value-for-value ``[derive_params_block(seed, count, *row) for row in
    tags_rows]``, with the per-``which`` splitmix chains run across all rows
    at once.  Requires numpy.
    """
    np = _np
    if np is None:
        raise KernelError("derive_params_block_batch requires numpy")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rows = [tuple(t & _MASK64 for t in row) for row in tags_rows]
    if not rows:
        return []
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ValueError("tags_rows must all have the same length")
    x0 = splitmix64(seed & _MASK64)
    tag_cols = [
        np.array([row[j] for row in rows], dtype=np.uint64) for j in range(width)
    ]
    outs = []
    for which in range(1, count + 1):
        x = np.full(len(rows), splitmix64(x0 ^ which), dtype=np.uint64)
        for col in tag_cols:
            x = splitmix64_np(x ^ col)
        outs.append(x)
    stacked = np.stack(outs, axis=1) if outs else np.empty((len(rows), 0), np.uint64)
    return [tuple(row) for row in stacked.tolist()]


# --------------------------------------------------------------------------
# L0 sampler: batched update stream
# --------------------------------------------------------------------------

def l0_update_many(sampler, updates: Iterable[tuple[int, int]]) -> None:
    """Apply ``(index, delta)`` pairs to ``sampler`` in one vectorized pass.

    Counter-identical to the pure per-element loop.  Falls back to it for
    anything outside the int64-safe envelope (indices/deltas beyond int64,
    out-of-range indices — preserving the pure path's apply-prefix-then-
    raise semantics — or batch aggregates that could overflow a lane).
    """
    batch = updates if isinstance(updates, list) else list(updates)
    if _np is not None and _l0_update_many_numpy(sampler, batch):
        return
    for index, delta in batch:
        sampler.update(index, delta)


def _l0_update_many_numpy(sampler, batch: list) -> bool:
    """The numpy fast path; returns False when the pure loop must run."""
    np = _np
    if not batch:
        return True
    params = sampler.params
    m, levels = params.m, params.levels
    if m > MERSENNE61:
        return False
    try:
        arr = np.array(batch, dtype=np.int64)
    except (OverflowError, ValueError, TypeError):
        return False
    if arr.ndim != 2 or arr.shape[1] != 2:
        return False
    idx, dlt = arr[:, 0], arr[:, 1]
    if int(idx.min()) < 0 or int(idx.max()) >= m:
        return False  # pure loop applies the valid prefix, then raises
    k = len(batch)
    max_abs_delta = max(abs(int(dlt.min())), abs(int(dlt.max())))
    # int64 lane-overflow guards for the per-level sums (c0, c1, c2 halves).
    if max_abs_delta * k >= 1 << 62 or max_abs_delta * max(m, 1) * k >= 1 << 62:
        return False

    au = idx.astype(np.uint64)
    p = np.uint64(MERSENNE61)
    h = mulmod61(np.uint64(params.alpha), au) + np.uint64(params.beta)
    h = (h >> np.uint64(61)) + (h & p)
    h = np.where(h >= p, h - p, h)
    zero = h == 0
    lowbit = h & (~h + np.uint64(1))
    # lowbit is a power of two < 2^61 — exact in float64, so log2 is exact.
    safe = np.where(zero, np.uint64(1), lowbit)
    tz = np.log2(safe.astype(np.float64)).astype(np.int64)
    deepest = np.where(zero, levels - 1, np.minimum(tz, levels - 1))

    zpow = _powmod61_dense(params.z, au + np.uint64(1))
    term = mulmod61((dlt % np.int64(MERSENNE61)).astype(np.uint64), zpow)
    # Per-level c2 sums would overflow uint64 — accumulate 31-bit halves.
    term_hi = (term >> np.uint64(31)).astype(np.int64)
    term_lo = (term & np.uint64((1 << 31) - 1)).astype(np.int64)
    idelta = idx * dlt

    # Level lvl sums every update with deepest >= lvl (the levels are
    # nested).  One sort by depth turns each of those into a suffix sum:
    # cumsum once, then the per-level tail is total - prefix[boundary].
    order = np.argsort(deepest, kind="stable")
    depth_sorted = deepest[order]
    zero64 = np.zeros(1, dtype=np.int64)
    cs = [
        np.concatenate([zero64, np.cumsum(q[order])])
        for q in (dlt, idelta, term_hi, term_lo)
    ]
    top = min(levels - 1, int(depth_sorted[-1]))
    bounds = np.searchsorted(depth_sorted, np.arange(top + 1)).tolist()
    totals = [int(c[-1]) for c in cs]
    sketches = sampler.sketches
    for lvl in range(top + 1):
        b = bounds[lvl]
        sketch = sketches[lvl]
        sketch.c0 += totals[0] - int(cs[0][b])
        sketch.c1 += totals[1] - int(cs[1][b])
        c2_add = ((totals[2] - int(cs[2][b])) << 31) + (totals[3] - int(cs[3][b]))
        sketch.c2 = (sketch.c2 + c2_add) % MERSENNE61
    return True


# --------------------------------------------------------------------------
# Bit packing: whole-stream (value, width) fields -> packed bytes
# --------------------------------------------------------------------------

def pack_fields(fields) -> tuple[bytes, int] | None:
    """Pack ``(value, width)`` pairs into ``(data, nbits)``, MSB first.

    Validation is identical to :meth:`BitWriter.write_many` and raises
    :class:`CodecError` before anything is produced (on the fast path it
    runs vectorized; a failing batch re-runs the scalar checks so the
    exception names the *first* offending field, exactly like the pure
    writer).  Returns ``None`` when the batch falls outside the uint64
    lane envelope (values beyond int64, widths over 63 bits) so the caller
    can fall back to the pure writer — which performs the same validation
    itself, so nothing is skipped.  Requires numpy.
    """
    np = _np
    if np is None:
        raise KernelError("pack_fields requires numpy")
    batch = fields if isinstance(fields, list) else list(fields)
    if not batch:
        return b"", 0
    try:
        arr = np.array(batch, dtype=np.int64)
    except (OverflowError, ValueError, TypeError):
        return None
    if arr.ndim != 2 or arr.shape[1] != 2:
        return None
    v, w = arr[:, 0], arr[:, 1]
    if int(w.max()) > 63:
        return None  # a 64-bit shift is UB in the lanes; write_many handles it
    if (w < 0).any() or (v < 0).any() or ((v >> np.maximum(w, 0)) != 0).any():
        # Re-run the scalar checks to raise on the first offending field,
        # byte-identical to BitWriter.write_many's messages and order.
        for value, width in batch:
            if width < 0:
                raise CodecError(f"width must be >= 0, got {width}")
            if value < 0:
                raise CodecError(f"value must be >= 0, got {value}")
            if value >> width:
                raise CodecError(f"value {value} does not fit in {width} bits")
        raise AssertionError("vectorized validation disagreed with scalar")
    return _pack_lanes(v.astype(np.uint64), w)


def pack_arrays(values, widths) -> tuple[bytes, int] | None:
    """:func:`pack_fields` for pre-staged 1-D integer arrays.

    Same validation and output as :func:`pack_fields`, but the inputs are
    already numpy arrays (or anything ``np.asarray`` accepts), skipping
    the per-batch list conversion — this is the shape the bench suite
    feeds the kernel.  Returns ``None`` outside the 63-bit width envelope.
    """
    np = _np
    if np is None:
        raise KernelError("pack_arrays requires numpy")
    v = np.ascontiguousarray(values, dtype=np.int64)
    w = np.ascontiguousarray(widths, dtype=np.int64)
    if v.ndim != 1 or v.shape != w.shape:
        raise ValueError("values and widths must be 1-D arrays of equal length")
    if v.size == 0:
        return b"", 0
    if int(w.max()) > 63:
        return None
    if (w < 0).any() or (v < 0).any() or ((v >> np.maximum(w, 0)) != 0).any():
        for value, width in zip(v.tolist(), w.tolist()):
            if width < 0:
                raise CodecError(f"width must be >= 0, got {width}")
            if value < 0:
                raise CodecError(f"value must be >= 0, got {value}")
            if value >> width:
                raise CodecError(f"value {value} does not fit in {width} bits")
        raise AssertionError("vectorized validation disagreed with scalar")
    return _pack_lanes(v.astype(np.uint64), w)


def _pack_lanes(vu, w) -> tuple[bytes, int]:
    """Pack validated uint64 values / int64 widths into ``(data, nbits)``.

    A field at bit offset ``s`` with width ``<= 63`` spans at most two
    64-bit output words.  Left-aligning each value inside a 128-bit
    (hi, lo) lane pair splits it into those two word contributions; bit
    ranges are disjoint, so combining contributions per word is a bitwise
    OR.  The word indices ``s >> 6`` are already sorted (offsets are a
    cumsum), so one ``bitwise_or.reduceat`` per lane folds every field in
    C, and the word array's big-endian bytes are the packed stream.
    """
    np = _np
    total = int(w.sum())
    if total == 0:
        return b"", 0
    starts = np.cumsum(w) - w
    word = starts >> 6
    # Left shift inside the 128-bit window; t == 128 only for width-0
    # fields whose value is 0, so clamping to 127 keeps shifts < 64 without
    # changing any output bit.
    t = np.minimum(
        np.uint64(128) - (starts & 63).astype(np.uint64) - w.astype(np.uint64),
        np.uint64(127),
    )
    ge = t >= np.uint64(64)
    hi = np.where(
        ge,
        vu << np.where(ge, t - np.uint64(64), np.uint64(0)),
        vu >> np.where(ge, np.uint64(0), np.uint64(64) - t),
    )
    lo = np.where(ge, np.uint64(0), vu << np.where(ge, np.uint64(0), t))
    seg = np.concatenate(
        ([0], np.flatnonzero(word[1:] != word[:-1]) + 1)
    )  # first field of each distinct output word, in order
    out = np.zeros(((total + 63) >> 6) + 1, dtype=np.uint64)
    uniq = word[seg]
    out[uniq] = np.bitwise_or.reduceat(hi, seg)
    out[uniq + 1] |= np.bitwise_or.reduceat(lo, seg)
    nbytes = (total + 7) >> 3
    return out.astype(">u8").view(np.uint8)[:nbytes].tobytes(), total


def write_fields(writer, fields) -> None:
    """Append ``(value, width)`` pairs to ``writer`` via the active backend.

    The protocol encoders call this instead of ``writer.write_many`` so the
    pack hot path dispatches with the rest of the kernels; on the pure
    backend it *is* ``write_many``, bit for bit.
    """
    if _np is None or _active.get() != "numpy":
        writer.write_many(fields)
        return
    batch = fields if isinstance(fields, list) else list(fields)
    packed = pack_fields(batch)
    if packed is None:
        writer.write_many(batch)
        return
    writer.write_packed(*packed)
