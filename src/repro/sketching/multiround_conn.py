"""Sketch connectivity streamed over rounds — the conclusion's trade-off, instantiated.

The paper closes by asking what a *fixed number of rounds* buys.  Here is a
concrete data point: the one-round AGM protocol ships all ``O(log n)``
Borůvka phases' sketches at once (``O(log³ n)`` bits per message); this
variant sends **one phase's sketch per round** — ``O(log² n)`` bits per
round-message — because later phases' sketches are only *consumed* after
earlier merges, so they can just as well be transmitted later.

Same total bits, same output, but a per-round message budget one log-factor
closer to frugality.  (Squeezing further — one *level* per round — would
reach ``O(log n)``-bit messages over ``O(log² n)`` rounds; that refinement
is an exercise left in EXPERIMENTS.md.)

The referee needs no feedback channel (nodes' sketches don't depend on the
merge state), so every referee→node message is empty — this is genuinely a
"simultaneous messages × R rounds" protocol.
"""

from __future__ import annotations

from typing import Any

from repro.bits.writer import BitWriter
from repro.errors import DecodeError, SketchFailure
from repro.model.message import Message
from repro.model.multiround import MultiRoundProtocol
from repro.sketching import kernels
from repro.sketching.connectivity import (
    AGMConnectivityProtocol,
    _UnionFind,
    _unzigzag,
    _zigzag,
    edge_pair,
    incidence_updates,
)
from repro.sketching.l0sampler import L0Sampler

__all__ = ["MultiRoundSketchConnectivity"]


class MultiRoundSketchConnectivity(MultiRoundProtocol):
    """One Borůvka phase per communication round."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"multiround-sketch-connectivity(seed={seed})"
        self._inner = AGMConnectivityProtocol(seed=seed)
        self._state: dict[str, Any] = {}

    def rounds(self, n: int) -> int:
        return self._inner.rounds_for(n)

    # ------------------------------------------------------------------ #
    # node side: round r ships only the round-r sampler
    # ------------------------------------------------------------------ #

    def node_step(
        self, n: int, i: int, neighborhood: frozenset[int], round_idx: int, inbox: Message
    ) -> Message:
        if n < 2:
            return Message.empty()
        params = self._inner.params_for(n, round_idx)
        sampler = L0Sampler(params)
        sampler.update_many(incidence_updates(n, i, neighborhood))
        w0, w1 = self._inner._widths(n)
        writer = BitWriter()
        kernels.write_fields(
            writer,
            (
                field
                for c0, c1, c2 in sampler.counters()
                for field in ((_zigzag(c0), w0), (_zigzag(c1), w1), (c2, 61))
            ),
        )
        return Message.from_writer(writer)

    # ------------------------------------------------------------------ #
    # referee side: one merge phase per round, empty feedback
    # ------------------------------------------------------------------ #

    def referee_step(self, n: int, round_idx: int, messages: list[Message]) -> tuple[str, Any]:
        if round_idx == 0:
            self._state = {"uf": _UnionFind(n), "components": max(n, 1)}
        uf: _UnionFind = self._state["uf"]
        if n >= 2 and self._state["components"] > 1:
            params = self._inner.params_for(n, round_idx)
            w0, w1 = self._inner._widths(n)
            agg: dict[int, L0Sampler] = {}
            for v, msg in enumerate(messages, start=1):
                reader = msg.reader()
                counters = []
                try:
                    for _ in range(params.levels):
                        c0 = _unzigzag(reader.read_bits(w0))
                        c1 = _unzigzag(reader.read_bits(w1))
                        c2 = reader.read_bits(61)
                        counters.append((c0, c1, c2))
                    reader.expect_exhausted()
                except Exception as exc:
                    raise DecodeError(f"malformed round-{round_idx} sketch: {exc}") from exc
                sampler = L0Sampler.from_counters(params, counters)
                root = uf.find(v)
                agg[root] = agg[root].merged(sampler) if root in agg else sampler
            for root, sampler in agg.items():
                try:
                    hit = sampler.sample()
                except SketchFailure:
                    continue
                if hit is None:
                    continue
                u, v = edge_pair(n, hit[0])
                if uf.union(u, v):
                    self._state["components"] -= 1
        if round_idx == self.rounds(n) - 1 or self._state["components"] == 1:
            return "output", self._state["components"] == 1
        return "continue", [Message.empty() for _ in range(n)]
