"""Arithmetic in GF(p) for p = 2^61 - 1 (Mersenne), plus seeded parameter derivation.

Fingerprints need a field large enough that a forged one-sparse claim
collides with probability ~ n² / p ≈ 2^{-40} at the sizes we simulate.
The Mersenne prime keeps reduction cheap and every counter under 61 bits —
which is also what the per-message bit accounting serializes.

Randomness discipline: the model gives all parties a *shared* random string
(public coins).  We derive every hash/fingerprint parameter deterministically
from a seed via splitmix64, so a node's local function and the referee's
global function agree on parameters without communicating them.
"""

from __future__ import annotations

__all__ = [
    "MERSENNE61",
    "fadd",
    "fsub",
    "fmul",
    "fpow",
    "splitmix64",
    "derive_params",
    "derive_params_block",
]

MERSENNE61 = (1 << 61) - 1


def fadd(a: int, b: int) -> int:
    """Addition mod 2^61 - 1."""
    return (a + b) % MERSENNE61


def fsub(a: int, b: int) -> int:
    """Subtraction mod 2^61 - 1."""
    return (a - b) % MERSENNE61


def fmul(a: int, b: int) -> int:
    """Multiplication mod 2^61 - 1."""
    return (a * b) % MERSENNE61


def fpow(base: int, exp: int) -> int:
    """Exponentiation mod 2^61 - 1."""
    return pow(base, exp, MERSENNE61)


def splitmix64(x: int) -> int:
    """The splitmix64 mixing function — deterministic, platform-independent."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def derive_params(seed: int, *tags: int) -> int:
    """A 64-bit pseudo-random value bound to ``(seed, *tags)``.

    All parties call this with the same arguments (public randomness), e.g.
    ``derive_params(seed, round, level, which)`` for the level-hash
    coefficients and fingerprint bases.
    """
    x = splitmix64(seed & 0xFFFFFFFFFFFFFFFF)
    for t in tags:
        x = splitmix64(x ^ (t & 0xFFFFFFFFFFFFFFFF))
    return x


def derive_params_block(seed: int, count: int, *tags: int) -> tuple[int, ...]:
    """``tuple(derive_params(seed, which, *tags) for which in 1..count)``.

    The batched form used when one instance needs several parameters bound
    to the same ``(seed, *tags)`` (an L0 sampler derives hash multiplier,
    offset, and fingerprint base in one call): the seed is mixed once and
    the per-``which`` chains fan out from it, value-for-value identical to
    the scalar :func:`derive_params` calls.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    x0 = splitmix64(seed & 0xFFFFFFFFFFFFFFFF)
    masked = tuple(t & 0xFFFFFFFFFFFFFFFF for t in tags)
    out = []
    for which in range(1, count + 1):
        x = splitmix64(x0 ^ which)
        for t in masked:
            x = splitmix64(x ^ t)
        out.append(x)
    return tuple(out)
