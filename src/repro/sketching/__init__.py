"""Linear graph sketching — the answer history gave to the paper's open question.

The paper's main open question (Conclusion): *is there a one-round frugal
protocol deciding connectivity?*  The authors "rather tend to believe there
is no such protocol" — and indeed no deterministic ``O(log n)``-bit protocol
exists — but with **public randomness** the Ahn–Guha–McGregor (SODA 2012)
linear-sketching technique decides connectivity in exactly this model with
``O(log³ n)`` bits per node, a single round, and one-sided error.  This
package implements that machinery from scratch:

* :mod:`~repro.sketching.field` — arithmetic modulo the Mersenne prime
  ``2^61 - 1`` for fingerprints;
* :mod:`~repro.sketching.onesparse` — exact recovery of one-sparse signed
  vectors from three counters ``(Σa_e, Σe·a_e, Σa_e z^e)``;
* :mod:`~repro.sketching.l0sampler` — sample a uniform-ish nonzero
  coordinate by subsampling at geometric rates;
* :mod:`~repro.sketching.connectivity` — the AGM protocol: each node
  sketches its signed edge-incidence vector; summing a component's sketches
  cancels internal edges, so the referee runs Borůvka entirely on sketches;
* :mod:`~repro.sketching.multiround_conn` — the same sketch streamed over
  ``O(log n)`` rounds so each *round's* message is ``O(log² n)`` bits,
  connecting to the conclusion's "more rounds" question.

Linearity is the whole trick: a sketch of a sum is the sum of sketches, so
the referee can aggregate per-component without any node knowing anything
beyond its own neighbourhood.
"""

from repro.sketching.field import (
    MERSENNE61,
    derive_params,
    derive_params_block,
    fadd,
    fmul,
    fpow,
)
from repro.sketching.onesparse import OneSparseSketch, OneSparseResult
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams
from repro.sketching.connectivity import (
    AGMConnectivityProtocol,
    SketchReport,
    sketch_spanning_forest,
)
from repro.sketching.multiround_conn import MultiRoundSketchConnectivity
from repro.sketching.bipartiteness import SketchBipartitenessProtocol, BipartitenessReport

__all__ = [
    "SketchBipartitenessProtocol",
    "BipartitenessReport",
    "MERSENNE61",
    "derive_params",
    "derive_params_block",
    "fadd",
    "fmul",
    "fpow",
    "OneSparseSketch",
    "OneSparseResult",
    "L0Sampler",
    "L0SamplerParams",
    "AGMConnectivityProtocol",
    "SketchReport",
    "sketch_spanning_forest",
    "MultiRoundSketchConnectivity",
]
