"""Exact one-sparse recovery.

A signed integer vector ``a`` (indexed by edge slots ``0..m-1``) is
*one-sparse* when exactly one coordinate is nonzero.  The classical
three-counter sketch recovers it exactly:

* ``c0 = Σ_e a_e``              (total weight)
* ``c1 = Σ_e e · a_e``          (index-weighted)
* ``c2 = Σ_e a_e · z^{e+1}``    (fingerprint mod p, random base z)

If ``a`` is one-sparse with support ``{i}`` then ``c1/c0 = i`` and
``c2 = c0 · z^{i+1}``.  The fingerprint check rejects non-one-sparse vectors
except with probability ``<= m/p`` (a nonzero polynomial of degree ``m`` in
``z`` has at most ``m`` roots) — including the treacherous ``c0 = 0`` cases
that the first two counters alone cannot see.

The sketch is *linear*: :meth:`OneSparseSketch.merged` adds counter-wise, so
component sums in the AGM protocol are sketch sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.sketching.field import MERSENNE61, fadd, fmul, fpow

__all__ = ["OneSparseSketch", "OneSparseResult", "RecoveryStatus"]


class RecoveryStatus(Enum):
    """Outcome of a recovery attempt."""

    ZERO = "zero"            # the sketched vector is (whp) all-zero
    ONE_SPARSE = "one-sparse"  # exactly one nonzero coordinate, recovered
    DENSE = "dense"          # more than one nonzero coordinate (whp)


@dataclass(frozen=True)
class OneSparseResult:
    """Recovery outcome; ``index``/``weight`` populated iff one-sparse."""

    status: RecoveryStatus
    index: int | None = None
    weight: int | None = None


class OneSparseSketch:
    """The three-counter sketch of a signed vector over edge slots ``0..m-1``."""

    __slots__ = ("m", "z", "c0", "c1", "c2")

    def __init__(self, m: int, z: int) -> None:
        if not 1 <= z < MERSENNE61:
            raise ValueError(f"fingerprint base must be in 1..p-1, got {z}")
        self.m = m
        self.z = z
        self.c0 = 0
        self.c1 = 0
        self.c2 = 0

    def update(self, index: int, delta: int) -> None:
        """Add ``delta`` to coordinate ``index``.

        Hot path: the field arithmetic is inlined (one ``pow`` plus two
        modular reductions) but value-for-value identical to
        ``fadd(c2, fmul(delta mod p, fpow(z, index+1)))`` — the parity
        suite pins this against the composed form.
        """
        if not 0 <= index < self.m:
            raise ValueError(f"index {index} outside 0..{self.m - 1}")
        self.c0 += delta
        self.c1 += index * delta
        self.c2 = (self.c2 + delta % MERSENNE61
                   * pow(self.z, index + 1, MERSENNE61)) % MERSENNE61

    def merged(self, other: "OneSparseSketch") -> "OneSparseSketch":
        """Linear combination: the sketch of the sum of the two vectors."""
        if other.m != self.m or other.z != self.z:
            raise ValueError("cannot merge sketches with different parameters")
        out = OneSparseSketch(self.m, self.z)
        out.c0 = self.c0 + other.c0
        out.c1 = self.c1 + other.c1
        out.c2 = fadd(self.c2, other.c2)
        return out

    def recover(self) -> OneSparseResult:
        """Classify the sketched vector and recover it when one-sparse."""
        if self.c0 == 0 and self.c1 == 0 and self.c2 == 0:
            return OneSparseResult(RecoveryStatus.ZERO)
        if self.c0 != 0 and self.c1 % self.c0 == 0:
            index = self.c1 // self.c0
            if 0 <= index < self.m:
                expected = fmul(self.c0 % MERSENNE61, fpow(self.z, index + 1))
                if self.c2 == expected:
                    return OneSparseResult(RecoveryStatus.ONE_SPARSE, index, self.c0)
        return OneSparseResult(RecoveryStatus.DENSE)

    def counters(self) -> tuple[int, int, int]:
        """``(c0, c1, c2)`` — what gets serialized into the node's message."""
        return self.c0, self.c1, self.c2

    @classmethod
    def from_counters(cls, m: int, z: int, c0: int, c1: int, c2: int) -> "OneSparseSketch":
        """Rebuild a sketch from deserialized counters."""
        s = cls(m, z)
        s.c0, s.c1, s.c2 = c0, c1, c2
        return s
