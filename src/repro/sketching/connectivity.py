"""AGM sketch connectivity — one round, O(log³ n) bits per node, public coins.

Every node ``v`` sketches its *signed edge-incidence vector*: coordinate
``e = {v, w}`` holds ``+1`` if ``v = min(v, w)`` and ``-1`` otherwise.  The
magic identity: summing these vectors over a vertex set ``S`` cancels every
edge internal to ``S`` and leaves ``±1`` exactly on the boundary edges — so
an L0-sample of the summed sketch is an outgoing edge of ``S``.

The referee therefore runs Borůvka without ever seeing the graph: start
with singleton components; each round, sum the (that round's) sketches of
every component, sample one outgoing edge per component, union.  Components
halve (in expectation) per round, so ``O(log n)`` rounds — each needing an
*independent* sketch, whence the ``O(log n) × O(log n) levels × O(log n)
bits`` = ``O(log³ n)`` bits per node.

This answers the paper's open question in the affirmative **given public
randomness and a polylog (not log) budget** — the trade the literature
settled on after the paper appeared.  The protocol is an honest
:class:`~repro.model.protocol.OneRoundProtocol`: the local function is pure
(seeded parameters are shared randomness), and all counters travel through
bit-accounted messages.

One-sided error: a component whose sampler fails is left unmerged, so the
protocol may call a connected graph disconnected (with small probability),
never the reverse once the fingerprint holds (boundary edges reported are
genuine whp).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.writer import BitWriter
from repro.errors import DecodeError, SketchFailure
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol
from repro.sketching import kernels
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams
from repro.registry import register

__all__ = [
    "AGMConnectivityProtocol",
    "SketchReport",
    "sketch_spanning_forest",
    "edge_index",
    "edge_pair",
    "incidence_updates",
]


def edge_index(n: int, u: int, v: int) -> int:
    """Rank of edge ``{u, v}`` (u < v) in lexicographic order over C(n,2) slots."""
    if not 1 <= u < v <= n:
        raise ValueError(f"need 1 <= u < v <= n, got ({u}, {v})")
    # edges (1,2)..(1,n), (2,3)..(2,n), ...: (u-1)n - u(u-1)/2 edges precede row u
    return (u - 1) * n - u * (u - 1) // 2 + v - u - 1


def incidence_updates(
    n: int, i: int, neighborhood: frozenset[int]
) -> list[tuple[int, int]]:
    """Node ``i``'s signed edge-incidence stream: ``(edge_index, ±1)`` pairs."""
    return [
        (edge_index(n, i, w), +1) if i < w else (edge_index(n, w, i), -1)
        for w in neighborhood
    ]


def edge_pair(n: int, index: int) -> tuple[int, int]:
    """Inverse of :func:`edge_index`."""
    if index < 0 or index >= n * (n - 1) // 2:
        raise ValueError(f"edge index {index} out of range for n={n}")
    u = 1
    while (u - 1) * n - u * (u - 1) // 2 + (n - u) <= index:
        u += 1
    v = index - ((u - 1) * n - u * (u - 1) // 2) + u + 1
    return u, v


@dataclass(frozen=True)
class SketchReport:
    """Outcome of one sketch-connectivity run."""

    connected: bool
    n: int
    rounds_used: int
    forest_edges: tuple[tuple[int, int], ...]
    sampler_failures: int
    bits_per_node: int


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n + 1))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


class AGMConnectivityProtocol(DecisionProtocol):
    """One-round randomized connectivity in the referee model.

    Parameters
    ----------
    seed:
        The public random string all parties share.
    rounds:
        Borůvka phases (defaults to ``2·ceil(log2 n) + 2``, computed per n).
    """

    def __init__(self, seed: int = 0, rounds: int | None = None) -> None:
        self.seed = seed
        self._rounds_override = rounds
        self.name = f"agm-connectivity(seed={seed})"

    # ------------------------------------------------------------------ #
    # shared parameter derivation
    # ------------------------------------------------------------------ #

    def rounds_for(self, n: int) -> int:
        if self._rounds_override is not None:
            return self._rounds_override
        return 2 * max(1, (n - 1).bit_length()) + 2

    def params_for(self, n: int, r: int) -> L0SamplerParams:
        m = max(1, n * (n - 1) // 2)
        return L0SamplerParams.derive(m, self.seed, n, r)

    def _widths(self, n: int) -> tuple[int, int]:
        """Fixed widths for (zigzag c0, zigzag c1) in node messages."""
        m = max(1, n * (n - 1) // 2)
        w0 = (2 * n).bit_length()
        w1 = (2 * n * m).bit_length()
        return w0, w1

    # ------------------------------------------------------------------ #
    # local phase
    # ------------------------------------------------------------------ #

    def _node_samplers(self, n: int, i: int, neighborhood: frozenset[int]) -> list[L0Sampler]:
        # The incidence updates are identical for every round's sampler, so
        # build the (index, delta) stream once and feed each round through
        # update_many — the batched path the kernel backends vectorize.
        updates = incidence_updates(n, i, neighborhood)
        samplers = []
        for r in range(self.rounds_for(n)):
            sampler = L0Sampler(self.params_for(n, r))
            sampler.update_many(updates)
            samplers.append(sampler)
        return samplers

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        if n < 2:
            return Message.empty()
        w0, w1 = self._widths(n)
        # Collect every fixed-width field, then pack the whole message in
        # one pass (bit-identical to per-field writes on every backend).
        fields: list[tuple[int, int]] = []
        for sampler in self._node_samplers(n, i, neighborhood):
            for c0, c1, c2 in sampler.counters():
                fields.append((_zigzag(c0), w0))
                fields.append((_zigzag(c1), w1))
                fields.append((c2, 61))
        writer = BitWriter()
        kernels.write_fields(writer, fields)
        return Message.from_writer(writer)

    # ------------------------------------------------------------------ #
    # global phase: Borůvka on sketches
    # ------------------------------------------------------------------ #

    def global_(self, n: int, messages: list[Message]) -> bool:
        return self.decode_and_solve(n, messages).connected

    def decode_and_solve(self, n: int, messages: list[Message]) -> SketchReport:
        """Full global phase, returning the detailed report."""
        if n <= 1:
            return SketchReport(True, n, 0, (), 0, 0)
        rounds = self.rounds_for(n)
        w0, w1 = self._widths(n)
        per_node: list[list[L0Sampler]] = []
        bits = 0
        for msg in messages:
            bits = max(bits, msg.bits)
            reader = msg.reader()
            samplers = []
            try:
                for r in range(rounds):
                    params = self.params_for(n, r)
                    counters = []
                    for _ in range(params.levels):
                        c0 = _unzigzag(reader.read_bits(w0))
                        c1 = _unzigzag(reader.read_bits(w1))
                        c2 = reader.read_bits(61)
                        counters.append((c0, c1, c2))
                    samplers.append(L0Sampler.from_counters(params, counters))
                reader.expect_exhausted()
            except Exception as exc:
                raise DecodeError(f"malformed sketch message: {exc}") from exc
            per_node.append(samplers)

        uf = _UnionFind(n)
        components = n
        forest: list[tuple[int, int]] = []
        failures = 0
        rounds_used = 0
        for r in range(rounds):
            if components == 1:
                break
            rounds_used = r + 1
            # aggregate round-r samplers by component root
            agg: dict[int, L0Sampler] = {}
            for v in range(1, n + 1):
                root = uf.find(v)
                if root in agg:
                    agg[root] = agg[root].merged(per_node[v - 1][r])
                else:
                    agg[root] = per_node[v - 1][r]
            merged_any = False
            round_failures = 0
            for root, sampler in agg.items():
                try:
                    hit = sampler.sample()
                except SketchFailure:
                    failures += 1
                    round_failures += 1
                    continue
                if hit is None:
                    continue  # genuinely isolated component
                u, v = edge_pair(n, hit[0])
                if uf.union(u, v):
                    forest.append((u, v) if u < v else (v, u))
                    components -= 1
                    merged_any = True
            if not merged_any and round_failures == 0:
                break  # every component is (whp) isolated: the partition is final
        return SketchReport(
            connected=components == 1,
            n=n,
            rounds_used=rounds_used,
            forest_edges=tuple(sorted(set(forest))),
            sampler_failures=failures,
            bits_per_node=bits,
        )


def sketch_spanning_forest(g: LabeledGraph, seed: int = 0) -> SketchReport:
    """Convenience: run the full protocol on ``g`` and return the report."""
    protocol = AGMConnectivityProtocol(seed=seed)
    return protocol.decode_and_solve(g.n, protocol.message_vector(g))


def _zigzag(x: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (x << 1) ^ (x >> 63) if x >= 0 else ((-x) << 1) - 1


def _unzigzag(u: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (u >> 1) if (u & 1) == 0 else -((u + 1) >> 1)



@register("agm_connectivity", kind="protocol",
          capabilities=("decision", "sketching", "randomized"),
          summary="AGM linear-sketch connectivity: one round, O(log^3 n) "
                  "bits/node, one-sided error.")
def _build_agm_connectivity(n: int, sketch_seed: int = 0) -> "AGMConnectivityProtocol":
    return AGMConnectivityProtocol(seed=sketch_seed)
