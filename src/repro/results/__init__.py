"""repro.results — campaign analytics and the regression gate.

The read side of the engine's JSONL contract (DESIGN.md §3/§4): campaigns
become queryable datasets, and correctness/perf regressions become
machine-detectable instead of eyeballed.

* :mod:`~repro.results.records` — strict schema validation, ``spec_version``
  migration for streams written by older engines, and streaming iteration
  (million-record files are read line by line, never loaded whole);
* :mod:`~repro.results.aggregate` — group-by over spec axes with
  min/mean/max/p95 of message bits, exactness and fault-outcome rates, and
  the Lemma-2 normalization ``bits / (k² log₂ n)``;
* :mod:`~repro.results.diff` — align two campaigns on spec content hash
  and report per-run digest mismatches, bit deltas, and (opt-in)
  wall-clock ratios under a configurable tolerance;
* :mod:`~repro.results.baseline` — freeze a campaign to
  ``benchmarks/baselines/<name>.json`` and :func:`~repro.results.baseline.check`
  a fresh run against it; the structured pass/fail CI turns into an exit
  code.

CLI: ``python -m repro report <file.jsonl>``, ``python -m repro diff <a> <b>``,
``python -m repro baseline freeze|check`` (all with ``--json``).

Everything is pure stdlib and — timing aside, which is opt-in throughout —
deterministic: identical records produce byte-identical reports.
"""

from repro.results.records import (
    RECORD_VERSION,
    canonical_line,
    index_by_spec_hash,
    iter_records,
    load_records,
    migrate_record,
    spec_content_hash,
    validate_record,
    within_tolerance,
    write_records,
)
from repro.results.aggregate import (
    DEFAULT_AXES,
    Aggregator,
    QuantileSketch,
    Stats,
    aggregate,
    aggregate_table,
    normalized_bits,
    percentile,
)
from repro.results.diff import DiffReport, RunDelta, diff_campaigns
from repro.results.baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINES_DIR,
    BaselineCheck,
    CheckFailure,
    check,
    freeze,
    load_baseline,
    summarize_campaign,
)

__all__ = [
    "RECORD_VERSION",
    "validate_record",
    "migrate_record",
    "iter_records",
    "load_records",
    "write_records",
    "canonical_line",
    "spec_content_hash",
    "index_by_spec_hash",
    "within_tolerance",
    "DEFAULT_AXES",
    "Stats",
    "Aggregator",
    "QuantileSketch",
    "percentile",
    "normalized_bits",
    "aggregate",
    "aggregate_table",
    "DiffReport",
    "RunDelta",
    "diff_campaigns",
    "BASELINE_VERSION",
    "DEFAULT_BASELINES_DIR",
    "summarize_campaign",
    "freeze",
    "load_baseline",
    "CheckFailure",
    "BaselineCheck",
    "check",
]
