"""Align two campaigns run-by-run and report what changed.

Runs are matched on the *physical* spec content hash (scenario labels and
file order are provenance, not identity), so a refactored campaign spec
that sweeps the same grid still diffs cleanly against an old JSONL file.

Per matched run the deterministic result fields are compared — status,
output kind/digest, exactness, and the bit counts (with a configurable
relative tolerance).  Wall-clock ratios are computed but opt-in: timing is
the one nondeterministic part of a record, so it never contaminates the
default (byte-stable) report and never fails a diff unless a tolerance is
requested explicitly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.results.aggregate import Stats, _PRECISION
from repro.results.records import index_by_spec_hash, within_tolerance

__all__ = ["RunDelta", "DiffReport", "diff_campaigns"]


def _spec_summary(record: Mapping) -> dict:
    spec = record["spec"]
    return {k: spec[k] for k in ("scenario", "family", "n", "seed", "protocol")}


@dataclass(frozen=True)
class RunDelta:
    """One matched run whose deterministic results disagree."""

    key: str                      # spec content hash
    spec: dict                    # scenario/family/n/seed/protocol summary (side a)
    field: str                    # which result field disagrees
    a: object
    b: object

    def to_dict(self) -> dict:
        return {"key": self.key, "spec": self.spec, "field": self.field,
                "a": self.a, "b": self.b}


@dataclass
class DiffReport:
    """Structured outcome of :func:`diff_campaigns`."""

    runs_a: int
    runs_b: int
    matched: int
    only_in_a: list[dict] = field(default_factory=list)
    only_in_b: list[dict] = field(default_factory=list)
    result_mismatches: list[RunDelta] = field(default_factory=list)
    bit_deltas: list[RunDelta] = field(default_factory=list)
    bits_tolerance: float = 0.0
    time_tolerance: float | None = None
    wall_ratio: dict | None = None    # Stats of per-run wall_seconds b/a
    time_ok: bool | None = None       # None when no time tolerance was set

    @property
    def ok(self) -> bool:
        """Whether the two campaigns agree (the CI-gate verdict)."""
        return (
            not self.only_in_a
            and not self.only_in_b
            and not self.result_mismatches
            and not self.bit_deltas
            and self.time_ok is not False
        )

    def to_dict(self, *, include_timing: bool = False) -> dict:
        """JSON form; timing excluded by default so the output is byte-stable."""
        out = {
            "ok": self.ok,
            "runs_a": self.runs_a,
            "runs_b": self.runs_b,
            "matched": self.matched,
            "only_in_a": self.only_in_a,
            "only_in_b": self.only_in_b,
            "result_mismatches": [d.to_dict() for d in self.result_mismatches],
            "bit_deltas": [d.to_dict() for d in self.bit_deltas],
            "bits_tolerance": self.bits_tolerance,
        }
        if include_timing or self.time_tolerance is not None:
            out["time_tolerance"] = self.time_tolerance
            out["wall_ratio"] = self.wall_ratio
            out["time_ok"] = self.time_ok
        return out


_COMPARED_FIELDS = ("status", "output_kind", "output_digest", "exact")
_BIT_FIELDS = ("max_message_bits", "total_message_bits")


def diff_campaigns(
    records_a: Iterable[Mapping],
    records_b: Iterable[Mapping],
    *,
    bits_tolerance: float = 0.0,
    time_tolerance: float | None = None,
) -> DiffReport:
    """Compare two campaigns' records; see :class:`DiffReport`.

    ``bits_tolerance`` is relative: a bit count ``b`` matches baseline ``a``
    when ``|b - a| <= bits_tolerance * max(a, 1)`` (0.0 demands equality).
    ``time_tolerance`` (optional) bounds the mean per-run wall-clock ratio
    ``b / a``; when unset, timing is reported but never fails the diff.
    """
    if bits_tolerance < 0:
        raise SchemaError(f"bits_tolerance must be >= 0, got {bits_tolerance}")
    if time_tolerance is not None and time_tolerance <= 0:
        raise SchemaError(f"time_tolerance must be > 0, got {time_tolerance}")

    index_a = index_by_spec_hash(records_a, label="campaign a")
    index_b = index_by_spec_hash(records_b, label="campaign b")

    report = DiffReport(
        runs_a=len(index_a),
        runs_b=len(index_b),
        matched=0,
        bits_tolerance=bits_tolerance,
        time_tolerance=time_tolerance,
    )
    for key in sorted(set(index_a) - set(index_b)):
        report.only_in_a.append({"key": key, "spec": _spec_summary(index_a[key])})
    for key in sorted(set(index_b) - set(index_a)):
        report.only_in_b.append({"key": key, "spec": _spec_summary(index_b[key])})

    ratios: list[float] = []
    for key in sorted(set(index_a) & set(index_b)):
        a, b = index_a[key], index_b[key]
        report.matched += 1
        summary = _spec_summary(a)
        for name in _COMPARED_FIELDS:
            if a["result"][name] != b["result"][name]:
                report.result_mismatches.append(
                    RunDelta(key, summary, name, a["result"][name], b["result"][name])
                )
        for name in _BIT_FIELDS:
            va, vb = a["result"][name], b["result"][name]
            if not within_tolerance(va, vb, bits_tolerance):
                report.bit_deltas.append(RunDelta(key, summary, name, va, vb))
        wall_a = a["timing"].get("wall_seconds")
        wall_b = b["timing"].get("wall_seconds")
        if (isinstance(wall_a, (int, float)) and isinstance(wall_b, (int, float))
                and not isinstance(wall_a, bool) and not isinstance(wall_b, bool)
                and wall_a > 0):
            ratios.append(round(wall_b / wall_a, _PRECISION))

    if ratios:
        report.wall_ratio = Stats.of(ratios).to_dict()
        if time_tolerance is not None:
            report.time_ok = report.wall_ratio["mean"] <= time_tolerance
    elif time_tolerance is not None:
        report.time_ok = True  # nothing to time against: vacuously within bound
    return report
