"""Frozen campaign baselines: the machine-checkable regression gate.

:func:`freeze` distills a campaign's deterministic fields — per-run status,
output digest, exactness, bit counts, keyed by spec content hash — into
``benchmarks/baselines/<name>.json``.  :func:`check` replays the contract
against a fresh run and returns a structured pass/fail that CI turns into
an exit code: a changed digest means the protocol now computes something
else; a grown bit count means a message got bigger than the paper's bound
justified; a missing run means the campaign grid silently shrank.

Baselines deliberately contain no timing — they must be reproducible on
any machine (the engine's determinism contract, DESIGN.md §2).
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import BaselineError, SchemaError
from repro.results.records import (
    RECORD_VERSION,
    index_by_spec_hash,
    within_tolerance,
)

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINES_DIR",
    "summarize_campaign",
    "freeze",
    "load_baseline",
    "CheckFailure",
    "BaselineCheck",
    "check",
]

BASELINE_VERSION = 1

DEFAULT_BASELINES_DIR = pathlib.Path("benchmarks") / "baselines"

#: Deterministic result fields a baseline pins exactly.
_PINNED_FIELDS = ("status", "output_kind", "output_digest", "exact")

#: Result fields a baseline pins up to the relative bit tolerance.
_BIT_FIELDS = ("max_message_bits", "total_message_bits")


def summarize_campaign(records: Iterable[Mapping], *, name: str = "campaign") -> dict:
    """The frozen form of a campaign: per-run deterministic fields + rollup."""
    by_hash: dict[str, dict] = {}
    statuses: dict[str, int] = {}
    exact = total_bits = 0
    max_bits = 0
    for key, record in index_by_spec_hash(records, label=f"baseline {name!r}").items():
        spec, result = record["spec"], record["result"]
        entry = {k: spec[k] for k in ("scenario", "family", "n", "seed", "protocol")}
        for name_ in _PINNED_FIELDS + _BIT_FIELDS:
            entry[name_] = result[name_]
        by_hash[key] = entry
        statuses[result["status"]] = statuses.get(result["status"], 0) + 1
        exact += result["exact"] is True
        total_bits += result["total_message_bits"]
        max_bits = max(max_bits, result["max_message_bits"])
    if not by_hash:
        raise SchemaError(f"cannot freeze baseline {name!r} from zero records")
    return {
        "baseline_version": BASELINE_VERSION,
        "name": name,
        "spec_version": RECORD_VERSION,
        "runs": len(by_hash),
        "rollup": {
            "statuses": dict(sorted(statuses.items())),
            "exact": exact,
            "total_message_bits": total_bits,
            "max_message_bits": max_bits,
        },
        "by_hash": dict(sorted(by_hash.items())),
    }


def freeze(
    records: Iterable[Mapping],
    name: str,
    *,
    baselines_dir: str | pathlib.Path = DEFAULT_BASELINES_DIR,
) -> pathlib.Path:
    """Write ``<baselines_dir>/<name>.json`` (sorted, indented, byte-stable)."""
    baselines_dir = pathlib.Path(baselines_dir)
    baselines_dir.mkdir(parents=True, exist_ok=True)
    path = baselines_dir / f"{name}.json"
    summary = summarize_campaign(records, name=name)
    path.write_text(json.dumps(summary, sort_keys=True, indent=2) + "\n")
    return path


def load_baseline(source: str | pathlib.Path | Mapping) -> dict:
    """Load and structurally check a frozen baseline (path or parsed dict)."""
    if isinstance(source, Mapping):
        baseline = dict(source)
    else:
        path = pathlib.Path(source)
        if not path.exists():
            raise BaselineError(f"baseline file {path} does not exist")
        try:
            baseline = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(baseline, dict):
        raise BaselineError("baseline must be a JSON object")
    version = baseline.get("baseline_version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline_version must be {BASELINE_VERSION}, got {version!r}"
        )
    if not isinstance(baseline.get("by_hash"), dict) or not baseline["by_hash"]:
        raise BaselineError("baseline has no 'by_hash' run table")
    # A truncated entry would make check() vacuously pass — the gate must
    # fail loudly on a baseline that cannot actually pin anything.
    for key, entry in baseline["by_hash"].items():
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline entry {key} is not an object")
        missing = [f for f in _PINNED_FIELDS + _BIT_FIELDS if f not in entry]
        if missing:
            raise BaselineError(
                f"baseline entry {key} is missing pinned field(s) {missing}"
            )
    return baseline


@dataclass(frozen=True)
class CheckFailure:
    """One violated baseline expectation."""

    kind: str        # "missing-run" | "extra-run" | "result" | "bits"
    key: str         # spec content hash ("" for campaign-level failures)
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "key": self.key, "detail": self.detail}


@dataclass
class BaselineCheck:
    """Structured verdict of :func:`check` — what CI gates on."""

    baseline_name: str
    runs_checked: int
    bits_tolerance: float
    failures: list[CheckFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_name,
            "passed": self.passed,
            "runs_checked": self.runs_checked,
            "bits_tolerance": self.bits_tolerance,
            "failures": [f.to_dict() for f in self.failures],
        }


def check(
    records: Iterable[Mapping],
    baseline: str | pathlib.Path | Mapping,
    *,
    bits_tolerance: float = 0.0,
) -> BaselineCheck:
    """Verify a fresh campaign against a frozen baseline.

    Every baseline run must be present with identical status / output
    digest / exactness; bit counts must match within the relative
    ``bits_tolerance`` (``|new - old| <= tol * max(old, 1)``); runs absent
    from the baseline are flagged too (a silently grown grid is as
    suspicious as a shrunken one).
    """
    if bits_tolerance < 0:
        raise SchemaError(f"bits_tolerance must be >= 0, got {bits_tolerance}")
    baseline = load_baseline(baseline)
    expected: dict[str, dict] = baseline["by_hash"]

    fresh = index_by_spec_hash(records, label="checked campaign")

    result = BaselineCheck(
        baseline_name=str(baseline.get("name", "baseline")),
        runs_checked=len(fresh),
        bits_tolerance=bits_tolerance,
    )
    for key in sorted(set(expected) - set(fresh)):
        e = expected[key]
        result.failures.append(CheckFailure(
            "missing-run", key,
            f"baseline run {e.get('scenario')}/{e.get('family')}/n={e.get('n')}/"
            f"seed={e.get('seed')} not present in campaign",
        ))
    for key in sorted(set(fresh) - set(expected)):
        spec = fresh[key]["spec"]
        result.failures.append(CheckFailure(
            "extra-run", key,
            f"campaign run {spec['scenario']}/{spec['family']}/n={spec['n']}/"
            f"seed={spec['seed']} has no baseline entry (re-freeze?)",
        ))
    for key in sorted(set(expected) & set(fresh)):
        e, res = expected[key], fresh[key]["result"]
        for name in _PINNED_FIELDS:
            if res[name] != e[name]:
                result.failures.append(CheckFailure(
                    "result", key, f"{name}: expected {e[name]!r}, got {res[name]!r}",
                ))
        for name in _BIT_FIELDS:
            old, new = e[name], res[name]
            if not within_tolerance(old, new, bits_tolerance):
                result.failures.append(CheckFailure(
                    "bits", key,
                    f"{name}: expected {old} ± {bits_tolerance:.0%}, got {new}",
                ))
    return result
