"""Schema-validated campaign record I/O.

The engine streams one JSON object per run into ``results/<name>.jsonl``
(DESIGN.md §3).  This module is the *read* side of that contract: a strict
validator (unknown keys and wrong types are rejected — ``True`` is not an
``int`` here), a version migrator for streams written by older engines, and
streaming iteration so a million-record file is never loaded whole.

The schema is pinned to :data:`repro.engine.scenario.SPEC_VERSION`.  A
record without a ``spec_version`` stamp is a v1 stream; :func:`migrate_record`
upgrades it in memory.  A record from a *newer* engine fails loudly instead
of being silently misread.

All validation failures raise :class:`~repro.errors.SchemaError` with
enough context (file, line, field path) to locate the offending record.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from repro.errors import SchemaError
from repro.engine.scenario import SPEC_VERSION, RunSpec

__all__ = [
    "RECORD_VERSION",
    "check_mapping",
    "validate_record",
    "migrate_record",
    "iter_records",
    "load_records",
    "write_records",
    "canonical_line",
    "spec_content_hash",
    "index_by_spec_hash",
    "within_tolerance",
]

#: The record schema version this module validates against (== engine
#: SPEC_VERSION: spec semantics and record schema move together).
RECORD_VERSION = SPEC_VERSION

_STATUSES = ("ok", "violation", "error")

#: JSON scalar types allowed as family/protocol parameter values.
_PARAM_SCALARS = (str, int, float, bool, type(None))

# field -> allowed types. ``bool`` is checked *before* ``int`` everywhere
# (Python's bool subclasses int; the schema keeps them distinct).
_SPEC_FIELDS: dict[str, tuple[type, ...]] = {
    "scenario": (str,),
    "family": (str,),
    "n": (int,),
    "seed": (int,),
    "protocol": (str,),
    "family_params": (dict,),
    "protocol_params": (dict,),
    "budget_bits": (int, type(None)),
    "shuffle_delivery": (bool,),
    "faults": (dict, type(None)),
}

_FAULT_SPEC_FIELDS: dict[str, tuple[type, ...]] = {
    "drop": (int, float),
    "duplicate": (int, float),
    "flip": (int, float),
    "seed": (int,),
}

_RESULT_FIELDS: dict[str, tuple[type, ...]] = {
    "status": (str,),
    "output_kind": (str,),
    "output_digest": (str,),
    "exact": (bool, type(None)),
    "graph_n": (int,),
    "graph_m": (int,),
    "max_message_bits": (int,),
    "total_message_bits": (int,),
    "faults": (dict,),
    "error": (str,),
}

_FAULT_COUNTER_FIELDS: dict[str, tuple[type, ...]] = {
    "dropped": (int,),
    "duplicated": (int,),
    "flipped": (int,),
}

_TOP_FIELDS: dict[str, tuple[type, ...]] = {
    "spec_version": (int,),
    "spec": (dict,),
    "result": (dict,),
    "timing": (dict,),
    "cached": (bool,),
}

_NON_NEGATIVE_RESULT_FIELDS = (
    "graph_n", "graph_m", "max_message_bits", "total_message_bits",
)


def _type_ok(value: Any, allowed: tuple[type, ...]) -> bool:
    """Strict isinstance: a bool never satisfies an int/float slot."""
    if isinstance(value, bool):
        return bool in allowed
    return isinstance(value, allowed)


def _type_names(allowed: tuple[type, ...]) -> str:
    return "/".join("null" if t is type(None) else t.__name__ for t in allowed)


def check_mapping(
    obj: Any,
    fields: Mapping[str, tuple[type, ...]],
    path: str,
    where: str,
    *,
    error: type[Exception] = SchemaError,
) -> None:
    """Strictly check ``obj`` against a field->types schema, or raise.

    The one validator behind every structured artifact this library
    reads: unknown keys, missing keys, and wrong types (bool never
    satisfies an int/float slot) all raise ``error`` — by default
    :class:`~repro.errors.SchemaError` for campaign records, but other
    schema owners (the trace event stream in :mod:`repro.obs.events`)
    pass their own hierarchy so callers can keep catching one type.
    """
    if not isinstance(obj, dict):
        raise error(f"{where}: {path} must be an object, got {type(obj).__name__}")
    unknown = set(obj) - set(fields)
    if unknown:
        raise error(f"{where}: unknown key(s) {sorted(unknown)} in {path}")
    for key, allowed in fields.items():
        if key not in obj:
            raise error(f"{where}: missing key {path}.{key}")
        if not _type_ok(obj[key], allowed):
            raise error(
                f"{where}: {path}.{key} must be {_type_names(allowed)}, "
                f"got {type(obj[key]).__name__}"
            )


# The record validators below always raise SchemaError.
_check_mapping = check_mapping


def _check_params(obj: Mapping[str, Any], path: str, where: str) -> None:
    for key, value in obj.items():
        if not isinstance(key, str):
            raise SchemaError(f"{where}: {path} keys must be strings, got {key!r}")
        if not isinstance(value, _PARAM_SCALARS):
            raise SchemaError(
                f"{where}: {path}.{key} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )


def migrate_record(record: Mapping[str, Any], *, where: str = "record") -> dict:
    """Upgrade a record written by an older engine to the current schema.

    * v1 streams carry no ``spec_version`` key — the stamp is added.
    * Streams from a *newer* engine are refused: silently misreading a
      schema we do not know is exactly what the version stamp prevents.

    Returns a (shallow) copy at :data:`RECORD_VERSION`; the input mapping is
    never mutated.
    """
    if not isinstance(record, Mapping):
        raise SchemaError(f"{where}: record must be an object, got {type(record).__name__}")
    out = dict(record)
    version = out.get("spec_version", 1)
    if not _type_ok(version, (int,)):
        raise SchemaError(
            f"{where}: spec_version must be int, got {type(version).__name__}"
        )
    if version > RECORD_VERSION:
        raise SchemaError(
            f"{where}: spec_version {version} is newer than this reader "
            f"(understands <= {RECORD_VERSION})"
        )
    # v1 -> v2: the only change is the stamp itself.
    out["spec_version"] = RECORD_VERSION
    return out


def validate_record(record: Mapping[str, Any], *, where: str = "record") -> dict:
    """Check one record against the DESIGN.md §3 schema; return it as a dict.

    Strict: unknown keys anywhere, missing keys, wrong types (including
    bool-for-int), bad status values, negative bit counts, and non-numeric
    timing entries all raise :class:`~repro.errors.SchemaError`.
    """
    if not isinstance(record, Mapping):
        raise SchemaError(f"{where}: record must be an object, got {type(record).__name__}")
    record = dict(record)
    _check_mapping(record, _TOP_FIELDS, "record", where)
    if record["spec_version"] != RECORD_VERSION:
        raise SchemaError(
            f"{where}: spec_version must be {RECORD_VERSION}, got "
            f"{record['spec_version']} (run migrate_record first)"
        )

    spec = record["spec"]
    _check_mapping(spec, _SPEC_FIELDS, "spec", where)
    _check_params(spec["family_params"], "spec.family_params", where)
    _check_params(spec["protocol_params"], "spec.protocol_params", where)
    if spec["faults"] is not None:
        _check_mapping(spec["faults"], _FAULT_SPEC_FIELDS, "spec.faults", where)
    if spec["n"] < 1:
        raise SchemaError(f"{where}: spec.n must be >= 1, got {spec['n']}")

    result = record["result"]
    _check_mapping(result, _RESULT_FIELDS, "result", where)
    if result["status"] not in _STATUSES:
        raise SchemaError(
            f"{where}: result.status must be one of {_STATUSES}, "
            f"got {result['status']!r}"
        )
    _check_mapping(result["faults"], _FAULT_COUNTER_FIELDS, "result.faults", where)
    for key in _NON_NEGATIVE_RESULT_FIELDS:
        if result[key] < 0:
            raise SchemaError(f"{where}: result.{key} must be >= 0, got {result[key]}")
    for key, value in result["faults"].items():
        if value < 0:
            raise SchemaError(f"{where}: result.faults.{key} must be >= 0, got {value}")

    for key, value in record["timing"].items():
        if not isinstance(key, str):
            raise SchemaError(f"{where}: timing keys must be strings, got {key!r}")
        if not _type_ok(value, (int, float)):
            raise SchemaError(
                f"{where}: timing.{key} must be a number, got {type(value).__name__}"
            )
    return record


def iter_records(
    path: str | pathlib.Path, *, migrate: bool = True
) -> Iterator[dict]:
    """Stream validated records from a JSONL file, one line at a time.

    Lazy: the file is read line by line, so arbitrarily large campaign
    files cost O(1) memory.  Blank lines are skipped.  With ``migrate``
    (the default) v1 streams are upgraded on the fly; ``migrate=False``
    demands records already at :data:`RECORD_VERSION` — the conformance
    mode used to test the engine's own emission.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise SchemaError(f"records file {path} does not exist")
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path.name}:{lineno}"
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{where}: not valid JSON: {exc}") from None
            if migrate:
                raw = migrate_record(raw, where=where)
            yield validate_record(raw, where=where)


def load_records(path: str | pathlib.Path, *, migrate: bool = True) -> list[dict]:
    """Eager counterpart of :func:`iter_records`."""
    return list(iter_records(path, migrate=migrate))


def canonical_line(record: Mapping[str, Any]) -> str:
    """The canonical byte form of one record (sorted keys, no trailing space)."""
    return json.dumps(record, sort_keys=True)


def write_records(
    path: str | pathlib.Path, records: Iterable[Mapping[str, Any]]
) -> pathlib.Path:
    """Validate and write records as canonical JSONL; returns the path.

    The inverse of :func:`load_records`: ``write_records(p, load_records(p))``
    reproduces the engine's bytes (the engine also writes ``sort_keys``).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for i, record in enumerate(records, start=1):
            validated = validate_record(record, where=f"{path.name}:{i}")
            fh.write(canonical_line(validated) + "\n")
    return path


def spec_content_hash(spec: Mapping[str, Any]) -> str:
    """Content hash of a record's ``spec`` section (see ``RunSpec.content_hash``).

    The alignment key for :mod:`repro.results.diff` and
    :mod:`repro.results.baseline`: two campaigns match runs on the physical
    spec, not on file order or scenario labels.
    """
    return RunSpec.from_dict(spec).content_hash()


def index_by_spec_hash(
    records: Iterable[Mapping[str, Any]], *, label: str = "campaign"
) -> dict[str, Mapping[str, Any]]:
    """Index records by :func:`spec_content_hash`; duplicates are an error.

    Campaigns deduplicate specs before running, so a duplicate hash means
    the file was concatenated or hand-edited — aligning on it would
    silently drop a run.
    """
    out: dict[str, Mapping[str, Any]] = {}
    for record in records:
        key = spec_content_hash(record["spec"])
        if key in out:
            raise SchemaError(
                f"{label} contains duplicate run {key}; campaigns deduplicate specs"
            )
        out[key] = record
    return out


def within_tolerance(baseline: int, candidate: int, tolerance: float) -> bool:
    """The gate's relative comparison: ``|c - b| <= tol * max(|b|, 1)``.

    One definition shared by :mod:`repro.results.diff` and
    :mod:`repro.results.baseline` so the two CI gates cannot drift apart.
    """
    return abs(candidate - baseline) <= tolerance * max(abs(baseline), 1)
