"""Group-by analytics over campaign records.

Campaigns answer the paper's claims *in aggregate*: message size scaling
(Lemma 2's ``O(k² log n)``), exactness rates (Theorem 5), fault outcomes.
:func:`aggregate` groups validated records by any subset of spec axes and
computes min / mean / max / p95 of the bit counts, exactness and status
rates, fault-event totals, and a Lemma-2-style normalization column
``max_message_bits / (k² · log₂ n)`` so the bound shows up as a flat line
across ``n``.

Group state is **bounded**: no column ever materializes its value list.
Each numeric column keeps a running min/max/count, an exactly-rounded sum
(integer arithmetic for the bit columns, Shewchuk partials — the
``math.fsum`` algorithm — for float columns), and a
:class:`QuantileSketch` for p95.  The sketch is exact up to
:data:`SKETCH_EXACT_LIMIT` distinct values per group (where the reported
p95 equals :func:`percentile` bit for bit) and beyond that spills to
log-spaced buckets of :data:`SKETCH_SUBBUCKETS` sub-buckets per octave,
bounding the relative error of the reported p95 (which is always an
observed value) by ``2^(1/SKETCH_SUBBUCKETS) - 1`` ≈ 9.1%.

Every piece of group state is **order-independent**: counts and integer
sums commute, exact float summation is exactly rounded regardless of feed
order, and the sketch's exact→spill transition depends only on the value
multiset.  That is what lets the incremental :class:`Aggregator` — fed
shard streams as they land, in any shard factorization — produce output
bit-for-bit equal to a batch :func:`aggregate` over the merged file
(pinned by the fuzz suite in ``tests/store``).

Everything here is deterministic given the records: means are rounded to a
fixed precision, groups are emitted in sorted key order, and timing columns
are opt-in (they are the one nondeterministic part of a record).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError

__all__ = [
    "DEFAULT_AXES",
    "SKETCH_EXACT_LIMIT",
    "SKETCH_SUBBUCKETS",
    "Stats",
    "QuantileSketch",
    "RunningStats",
    "Aggregator",
    "percentile",
    "normalized_bits",
    "aggregate",
    "aggregate_table",
]

#: The spec axes a report may group by ("faults" is the compact label below).
GROUPABLE_AXES = (
    "scenario", "family", "n", "seed", "protocol", "shuffle_delivery",
    "budget_bits", "faults",
)

DEFAULT_AXES = ("protocol", "family", "n")

#: Rounding applied to every derived float, so reports are byte-stable.
_PRECISION = 6

#: Distinct values per group below which the p95 sketch is exact.
SKETCH_EXACT_LIMIT = 4096

#: Log-bucket resolution after spilling: sub-buckets per powers-of-two
#: octave.  The reported quantile is an observed value from the selected
#: bucket, so its relative error is at most ``2**(1/SKETCH_SUBBUCKETS)-1``.
SKETCH_SUBBUCKETS = 8


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise SchemaError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise SchemaError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Stats:
    """min / mean / max / p95 summary of one numeric column."""

    count: int
    min: float
    mean: float
    max: float
    p95: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stats":
        """Summarize a non-empty sequence."""
        if not values:
            raise SchemaError("Stats.of() needs at least one value")
        return cls(
            count=len(values),
            min=min(values),
            mean=round(sum(values) / len(values), _PRECISION),
            max=max(values),
            p95=percentile(values, 95.0),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p95": self.p95,
        }


class QuantileSketch:
    """Bounded, order-independent quantile state for one numeric column.

    Exact mode keeps a ``value -> count`` table; nearest-rank quantiles
    over its sorted keys equal :func:`percentile` of the full value list.
    Once the table exceeds :data:`SKETCH_EXACT_LIMIT` distinct values it
    spills into log-spaced buckets (``SKETCH_SUBBUCKETS`` per octave),
    each holding a count and the maximum observed value; a quantile then
    returns the selected bucket's max — still an observed value, with
    relative rank-value error bounded by ``2**(1/SKETCH_SUBBUCKETS)-1``.

    All updates commute (counts add, maxes max, and the spill threshold
    depends only on the distinct-value set), so the final state — and
    every reported quantile — is independent of feed order.
    """

    __slots__ = ("count", "_exact", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self._exact: dict | None = {}
        self._buckets: dict[tuple, list] | None = None

    @property
    def spilled(self) -> bool:
        """True once the exact table has given way to log buckets."""
        return self._buckets is not None

    @staticmethod
    def _bucket_key(value) -> tuple:
        # (sign, index) sorted by true numeric order: negatives ascend as
        # |value| descends, hence the flipped index.
        if value == 0:
            return (0, 0)
        idx = math.floor(math.log2(abs(value)) * SKETCH_SUBBUCKETS)
        return (1, idx) if value > 0 else (-1, -idx)

    def _spill(self) -> None:
        assert self._exact is not None
        buckets: dict[tuple, list] = {}
        for value, count in self._exact.items():
            key = self._bucket_key(value)
            slot = buckets.get(key)
            if slot is None:
                buckets[key] = [count, value]
            else:
                slot[0] += count
                if value > slot[1]:
                    slot[1] = value
        self._exact, self._buckets = None, buckets

    def feed(self, value) -> None:
        """Absorb one observation."""
        self.count += 1
        if self._exact is not None:
            self._exact[value] = self._exact.get(value, 0) + 1
            if len(self._exact) > SKETCH_EXACT_LIMIT:
                self._spill()
            return
        assert self._buckets is not None
        key = self._bucket_key(value)
        slot = self._buckets.get(key)
        if slot is None:
            self._buckets[key] = [1, value]
        else:
            slot[0] += 1
            if value > slot[1]:
                slot[1] = value

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (commutative, like feeding its values)."""
        if other._exact is not None:
            if self._exact is not None:
                for value, count in other._exact.items():
                    self._exact[value] = self._exact.get(value, 0) + count
                if len(self._exact) > SKETCH_EXACT_LIMIT:
                    self._spill()
            else:
                for value, count in other._exact.items():
                    key = self._bucket_key(value)
                    slot = self._buckets.get(key)  # type: ignore[union-attr]
                    if slot is None:
                        self._buckets[key] = [count, value]  # type: ignore[index]
                    else:
                        slot[0] += count
                        if value > slot[1]:
                            slot[1] = value
        else:
            if self._exact is not None:
                self._spill()
            for key, (count, vmax) in other._buckets.items():  # type: ignore[union-attr]
                slot = self._buckets.get(key)  # type: ignore[union-attr]
                if slot is None:
                    self._buckets[key] = [count, vmax]  # type: ignore[index]
                else:
                    slot[0] += count
                    if vmax > slot[1]:
                        slot[1] = vmax
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (q in [0, 100]) of everything fed so far."""
        if self.count == 0:
            raise SchemaError("quantile of an empty sketch")
        if not 0.0 <= q <= 100.0:
            raise SchemaError(f"quantile q must be in [0, 100], got {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        if self._exact is not None:
            for value in sorted(self._exact):
                seen += self._exact[value]
                if seen >= rank:
                    return value
        else:
            for key in sorted(self._buckets):  # type: ignore[arg-type]
                count, vmax = self._buckets[key]  # type: ignore[index]
                seen += count
                if seen >= rank:
                    return vmax
        raise AssertionError("rank exceeded sketch population")  # pragma: no cover


class RunningStats:
    """Bounded replacement for a materialized per-group value list.

    Running count/min/max, an exactly-rounded sum — plain integer
    arithmetic when ``floats=False`` (the bit-count columns), Shewchuk
    partial sums (the ``math.fsum`` algorithm, exactly rounded and
    therefore order-independent) when ``floats=True`` — and a
    :class:`QuantileSketch` for p95.  Float columns coerce every
    observation to ``float`` so equal int/float observations cannot
    produce order-dependent JSON spellings.
    """

    __slots__ = ("count", "_min", "_max", "_floats", "_int_total",
                 "_partials", "sketch")

    def __init__(self, *, floats: bool = False) -> None:
        self.count = 0
        self._min = self._max = None
        self._floats = floats
        self._int_total = 0
        self._partials: list[float] = []
        self.sketch = QuantileSketch()

    def feed(self, value) -> None:
        """Absorb one observation."""
        if self._floats:
            value = float(value)
            # Shewchuk's error-free transformation: fold `value` into the
            # non-overlapping partials so their sum stays exact.
            partials = self._partials
            i = 0
            x = value
            for y in partials:
                if abs(x) < abs(y):
                    x, y = y, x
                hi = x + y
                lo = y - (hi - x)
                if lo:
                    partials[i] = lo
                    i += 1
                x = hi
            partials[i:] = [x]
        else:
            self._int_total += value
        self.count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        self.sketch.feed(value)

    def merge(self, other: "RunningStats") -> None:
        """Fold another column in (same ``floats`` mode)."""
        if other.count == 0:
            return
        if self._floats:
            for p in other._partials:
                partials = self._partials
                i = 0
                x = p
                for y in partials:
                    if abs(x) < abs(y):
                        x, y = y, x
                    hi = x + y
                    lo = y - (hi - x)
                    if lo:
                        partials[i] = lo
                        i += 1
                    x = hi
                partials[i:] = [x]
        else:
            self._int_total += other._int_total
        self.count += other.count
        if self._min is None or (other._min is not None and other._min < self._min):
            self._min = other._min
        if self._max is None or (other._max is not None and other._max > self._max):
            self._max = other._max
        self.sketch.merge(other.sketch)

    def stats(self) -> dict:
        """The :class:`Stats`-shaped summary dict of everything fed."""
        if self.count == 0:
            raise SchemaError("stats of an empty column")
        total = math.fsum(self._partials) if self._floats else self._int_total
        return {
            "count": self.count,
            "min": self._min,
            "mean": round(total / self.count, _PRECISION),
            "max": self._max,
            "p95": self.sketch.quantile(95.0),
        }


def normalized_bits(record: Mapping) -> float | None:
    """``max_message_bits / (k² log₂ n)`` for one record (Lemma 2 units).

    ``k`` is the protocol's ``k`` parameter (1 when the protocol has none),
    ``n`` the spec size.  ``None`` when the normalization is undefined
    (``n < 2``) or the run produced no message bits to normalize.
    """
    spec = record["spec"]
    n = spec["n"]
    if n < 2:
        return None
    k = spec["protocol_params"].get("k", 1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        return None
    bits = record["result"]["max_message_bits"]
    if bits == 0:
        # Nothing was measured (failed runs report 0 bits) — a zero here
        # would drag the group mean toward 0 and flatten the diagnostic.
        return None
    return round(bits / (k * k * math.log2(n)), _PRECISION)


def _fault_label(spec: Mapping) -> str:
    f = spec["faults"]
    if f is None:
        return "none"
    return (f"drop={f['drop']},dup={f['duplicate']},"
            f"flip={f['flip']},seed={f['seed']}")


def _axis_value(record: Mapping, axis: str):
    if axis == "faults":
        return _fault_label(record["spec"])
    return record["spec"][axis]


def _sort_key(value) -> tuple:
    # Axes can mix types across groups (e.g. budget_bits int/None); sort
    # by type class first so the comparison never raises, numerically
    # within numbers so n=16 precedes n=128.
    if isinstance(value, bool):
        return ("bool", 0, str(value))
    if isinstance(value, (int, float)):
        return ("number", value, "")
    return (type(value).__name__, 0, str(value))


class _GroupState:
    """All bounded state for one group — shared by the batch and
    incremental paths, which is what makes their outputs equal by
    construction."""

    __slots__ = ("runs", "statuses", "fault_events", "exact_true",
                 "exact_false", "max_bits", "total_bits", "norms", "walls")

    def __init__(self) -> None:
        self.runs = 0
        self.statuses: dict[str, int] = {}
        self.fault_events = {"dropped": 0, "duplicated": 0, "flipped": 0}
        self.exact_true = self.exact_false = 0
        self.max_bits = RunningStats()
        self.total_bits = RunningStats()
        self.norms = RunningStats(floats=True)
        self.walls = RunningStats(floats=True)

    def feed(self, record: Mapping) -> None:
        res = record["result"]
        self.runs += 1
        self.statuses[res["status"]] = self.statuses.get(res["status"], 0) + 1
        for name in self.fault_events:
            self.fault_events[name] += res["faults"][name]
        if res["exact"] is True:
            self.exact_true += 1
        elif res["exact"] is False:
            self.exact_false += 1
        self.max_bits.feed(res["max_message_bits"])
        self.total_bits.feed(res["total_message_bits"])
        norm = normalized_bits(record)
        if norm is not None:
            self.norms.feed(norm)
        wall = record["timing"].get("wall_seconds")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            self.walls.feed(wall)

    def finalize(self, key: tuple, by: Sequence[str],
                 *, include_timing: bool) -> dict:
        checked = self.exact_true + self.exact_false
        group = {
            "group": dict(zip(by, key)),
            "runs": self.runs,
            "statuses": dict(sorted(self.statuses.items())),
            "exact": {
                "true": self.exact_true,
                "false": self.exact_false,
                "checked": checked,
                "rate": round(self.exact_true / checked, _PRECISION) if checked else None,
            },
            "fault_events": dict(self.fault_events),
            "max_message_bits": self.max_bits.stats(),
            "total_message_bits": self.total_bits.stats(),
            "bits_per_k2_log_n": self.norms.stats() if self.norms.count else None,
        }
        if include_timing:
            group["wall_seconds"] = self.walls.stats() if self.walls.count else None
        return group


class Aggregator:
    """Incremental group-by aggregation: feed records as shards land.

    The maintained-state counterpart of :func:`aggregate` — the serve
    ``/summary`` endpoint and merge-time compaction feed every durable
    record once and snapshot :meth:`groups` on demand, instead of
    re-scanning the stream per question.  Because all group state is
    order-independent (see the module docstring), the snapshot after
    feeding any interleaving of the shard streams is bit-for-bit the
    batch result over the merged file.
    """

    def __init__(
        self,
        *,
        by: Sequence[str] = DEFAULT_AXES,
        include_timing: bool = False,
    ) -> None:
        by = tuple(by)
        if not by:
            raise SchemaError("aggregate needs at least one group-by axis")
        unknown = [a for a in by if a not in GROUPABLE_AXES]
        if unknown:
            raise SchemaError(
                f"unknown group-by axis {unknown}; known: {', '.join(GROUPABLE_AXES)}"
            )
        self.by = by
        self.include_timing = include_timing
        self.records = 0
        self._groups: dict[tuple, _GroupState] = {}

    def feed(self, record: Mapping) -> None:
        """Absorb one validated record."""
        key = tuple(_axis_value(record, a) for a in self.by)
        state = self._groups.get(key)
        if state is None:
            state = self._groups[key] = _GroupState()
        state.feed(record)
        self.records += 1

    def feed_many(self, records: Iterable[Mapping]) -> None:
        for record in records:
            self.feed(record)

    def groups(self) -> list[dict]:
        """Snapshot the aggregated groups (non-destructive, repeatable)."""
        if not self._groups:
            raise SchemaError("aggregate over zero records")
        return [
            self._groups[key].finalize(
                key, self.by, include_timing=self.include_timing
            )
            for key in sorted(
                self._groups, key=lambda k: tuple(_sort_key(v) for v in k)
            )
        ]


def aggregate(
    records: Iterable[Mapping],
    *,
    by: Sequence[str] = DEFAULT_AXES,
    include_timing: bool = False,
) -> list[dict]:
    """Group records by spec axes and summarize each group.

    Returns one dict per group, in sorted group-key order::

        {"group": {axis: value, ...},
         "runs": 7, "statuses": {"ok": 7},
         "exact": {"true": 5, "false": 0, "checked": 5, "rate": 1.0},
         "fault_events": {"dropped": 0, "duplicated": 0, "flipped": 0},
         "max_message_bits": {...Stats...},
         "total_message_bits": {...Stats...},
         "bits_per_k2_log_n": {...Stats...} | None,
         "wall_seconds": {...Stats...}}            # only with include_timing

    ``by`` may name any of the spec axes (plus the synthetic ``faults``
    label); an unknown axis raises :class:`~repro.errors.SchemaError`.
    The batch convenience over :class:`Aggregator`: one pass, bounded
    per-group state, never the record dicts.
    """
    agg = Aggregator(by=by, include_timing=include_timing)
    agg.feed_many(records)
    return agg.groups()


def aggregate_table(
    groups: Sequence[Mapping],
    by: Sequence[str],
    *,
    title: str = "campaign report",
    include_timing: bool = False,
) -> tuple[str, list[str], list[list]]:
    """Render aggregated groups as ``(title, headers, rows)``.

    The shape :func:`repro.analysis.tables.format_table` consumes — the
    results layer and the experiment harness share one table pipeline.
    """
    headers = list(by) + [
        "runs", "ok", "viol", "err", "exact",
        "max bits (mean)", "max bits (p95)", "total bits (mean)",
        "bits/(k^2 lg n)",
    ]
    if include_timing:
        headers.append("wall s (mean)")
    rows: list[list] = []
    for g in groups:
        statuses = g["statuses"]
        exact = g["exact"]
        row = [g["group"][a] for a in by] + [
            g["runs"],
            statuses.get("ok", 0),
            statuses.get("violation", 0),
            statuses.get("error", 0),
            f"{exact['true']}/{exact['checked']}" if exact["checked"] else "-",
            g["max_message_bits"]["mean"],
            g["max_message_bits"]["p95"],
            g["total_message_bits"]["mean"],
            g["bits_per_k2_log_n"]["mean"] if g["bits_per_k2_log_n"] else "-",
        ]
        if include_timing:
            wall = g.get("wall_seconds")
            row.append(wall["mean"] if wall else "-")
        rows.append(row)
    return title, headers, rows
