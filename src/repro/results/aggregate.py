"""Group-by analytics over campaign records.

Campaigns answer the paper's claims *in aggregate*: message size scaling
(Lemma 2's ``O(k² log n)``), exactness rates (Theorem 5), fault outcomes.
:func:`aggregate` groups validated records by any subset of spec axes and
computes min / mean / max / p95 of the bit counts, exactness and status
rates, fault-event totals, and a Lemma-2-style normalization column
``max_message_bits / (k² · log₂ n)`` so the bound shows up as a flat line
across ``n``.

Everything here is deterministic given the records: means are rounded to a
fixed precision, groups are emitted in sorted key order, and timing columns
are opt-in (they are the one nondeterministic part of a record).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError

__all__ = [
    "DEFAULT_AXES",
    "Stats",
    "percentile",
    "normalized_bits",
    "aggregate",
    "aggregate_table",
]

#: The spec axes a report may group by ("faults" is the compact label below).
GROUPABLE_AXES = (
    "scenario", "family", "n", "seed", "protocol", "shuffle_delivery",
    "budget_bits", "faults",
)

DEFAULT_AXES = ("protocol", "family", "n")

#: Rounding applied to every derived float, so reports are byte-stable.
_PRECISION = 6


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise SchemaError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise SchemaError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Stats:
    """min / mean / max / p95 summary of one numeric column."""

    count: int
    min: float
    mean: float
    max: float
    p95: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stats":
        """Summarize a non-empty sequence."""
        if not values:
            raise SchemaError("Stats.of() needs at least one value")
        return cls(
            count=len(values),
            min=min(values),
            mean=round(sum(values) / len(values), _PRECISION),
            max=max(values),
            p95=percentile(values, 95.0),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p95": self.p95,
        }


def normalized_bits(record: Mapping) -> float | None:
    """``max_message_bits / (k² log₂ n)`` for one record (Lemma 2 units).

    ``k`` is the protocol's ``k`` parameter (1 when the protocol has none),
    ``n`` the spec size.  ``None`` when the normalization is undefined
    (``n < 2``) or the run produced no message bits to normalize.
    """
    spec = record["spec"]
    n = spec["n"]
    if n < 2:
        return None
    k = spec["protocol_params"].get("k", 1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        return None
    bits = record["result"]["max_message_bits"]
    if bits == 0:
        # Nothing was measured (failed runs report 0 bits) — a zero here
        # would drag the group mean toward 0 and flatten the diagnostic.
        return None
    return round(bits / (k * k * math.log2(n)), _PRECISION)


def _fault_label(spec: Mapping) -> str:
    f = spec["faults"]
    if f is None:
        return "none"
    return (f"drop={f['drop']},dup={f['duplicate']},"
            f"flip={f['flip']},seed={f['seed']}")


def _axis_value(record: Mapping, axis: str):
    if axis == "faults":
        return _fault_label(record["spec"])
    return record["spec"][axis]


def _sort_key(value) -> tuple:
    # Axes can mix types across groups (e.g. budget_bits int/None); sort
    # by type class first so the comparison never raises, numerically
    # within numbers so n=16 precedes n=128.
    if isinstance(value, bool):
        return ("bool", 0, str(value))
    if isinstance(value, (int, float)):
        return ("number", value, "")
    return (type(value).__name__, 0, str(value))


def aggregate(
    records: Iterable[Mapping],
    *,
    by: Sequence[str] = DEFAULT_AXES,
    include_timing: bool = False,
) -> list[dict]:
    """Group records by spec axes and summarize each group.

    Returns one dict per group, in sorted group-key order::

        {"group": {axis: value, ...},
         "runs": 7, "statuses": {"ok": 7},
         "exact": {"true": 5, "false": 0, "checked": 5, "rate": 1.0},
         "fault_events": {"dropped": 0, "duplicated": 0, "flipped": 0},
         "max_message_bits": {...Stats...},
         "total_message_bits": {...Stats...},
         "bits_per_k2_log_n": {...Stats...} | None,
         "wall_seconds": {...Stats...}}            # only with include_timing

    ``by`` may name any of the spec axes (plus the synthetic ``faults``
    label); an unknown axis raises :class:`~repro.errors.SchemaError`.
    """
    by = tuple(by)
    if not by:
        raise SchemaError("aggregate needs at least one group-by axis")
    unknown = [a for a in by if a not in GROUPABLE_AXES]
    if unknown:
        raise SchemaError(
            f"unknown group-by axis {unknown}; known: {', '.join(GROUPABLE_AXES)}"
        )

    # Streaming-friendly: only the per-group scalar columns are retained,
    # never the record dicts — a million-record file costs a few lists of
    # numbers per group.
    class _Acc:
        __slots__ = ("runs", "statuses", "fault_events", "exact_true",
                     "exact_false", "max_bits", "total_bits", "norms", "walls")

        def __init__(self) -> None:
            self.runs = 0
            self.statuses: dict[str, int] = {}
            self.fault_events = {"dropped": 0, "duplicated": 0, "flipped": 0}
            self.exact_true = self.exact_false = 0
            self.max_bits: list[int] = []
            self.total_bits: list[int] = []
            self.norms: list[float] = []
            self.walls: list[float] = []

    groups: dict[tuple, _Acc] = {}
    for record in records:
        key = tuple(_axis_value(record, a) for a in by)
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = _Acc()
        res = record["result"]
        acc.runs += 1
        acc.statuses[res["status"]] = acc.statuses.get(res["status"], 0) + 1
        for name in acc.fault_events:
            acc.fault_events[name] += res["faults"][name]
        if res["exact"] is True:
            acc.exact_true += 1
        elif res["exact"] is False:
            acc.exact_false += 1
        acc.max_bits.append(res["max_message_bits"])
        acc.total_bits.append(res["total_message_bits"])
        norm = normalized_bits(record)
        if norm is not None:
            acc.norms.append(norm)
        wall = record["timing"].get("wall_seconds")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            acc.walls.append(wall)
    if not groups:
        raise SchemaError("aggregate over zero records")

    out = []
    for key in sorted(groups, key=lambda k: tuple(_sort_key(v) for v in k)):
        acc = groups[key]
        checked = acc.exact_true + acc.exact_false
        group = {
            "group": dict(zip(by, key)),
            "runs": acc.runs,
            "statuses": dict(sorted(acc.statuses.items())),
            "exact": {
                "true": acc.exact_true,
                "false": acc.exact_false,
                "checked": checked,
                "rate": round(acc.exact_true / checked, _PRECISION) if checked else None,
            },
            "fault_events": acc.fault_events,
            "max_message_bits": Stats.of(acc.max_bits).to_dict(),
            "total_message_bits": Stats.of(acc.total_bits).to_dict(),
            "bits_per_k2_log_n": Stats.of(acc.norms).to_dict() if acc.norms else None,
        }
        if include_timing:
            group["wall_seconds"] = Stats.of(acc.walls).to_dict() if acc.walls else None
        out.append(group)
    return out


def aggregate_table(
    groups: Sequence[Mapping],
    by: Sequence[str],
    *,
    title: str = "campaign report",
    include_timing: bool = False,
) -> tuple[str, list[str], list[list]]:
    """Render aggregated groups as ``(title, headers, rows)``.

    The shape :func:`repro.analysis.tables.format_table` consumes — the
    results layer and the experiment harness share one table pipeline.
    """
    headers = list(by) + [
        "runs", "ok", "viol", "err", "exact",
        "max bits (mean)", "max bits (p95)", "total bits (mean)",
        "bits/(k^2 lg n)",
    ]
    if include_timing:
        headers.append("wall s (mean)")
    rows: list[list] = []
    for g in groups:
        statuses = g["statuses"]
        exact = g["exact"]
        row = [g["group"][a] for a in by] + [
            g["runs"],
            statuses.get("ok", 0),
            statuses.get("violation", 0),
            statuses.get("error", 0),
            f"{exact['true']}/{exact['checked']}" if exact["checked"] else "-",
            g["max_message_bits"]["mean"],
            g["max_message_bits"]["p95"],
            g["total_message_bits"]["mean"],
            g["bits_per_k2_log_n"]["mean"] if g["bits_per_k2_log_n"] else "-",
        ]
        if include_timing:
            wall = g.get("wall_seconds")
            row.append(wall["mean"] if wall else "-")
        rows.append(row)
    return title, headers, rows
