"""The thin client: stdlib ``http.client`` against a running daemon.

:class:`ServeClient` is what the ``repro submit`` / ``repro jobs`` /
``repro job`` CLI verbs and :meth:`repro.api.Session.submit` speak through;
:class:`RemoteJob` is the handle a submission returns — poll it, stream its
records, fetch its aggregate, cancel it.

Error mapping mirrors the server's: 404 raises
:class:`~repro.errors.JobNotFound`, 429 raises
:class:`~repro.errors.QueueFull` (with the server's ``Retry-After`` as
``retry_after``), any other non-2xx raises
:class:`~repro.errors.ServeError` with the server's error text; a daemon
that is not listening at all raises :class:`~repro.errors.ServeError` too
— the CLI maps that to exit code 2 (a connection problem, not a domain
failure).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from collections.abc import Iterator
from typing import Any

from repro.errors import JobNotFound, QueueFull, ServeError
from repro.serve.store import TERMINAL_STATES

__all__ = ["ServeClient", "RemoteJob", "DEFAULT_URL"]

DEFAULT_URL = "http://127.0.0.1:7341"

#: Sentinel: "use the client's default timeout" (None means "no timeout").
_DEFAULT_TIMEOUT: Any = object()


class ServeClient:
    """One daemon endpoint; every call opens a fresh local connection."""

    def __init__(self, url: str = DEFAULT_URL, *, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ServeError(
                f"unsupported scheme {parsed.scheme!r} in {url!r} "
                "(the daemon speaks plain http)"
            )
        if not parsed.hostname:
            raise ServeError(f"no host in serve URL {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _connect(self, timeout: float | None = _DEFAULT_TIMEOUT) -> http.client.HTTPConnection:
        # ``None`` means "no socket timeout" (a following stream may idle
        # indefinitely); the sentinel default means the client's timeout.
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is _DEFAULT_TIMEOUT else timeout,
        )

    def _request(
        self, method: str, path: str, payload: Any = None,
        *, timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> Any:
        conn = self._connect(timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServeError(
                f"cannot reach the repro daemon at {self.url}: {exc}"
            ) from exc
        finally:
            conn.close()
        return self._decode(resp, raw, path)

    def _decode(self, resp: http.client.HTTPResponse, raw: bytes, path: str) -> Any:
        try:
            payload = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        if 200 <= resp.status < 300:
            return payload
        error = (payload or {}).get("error") if isinstance(payload, dict) \
            else None
        error = error or f"HTTP {resp.status} from {path}"
        if resp.status == 404:
            raise JobNotFound(error)
        if resp.status == 429:
            try:
                retry_after = float(resp.headers.get("Retry-After", "1"))
            except ValueError:
                retry_after = 1.0
            raise QueueFull(error, retry_after=retry_after)
        raise ServeError(error)

    # ------------------------------------------------------------------ #
    # API calls
    # ------------------------------------------------------------------ #

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            raw = resp.read()
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServeError(
                f"cannot reach the repro daemon at {self.url}: {exc}"
            ) from exc
        finally:
            conn.close()
        if resp.status != 200:
            raise ServeError(f"HTTP {resp.status} from /metrics")
        return raw.decode()

    def submit(
        self,
        campaign: str | None = None,
        *,
        spec: dict[str, Any] | None = None,
        shards: int = 1,
        priority: str = "normal",
        executor: str | None = None,
        jobs: int | None = None,
        use_cache: bool = True,
    ) -> "RemoteJob":
        """Submit a builtin campaign name or an inline spec; returns a handle."""
        if (campaign is None) == (spec is None):
            raise ServeError(
                "submit() needs exactly one of campaign= (a builtin name) "
                "or spec= (a campaign spec dict)"
            )
        payload: dict[str, Any] = {
            "shards": shards, "priority": priority, "use_cache": use_cache,
        }
        if campaign is not None:
            payload["campaign"] = campaign
        else:
            payload["spec"] = spec
        if executor is not None:
            payload["executor"] = executor
        if jobs is not None:
            payload["jobs"] = jobs
        view = self._request("POST", "/v1/jobs", payload)
        return RemoteJob(self, view)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def summary(
        self, job_id: str, *, by: tuple[str, ...] | list[str] | None = None,
    ) -> dict[str, Any]:
        path = f"/v1/jobs/{job_id}/summary"
        if by:
            path += "?by=" + urllib.parse.quote(",".join(by))
        return self._request("GET", path)

    def records(
        self, job_id: str, *, follow: bool = False,
        timeout: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield record dicts; with ``follow`` the stream tails the job live.

        A following read holds its socket open until the job reaches a
        terminal state, so ``timeout`` here is a per-read socket timeout
        (default: no limit while following, the client default otherwise).
        """
        if timeout is None:
            timeout = None if follow else self.timeout
        conn = self._connect(timeout)
        try:
            suffix = "?follow=1" if follow else ""
            conn.request("GET", f"/v1/jobs/{job_id}/records{suffix}")
            resp = conn.getresponse()
            if resp.status != 200:
                self._decode(resp, resp.read(), f"/v1/jobs/{job_id}/records")
            # http.client de-chunks transparently; readline() yields each
            # JSONL record as the server flushes it.
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServeError(
                f"records stream from {self.url} broke: {exc}"
            ) from exc
        finally:
            conn.close()

    def wait(
        self, job_id: str, *, timeout: float | None = 120.0, poll: float = 0.1,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final view."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in TERMINAL_STATES:
                return view
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll)


class RemoteJob:
    """A submitted job: the client-side handle ``submit()`` returns."""

    def __init__(self, client: ServeClient, view: dict[str, Any]) -> None:
        self.client = client
        self.id: str = view["id"]
        self.view = view

    @property
    def state(self) -> str:
        return self.view["state"]

    def refresh(self) -> dict[str, Any]:
        self.view = self.client.job(self.id)
        return self.view

    def wait(self, *, timeout: float | None = 120.0, poll: float = 0.1) -> dict[str, Any]:
        self.view = self.client.wait(self.id, timeout=timeout, poll=poll)
        return self.view

    def records(self, *, follow: bool = False) -> Iterator[dict[str, Any]]:
        return self.client.records(self.id, follow=follow)

    def summary(self, *, by: tuple[str, ...] | list[str] | None = None) -> dict[str, Any]:
        return self.client.summary(self.id, by=by)

    def cancel(self) -> dict[str, Any]:
        self.view = self.client.cancel(self.id)
        return self.view

    def __repr__(self) -> str:  # pragma: no cover
        return f"RemoteJob(id={self.id!r}, state={self.view.get('state')!r})"
