"""The async scheduler: admission control, priorities, a shard-pulling pool.

One :class:`Scheduler` owns the service's work queue.  The unit of work is
a **shard assignment** ``(job, shard_index)``: a job submitted with
``shards=k`` fans out into k assignments, each of which executes
``Campaign.run(executor, shards=k, shard_index=i)`` inside
``asyncio.to_thread`` — the engine's ordinary PR 5 sharded path, streams
and manifest and done markers included — so the durability story is the
engine's own, not a service re-implementation.  When a job's last shard
lands, the scheduler merges the shard streams into the canonical
``<name>.jsonl`` and the job is ``done``.

Design decisions a reader should not have to reverse-engineer:

* **Admission control bounds jobs, not assignments.**  ``submit`` refuses
  (:class:`~repro.errors.QueueFull` → HTTP 429 + Retry-After) once
  ``queued + running`` jobs reach ``queue_limit``; the Retry-After hint
  is the mean observed job wall time, because that is when capacity is
  expected to free up.
* **Crashes retry, timeouts do not.**  A
  :class:`~repro.errors.WorkerCrash` (the executor pool died under the
  run) means the worker thread has *ended*, so a retry with backoff is
  safe — the shard stream's durable prefix replays via ``resume``.  A
  shard that exceeds ``shard_timeout`` is different: Python cannot kill
  the timed-out thread, so retrying would race two writers on one
  stream.  The job fails with the timeout named; the operator resubmits
  (or restarts the daemon, whose recovery resumes the durable prefix).
* **Shutdown cancels pending work, joins in-flight work.**  ``stop()``
  closes every active executor with ``cancel_pending=True`` — queued
  futures are dropped, in-flight ones joined, process-pool children
  reaped — then requeues interrupted jobs as ``queued`` so the next
  daemon resumes them.  No orphans, no recomputation.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
import time
from typing import Any

from repro.errors import ProtocolError, ReproError, ServeError, QueueFull, WorkerCrash
from repro.engine.campaign import Campaign, builtin_campaign
from repro.engine.executor import make_executor
from repro.engine.shard import manifest_path, merge_shards
from repro.obs.metrics import MetricsRegistry
from repro.serve.store import PRIORITIES, TERMINAL_STATES, JobStore

__all__ = ["Scheduler"]


def build_campaign(job: dict[str, Any], results_dir) -> Campaign:
    """The job's :class:`Campaign`, rebuilt from the stored payload.

    Cheap enough to call per shard attempt — scenario expansion happens
    inside ``Campaign.run``, not here — which keeps the job state file
    the only thing the daemon has to remember across restarts.
    """
    payload = job["campaign"]
    if "builtin" in payload:
        return builtin_campaign(
            payload["builtin"], results_dir=results_dir,
            use_cache=job["use_cache"],
        )
    return Campaign.from_dict(
        payload["spec"], results_dir=results_dir, use_cache=job["use_cache"],
    )


def validate_submission(payload: dict[str, Any]) -> tuple[dict[str, Any], str]:
    """Check a submission body; return ``(campaign_payload, name)``.

    Raises :class:`ServeError` (HTTP 400) on anything malformed —
    including an unknown builtin name, where the registry's did-you-mean
    message is passed through verbatim.
    """
    if not isinstance(payload, dict):
        raise ServeError("submission body must be a JSON object")
    has_builtin = "campaign" in payload
    has_spec = "spec" in payload
    if has_builtin == has_spec:
        raise ServeError(
            "submission needs exactly one of 'campaign' (a builtin name) "
            "or 'spec' (an inline campaign spec object)"
        )
    if has_builtin:
        from repro import registry

        name = payload["campaign"]
        if not isinstance(name, str):
            raise ServeError("'campaign' must be a builtin campaign name")
        try:
            canonical = registry.CAMPAIGN.resolve(name)
        except ReproError as exc:  # the did-you-mean passes through as a 400
            raise ServeError(str(exc)) from exc
        return {"builtin": canonical}, canonical
    spec = payload["spec"]
    if not isinstance(spec, dict):
        raise ServeError("'spec' must be a campaign spec object")
    try:
        campaign = Campaign.from_dict(spec, results_dir=None)
    except (ReproError, ValueError, TypeError) as exc:
        raise ServeError(f"invalid campaign spec: {exc}") from exc
    return {"spec": spec}, campaign.name


class Scheduler:
    """Priority queue + worker pool over a :class:`JobStore`.

    All public methods run on the event loop thread; only
    :meth:`_run_shard` (and executor teardown) runs elsewhere.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        queue_limit: int = 16,
        executor: str = "process",
        jobs: int | None = None,
        shard_timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.05,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 0:
            raise ServeError(f"workers must be >= 0, got {workers}")
        if queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        make_executor(executor, jobs).close()  # fail fast on a bad kind
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        self.executor_kind = executor
        self.jobs = jobs
        self.shard_timeout = shard_timeout
        self.retries = retries
        self.backoff = backoff
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._tasks: list[asyncio.Task] = []
        self._active_executors: dict[object, Any] = {}
        self._active_lock = threading.Lock()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Validate, admit, persist, and enqueue one submission."""
        if self._stopping:
            raise ServeError("the service is shutting down")
        campaign_payload, name = validate_submission(payload)
        priority = payload.get("priority", "normal")
        if priority not in PRIORITIES:
            raise ServeError(
                f"unknown priority {priority!r}; known: {', '.join(PRIORITIES)}"
            )
        shards = payload.get("shards", 1)
        if not isinstance(shards, int) or shards < 1:
            raise ServeError(f"shards must be an integer >= 1, got {shards!r}")
        executor = payload.get("executor", self.executor_kind)
        jobs = payload.get("jobs", self.jobs)
        if jobs is not None and not isinstance(jobs, int):
            raise ServeError(f"jobs must be an integer >= 1, got {jobs!r}")
        try:
            make_executor(executor, jobs).close()
        except ProtocolError as exc:
            raise ServeError(str(exc)) from exc
        if self.store.active() >= self.queue_limit:
            self.metrics.inc("serve_admission_rejects")
            raise QueueFull(
                f"the service is at capacity ({self.queue_limit} active "
                "job(s)); retry later",
                retry_after=self._retry_after(),
            )
        job = self.store.create(
            campaign=campaign_payload,
            name=name,
            shards=shards,
            priority=priority,
            executor=executor,
            jobs=jobs,
            use_cache=bool(payload.get("use_cache", True)),
        )
        self.metrics.inc("serve_jobs_submitted")
        self._enqueue(job)
        return job

    def _retry_after(self) -> float:
        h = self.metrics.to_dict()["histograms"].get("serve_job_wall_seconds")
        if h and h["count"]:
            return max(1.0, round(h["total"] / h["count"], 1))
        return 1.0

    def _enqueue(self, job: dict[str, Any]) -> None:
        prio = PRIORITIES[job["priority"]]
        for index in range(job["shards"]):
            # The unique sequence number breaks ties, so the tuple never
            # compares beyond it and FIFO holds within a priority class.
            self._queue.put_nowait((prio, next(self._seq), job["id"], index))

    def queue_depth(self) -> int:
        """Shard assignments waiting for a worker."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job; cooperative at shard granularity.

        A ``queued`` job is cancelled immediately.  A ``running`` job has
        its flag set: the shard currently executing runs to completion
        (its records stay durable), pending shards are skipped, and the
        job lands in ``cancelled``.  Terminal jobs raise
        :class:`ServeError` (HTTP 409) — there is nothing left to cancel.
        """
        job = self.store.get(job_id)
        if job["state"] in TERMINAL_STATES:
            raise ServeError(
                f"job {job_id} is already {job['state']}; nothing to cancel"
            )
        if job["state"] == "queued":
            return self._finish(job, "cancelled")
        return self.store.update(job_id, cancel_requested=True)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Recover the store and launch the worker tasks."""
        for job in self.store.recover():
            self._enqueue(job)
        for i in range(self.workers):
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._worker(), name=f"serve-worker-{i}"
                )
            )

    async def stop(self) -> None:
        """Graceful teardown: cancel workers, reap executors, requeue."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        # Joining pool children can take as long as the slowest in-flight
        # run; do it off the loop so stop() stays responsive to signals.
        await asyncio.to_thread(self._close_active_executors)
        for job in self.store.list():
            if job["state"] == "running":
                self.store.update(
                    job["id"], state="queued",
                    note="requeued at daemon shutdown",
                    shards_done=[False] * job["shards"],
                    records=0, resumed=0, cache_hits=0,
                )

    def _close_active_executors(self) -> None:
        with self._active_lock:
            executors = list(self._active_executors.values())
        for ex in executors:
            ex.close(cancel_pending=True)

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #

    async def _worker(self) -> None:
        while True:
            _prio, _seq, job_id, index = await self._queue.get()
            try:
                await self._run_assignment(job_id, index)
            finally:
                self._queue.task_done()

    async def _run_assignment(self, job_id: str, index: int) -> None:
        job = self.store.get(job_id)
        if job["state"] in TERMINAL_STATES:
            return  # cancelled (or failed by a sibling shard) while queued
        if job["state"] == "queued":
            if job["cancel_requested"]:
                self._finish(job, "cancelled")
                return
            job = self.store.update(
                job_id, state="running", started_at=time.time(),
                _started_clock=time.monotonic(),
            )

        attempt = 0
        while True:
            try:
                result = await self._execute_shard(job, index)
                break
            except asyncio.TimeoutError:
                # The timed-out thread cannot be killed; a retry would
                # race two writers on the same shard stream, so this is a
                # hard failure (the durable prefix survives for a resume).
                self._finish(
                    job, "failed",
                    error=f"shard {index} exceeded the per-shard timeout "
                          f"of {self.shard_timeout}s",
                )
                return
            except WorkerCrash as exc:
                attempt += 1
                self.metrics.inc("serve_shard_retries")
                self.store.update(job_id, attempts=job["attempts"] + 1)
                if attempt > self.retries:
                    self._finish(
                        job, "failed",
                        error=f"shard {index} crashed {attempt} time(s); "
                              f"giving up: {exc}",
                    )
                    return
                await asyncio.sleep(self.backoff * 2 ** (attempt - 1))
            except asyncio.CancelledError:
                raise  # daemon shutdown: stop() requeues the job
            except Exception as exc:
                self._finish(
                    job, "failed",
                    error=f"shard {index}: {type(exc).__name__}: {exc}",
                )
                return

        if result.metrics is not None:
            self.metrics.merge(result.metrics)
        job = self.store.mark_shard_done(
            job_id, index,
            records=len(result.records) - result.resumed,
            resumed=result.resumed,
            cache_hits=result.cache_hits,
        )
        if all(job["shards_done"]):
            await self._complete(job)

    async def _execute_shard(self, job: dict[str, Any], index: int):
        coro = asyncio.to_thread(self._run_shard, job, index)
        if self.shard_timeout is not None:
            return await asyncio.wait_for(coro, self.shard_timeout)
        return await coro

    def _run_shard(self, job: dict[str, Any], index: int):
        """One shard, in a worker thread: fresh executor, always closed."""
        results_dir = self.store.results_dir(job["id"])
        campaign = build_campaign(job, results_dir)
        # Resume iff an earlier attempt (this daemon's or a dead one's)
        # already wrote the manifest — then the durable prefix replays and
        # only missing specs execute.
        resume = manifest_path(results_dir, campaign.name).exists()
        executor = make_executor(job["executor"], job["jobs"])
        key = object()
        with self._active_lock:
            self._active_executors[key] = executor
        try:
            return campaign.run(
                executor, shards=job["shards"], shard_index=index,
                resume=resume, progress=False,
            )
        finally:
            with self._active_lock:
                self._active_executors.pop(key, None)
            executor.close(cancel_pending=self._stopping)

    async def _complete(self, job: dict[str, Any]) -> None:
        """Last shard landed: merge, then ``done`` (or late ``cancelled``)."""
        if job["cancel_requested"]:
            self._finish(job, "cancelled")
            return
        results_dir = self.store.results_dir(job["id"])
        try:
            # compact=True: the merge also writes the columnar sibling and
            # appends this campaign's point to the job's trend ledger.
            path, count = await asyncio.to_thread(
                functools.partial(merge_shards, compact=True),
                results_dir, job["name"],
            )
        except ReproError as exc:
            self._finish(job, "failed", error=f"merge failed: {exc}")
            return
        self._publish_trends(results_dir)
        self._finish(job, "done", records=count, jsonl=str(path))

    def _publish_trends(self, results_dir) -> None:
        """Fold a job's freshly-appended trend point into the metrics.

        ``/metrics`` then carries one gauge per (campaign, metric) series
        — the live view of the same numbers ``trends.jsonl`` accumulates
        durably.  Advisory: a malformed ledger must not fail the job.
        """
        from repro.store import load_points, trends_path

        # Advisory means advisory: NOTHING here may stand between a merged
        # job and its terminal state (a wedged gauge update once left jobs
        # "running" forever — the regression test pins this).
        try:
            points = load_points(trends_path(results_dir))
            for point in points[-8:]:  # tail is this job's; bounded either way
                for metric, value in point["metrics"].items():
                    self.metrics.set_gauge(
                        f"trend_{metric}", value,
                        kind=point["kind"], series=point["name"],
                    )
            if points:
                self.metrics.inc("serve_trend_points")
        except Exception:
            return

    def _finish(self, job: dict[str, Any], state: str, **fields: Any) -> dict[str, Any]:
        started = job.get("_started_clock")
        wall = (time.monotonic() - started) if started else 0.0
        self.metrics.inc("serve_jobs_finished", state=state)
        if started is not None:
            # Jobs that never started (cancelled while queued, dropped at
            # admission replay) have no wall time; observing their 0.0
            # would drag the serve_job_wall_seconds mean — and with it the
            # Retry-After hint — toward zero.
            self.metrics.observe("serve_job_wall_seconds", round(wall, 6))
        return self.store.update(
            job["id"], state=state, finished_at=time.time(),
            wall_seconds=round(wall, 3), _started_clock=None, **fields,
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def metrics_snapshot(self) -> dict[str, Any]:
        """The serve registry with point-in-time gauges recomputed."""
        for state, count in self.store.counts().items():
            self.metrics.set_gauge("serve_jobs", count, state=state)
        self.metrics.set_gauge("serve_queue_depth", self.queue_depth())
        self.metrics.set_gauge("serve_workers", self.workers)
        # Gauge merges are last-write-wins, so after folding shard
        # registries the cache_hit_ratio gauge would be whichever shard
        # landed last — not the fleet ratio.  Recompute it from the
        # additive counters; this is the same pinned definition the
        # campaign layer publishes (see tests/engine/test_cache_hit_ratio.py):
        # runs_cached / (runs_cached + runs_started).
        hits = self.metrics.counter("runs_cached")
        landed = hits + self.metrics.counter("runs_started")
        self.metrics.set_gauge("cache_hit_ratio", (hits / landed) if landed else 0.0)
        return self.metrics.to_dict()
