"""The HTTP/JSON front door: stdlib asyncio, hand-rolled HTTP/1.1.

No aiohttp, no frameworks — ``asyncio.start_server`` plus a ~hundred lines
of request parsing is all a JSON API with one streaming endpoint needs,
and it keeps the zero-dependency rule intact.  Every connection serves one
request (``Connection: close``), which sidesteps keep-alive state entirely;
clients open cheap local sockets per call.

Routes (all responses JSON unless noted)::

    GET  /healthz                 liveness + job counts
    GET  /metrics                 Prometheus text (serve + folded campaigns)
    POST /v1/jobs                 submit {"campaign": name} or {"spec": {...}}
    GET  /v1/jobs                 all jobs, submission order
    GET  /v1/jobs/{id}            one job + per-shard progress (manifest-read)
    GET  /v1/jobs/{id}/records    JSONL records; ?follow=1 tail-follows
                                  (chunked transfer) until the job is terminal
    GET  /v1/jobs/{id}/summary    group-by aggregate (?by=protocol,n)
    POST /v1/jobs/{id}/cancel     cooperative cancel

Error mapping: :class:`~repro.errors.JobNotFound` → 404,
:class:`~repro.errors.QueueFull` → 429 with ``Retry-After``, any other
:class:`~repro.errors.ServeError` → 400 (or 409 for a cancel on a terminal
job), anything unexpected → 500 with the exception named.

The streaming endpoint emits records **shard-major** while a job runs
(shard 0's durable lines as they land, then shard 1's, ...) — each shard
stream is append-only, so the tail-follow is a cheap offset scan — and
switches to the canonical merged ``<name>.jsonl`` once the job is done,
so a post-completion read is byte-identical to the engine's own merge.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import signal
import threading
from typing import Any
from urllib.parse import parse_qs

from repro import __version__
from repro.errors import JobNotFound, QueueFull, ReproError, ServeError
from repro.engine.shard import ShardManifest, shard_done_path, shard_stream_path
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.serve.queue import Scheduler
from repro.serve.store import TERMINAL_STATES, JobStore
from repro.serve.summary import SummaryCache

__all__ = ["ReproServer", "ServerThread", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}

_MAX_BODY = 8 * 1024 * 1024  # campaign specs are small; refuse anything huge

#: Keys of the job state dict that are daemon-internal, not API surface.
_PRIVATE_KEYS = ("_started_clock",)


class _BadRequest(Exception):
    """Unparseable request line/headers/body — always mapped to 400."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, list[str]], bytes] | None:
    """Parse one request; ``None`` when the peer closed without sending."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        key, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if length > _MAX_BODY:
        raise _BadRequest(f"body exceeds {_MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method, path, parse_qs(query), body


def _head(status: int, content_type: str, extra: dict[str, str],
          *, length: int | None = None, chunked: bool = False) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}", "Connection: close"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    lines += [f"{k}: {v}" for k, v in extra.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class ReproServer:
    """The campaign service: store + scheduler + asyncio HTTP front end.

    ``port=0`` binds an ephemeral port; the bound one is on ``self.port``
    after :meth:`start` (and in the ``listening on http://...`` line the
    CLI prints, which is what subprocess tests parse).
    """

    def __init__(
        self,
        root: str | pathlib.Path = "serve-data",
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 16,
        executor: str = "process",
        jobs: int | None = None,
        shard_timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.store = JobStore(root)
        self.metrics = MetricsRegistry()
        self.summaries = SummaryCache()
        self.scheduler = Scheduler(
            self.store, workers=workers, queue_limit=queue_limit,
            executor=executor, jobs=jobs, shard_timeout=shard_timeout,
            retries=retries, backoff=backoff, metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Recover the store, start the workers, bind the socket."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain the pool, requeue interrupted jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    async def run_until_interrupted(self, *, ready=None) -> None:
        """The daemon main: serve until SIGTERM/SIGINT, then clean up.

        ``ready`` (a callable) runs once the socket is bound — the CLI
        prints its ``listening on http://host:port`` line there, which is
        also the line subprocess tests parse for the ephemeral port.
        """
        await self.start()
        if ready is not None:
            ready()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
            await self.stop()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                method, path, query, body = request
            except (_BadRequest, asyncio.IncompleteReadError, ValueError) as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
                return
            try:
                await self._route(writer, method, path, query, body)
            except JobNotFound as exc:
                await self._send_json(writer, 404, {"error": str(exc)})
            except QueueFull as exc:
                await self._send_json(
                    writer, 429, {"error": str(exc),
                                  "retry_after": exc.retry_after},
                    extra={"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
                )
            except ServeError as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 — the 500 safety net
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str,
        query: dict[str, list[str]], body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "status": "ok",
                "version": __version__,
                "jobs": self.store.counts(),
                "queue_depth": self.scheduler.queue_depth(),
            })
            return
        if path == "/metrics" and method == "GET":
            text = render_prometheus(self.scheduler.metrics_snapshot())
            data = text.encode()
            writer.write(_head(
                200, "text/plain; version=0.0.4; charset=utf-8", {},
                length=len(data),
            ))
            writer.write(data)
            await writer.drain()
            return
        if path == "/v1/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ServeError(f"request body is not valid JSON: {exc}") from None
            job = self.scheduler.submit(payload)
            await self._send_json(writer, 201, self._job_view(job))
            return
        if path == "/v1/jobs" and method == "GET":
            await self._send_json(writer, 200, {
                "jobs": [self._job_view(j) for j in self.store.list()],
            })
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "jobs":
            job_id = parts[2]
            tail = parts[3] if len(parts) == 4 else None
            if tail is None and method == "GET":
                job = self.store.get(job_id)
                view = self._job_view(job)
                view["progress"] = self._progress(job)
                await self._send_json(writer, 200, view)
                return
            if tail == "cancel" and method == "POST":
                job = self.store.get(job_id)  # 404 before 409
                if job["state"] in TERMINAL_STATES:
                    await self._send_json(writer, 409, {
                        "error": f"job {job_id} is already {job['state']}",
                        "state": job["state"],
                    })
                    return
                job = self.scheduler.cancel(job_id)
                await self._send_json(writer, 200, self._job_view(job))
                return
            if tail == "summary" and method == "GET":
                await self._summary(writer, job_id, query)
                return
            if tail == "records" and method == "GET":
                follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
                poll = float(query.get("poll", ["0.1"])[0])
                await self._stream_records(writer, job_id, follow, poll)
                return
        await self._send_json(
            writer, 405 if path.startswith("/v1/jobs") else 404,
            {"error": f"no route for {method} {path}"},
        )

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any,
        *, extra: dict[str, str] | None = None,
    ) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode()
        writer.write(_head(status, "application/json", extra or {},
                           length=len(data)))
        writer.write(data)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def _job_view(self, job: dict[str, Any]) -> dict[str, Any]:
        view = {k: v for k, v in job.items() if k not in _PRIVATE_KEYS}
        view["results_dir"] = str(self.store.results_dir(job["id"]))
        return view

    def _progress(self, job: dict[str, Any]) -> dict[str, Any]:
        """Per-shard progress, read from the engine's own durable artifacts.

        The manifest fixes each shard's total; the shard stream's newline
        count is its durable record count (a torn tail has no newline, so
        it never counts); the done marker is completion.  A job whose
        first shard has not started yet simply has no manifest — that is
        the all-zeros progress, not an error.
        """
        results_dir = self.store.results_dir(job["id"])
        name, n_shards = job["name"], job["shards"]
        try:
            manifest = ShardManifest.load(results_dir, name)
        except (ReproError, OSError):
            return {"total": 0, "records": 0, "shards": []}
        shards = []
        for i in range(n_shards):
            stream = shard_stream_path(results_dir, name, i, n_shards)
            lines = 0
            if stream.exists():
                lines = stream.read_bytes().count(b"\n")
            shards.append({
                "index": i,
                "total": len(manifest.shard_hashes(i)),
                "records": lines,
                "done": shard_done_path(results_dir, name, i, n_shards).exists(),
            })
        return {
            "total": len(manifest.spec_hashes),
            "records": sum(s["records"] for s in shards),
            "shards": shards,
        }

    async def _summary(
        self, writer: asyncio.StreamWriter, job_id: str,
        query: dict[str, list[str]],
    ) -> None:
        from repro.results.aggregate import DEFAULT_AXES

        job = self.store.get(job_id)
        by = DEFAULT_AXES
        if "by" in query:
            by = tuple(a.strip() for a in query["by"][0].split(",") if a.strip())
        try:
            # Incremental: the cache feeds only bytes appended since the
            # last poll, so a tight polling client costs O(new records),
            # not O(all records) per request.
            count, groups = self.summaries.summary(
                self.store.results_dir(job_id), job, by
            )
        except ReproError as exc:
            raise ServeError(str(exc)) from exc
        self.metrics.inc("serve_summary_requests")
        await self._send_json(writer, 200, {
            "id": job_id, "state": job["state"], "records": count,
            "by": list(by), "groups": groups,
        })

    # ------------------------------------------------------------------ #
    # record streaming
    # ------------------------------------------------------------------ #

    async def _stream_records(
        self, writer: asyncio.StreamWriter, job_id: str,
        follow: bool, poll: float,
    ) -> None:
        job = self.store.get(job_id)  # 404 before any bytes hit the wire
        writer.write(_head(200, "application/x-ndjson", {}, chunked=True))
        await writer.drain()

        async def send(chunk: bytes) -> None:
            if not chunk:
                return
            writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
            await writer.drain()

        try:
            job = self.store.get(job_id)
            if job["state"] == "done" and job.get("jsonl"):
                # Finished: stream the canonical merged file in one pass.
                path = pathlib.Path(job["jsonl"])
                if path.exists():
                    await send(path.read_bytes())
            else:
                results_dir = self.store.results_dir(job["id"])
                for i in range(job["shards"]):
                    stream = shard_stream_path(
                        results_dir, job["name"], i, job["shards"]
                    )
                    done_marker = shard_done_path(
                        results_dir, job["name"], i, job["shards"]
                    )
                    offset = 0
                    while True:
                        if stream.exists():
                            with stream.open("rb") as fh:
                                fh.seek(offset)
                                data = fh.read()
                            complete = data[: data.rfind(b"\n") + 1]
                            if complete:
                                await send(complete)
                                offset += len(complete)
                        job = self.store.get(job_id)
                        if done_marker.exists() or job["state"] in TERMINAL_STATES:
                            break
                        if not follow:
                            break
                        await asyncio.sleep(poll)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-stream; the poll loop just stops


class ServerThread:
    """A :class:`ReproServer` hosted on a background thread.

    The in-process form tests, benchmarks, and ``examples/`` use: the
    event loop runs on a daemon thread, ``__enter__``/:meth:`start`
    block until the socket is bound (so ``.url`` is immediately
    usable), and :meth:`stop` performs the same graceful teardown as a
    SIGTERM'd daemon.
    """

    def __init__(self, root: str | pathlib.Path = "serve-data", **kwargs: Any) -> None:
        self.server = ReproServer(root, **kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve", daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._started.is_set():
            raise ServeError("server failed to start within 30s")
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
