"""Incremental ``/summary`` state: feed appended bytes, not whole files.

The naive summary re-read every durable record line on every poll, so a
tight polling client turned O(n) per request into O(n·polls).  This
module keeps one :class:`~repro.results.aggregate.Aggregator` per
``(job, group-by)`` pair and feeds it only the bytes each shard stream
*appended* since the last request — the aggregation core is
order-independent, so tailing shard streams as they land produces
exactly the batch answer over the merged file.

The cache trusts the engine's durability contract (fsync per line, at
most one torn tail):

* ``stat()`` before ``open()`` — an unchanged stream costs zero file
  opens, which is the property the regression test counts;
* only newline-complete bytes are fed; a torn tail stays unconsumed
  until its newline lands;
* a stream that *shrank* (a resume truncated a torn tail, a retry
  rewrote the stream) invalidates the entry and rebuilds from scratch —
  correctness over cleverness for the rare path;
* when the job completes, the entry rebuilds once from the canonical
  merged ``<name>.jsonl`` (identical records, so the answer is the same;
  the canonical file is the durable artifact that outlives the streams)
  and is thereafter served from memory while the file size holds still.

File opens go through the module-level :func:`_read_from` so the test
battery can count them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.engine.shard import shard_stream_path
from repro.results.aggregate import Aggregator

__all__ = ["SummaryCache"]


def _read_from(path: pathlib.Path, offset: int) -> bytes:
    """Read ``path`` from ``offset`` to EOF (the one place files open)."""
    with path.open("rb") as fh:
        if offset:
            fh.seek(offset)
        return fh.read()


class _Entry:
    __slots__ = ("aggregator", "records", "offsets", "canonical_size")

    def __init__(self, by: tuple[str, ...]) -> None:
        self.aggregator = Aggregator(by=by)
        self.records = 0
        self.offsets: dict[int, int] = {}
        self.canonical_size = -1  # -1: still tailing shard streams

    def feed_lines(self, data: bytes) -> None:
        for line in data.split(b"\n"):
            if line.strip():
                self.aggregator.feed(json.loads(line))
                self.records += 1


class SummaryCache:
    """Maintained per-job aggregation state behind serve's ``/summary``.

    Entries are small (bounded group state, never record lists) and keyed
    by ``(job_id, by)``; a daemon summarizing thousands of jobs holds
    thousands of sketch sets, not thousands of record files.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, tuple[str, ...]], _Entry] = {}

    def invalidate(self, job_id: str) -> None:
        """Drop every entry for one job (used when its results reset)."""
        for key in [k for k in self._entries if k[0] == job_id]:
            del self._entries[key]

    def summary(
        self,
        results_dir: pathlib.Path,
        job: dict[str, Any],
        by: tuple[str, ...],
    ) -> tuple[int, list[dict]]:
        """``(record_count, groups)`` for one job, updated incrementally.

        Raises whatever :class:`~repro.results.aggregate.Aggregator`
        raises on bad axes or zero records — the HTTP layer maps those to
        400 exactly as the batch path did.
        """
        key = (job["id"], tuple(by))
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry(tuple(by))

        canonical: pathlib.Path | None = None
        if job["state"] == "done" and job.get("jsonl"):
            path = pathlib.Path(job["jsonl"])
            if path.exists():
                canonical = path

        if canonical is not None:
            size = canonical.stat().st_size
            if size != entry.canonical_size:
                # First sight of the merged file (or it changed, e.g. a
                # re-merge): one full rebuild, then it serves from memory.
                entry = self._entries[key] = _Entry(tuple(by))
                entry.feed_lines(_read_from(canonical, 0))
                entry.canonical_size = size
            return entry.records, entry.aggregator.groups()

        if entry.canonical_size >= 0:
            # The job fell back from done (restarted/resumed): the
            # canonical snapshot no longer describes it — start over.
            entry = self._entries[key] = _Entry(tuple(by))

        for i in range(job["shards"]):
            stream = shard_stream_path(results_dir, job["name"], i, job["shards"])
            consumed = entry.offsets.get(i, 0)
            try:
                size = stream.stat().st_size
            except OSError:
                size = 0
            if size < consumed:
                # Shrunk stream: a resume truncated a torn tail out from
                # under us. Rebuild the whole entry rather than guess.
                entry = self._entries[key] = _Entry(tuple(by))
                for j in range(job["shards"]):
                    s = shard_stream_path(results_dir, job["name"], j,
                                          job["shards"])
                    if s.exists():
                        data = _read_from(s, 0)
                        complete = data[: data.rfind(b"\n") + 1]
                        entry.feed_lines(complete)
                        entry.offsets[j] = len(complete)
                break
            if size == consumed:
                continue  # nothing appended: zero opens for this stream
            data = _read_from(stream, consumed)
            complete = data[: data.rfind(b"\n") + 1]  # leave any torn tail
            if complete:
                entry.feed_lines(complete)
                entry.offsets[i] = consumed + len(complete)
        return entry.records, entry.aggregator.groups()
