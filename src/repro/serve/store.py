"""The durable job store: one atomically-written state file per job.

Layout under the store root::

    <root>/jobs/<id>/job.json      # the job state (atomic tmp+fsync+replace)
    <root>/jobs/<id>/results/      # the job's own campaign results_dir

``job.json`` is written through :func:`repro.engine.shard.atomic_write_json`
— the same tmp + fsync + ``os.replace`` discipline as every other durable
artifact in this library — so a crash at any instant leaves either the old
state or the new one, never a torn file.  The per-job ``results/`` directory
holds the ordinary PR 5 shard artifacts (streams, manifest, done markers),
which is what makes restart recovery cheap: the store only records *intent*
(which campaign, how many shards, what state); the shard manifests record
*progress*, and :meth:`JobStore.recover` simply demotes interrupted
``running`` jobs back to ``queued`` so the scheduler re-runs them with
``resume`` — every durable record replays, nothing recomputes.

States move ``queued → running → done | failed | cancelled``.  The three
right-hand states are terminal; ``cancelled`` can also be reached straight
from ``queued``.

Single-writer discipline: all store mutations happen on the daemon's event
loop thread (campaign execution runs in worker threads, but state
transitions are posted back to the loop), so the in-memory index needs no
locking and the on-disk files have exactly one writer.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any

from repro.errors import JobNotFound, ServeError
from repro.engine.shard import atomic_write_json

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "PRIORITIES",
    "JobStore",
]

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Admission classes, highest first; the scheduler drains lower numbers first.
PRIORITIES = {"high": 0, "normal": 1, "low": 2}

_JOB_VERSION = 1


class JobStore:
    """Durable job index over ``<root>/jobs/<id>/job.json`` files.

    The store keeps an in-memory mirror of every state file (loaded by
    :meth:`recover`, updated on every mutation) so reads never touch the
    disk; writes go through the atomic-replace path before the mirror
    updates, so the disk is always at least as old as memory — a crash
    can lose an in-flight transition but never invent one.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self._jobs: dict[str, dict[str, Any]] = {}
        self._seq = 0

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.root / "jobs" / job_id

    def results_dir(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "results"

    def _state_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "job.json"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def recover(self) -> list[dict[str, Any]]:
        """Scan the store root, rebuild the index, demote interrupted jobs.

        Jobs found ``running`` were interrupted mid-flight (the daemon
        died); they go back to ``queued`` — with their shard streams and
        manifest intact, so the scheduler's resume path replays every
        durable record instead of recomputing it — and their per-attempt
        progress counters reset (the resumed run re-derives them).
        Returns the jobs now awaiting execution (state ``queued``), in
        submission order.  Unreadable state files are skipped with the
        job dir left in place for post-mortem, never deleted.
        """
        self._jobs.clear()
        self._seq = 0
        jobs_root = self.root / "jobs"
        if jobs_root.is_dir():
            for state_path in sorted(jobs_root.glob("*/job.json")):
                try:
                    job = json.loads(state_path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if not isinstance(job, dict) or "id" not in job:
                    continue
                if job.get("state") == "running":
                    job["state"] = "queued"
                    job["note"] = "requeued after daemon restart"
                    job["shards_done"] = [False] * int(job.get("shards", 1))
                    job["records"] = 0
                    job["resumed"] = 0
                    atomic_write_json(state_path, job)
                self._jobs[job["id"]] = job
                self._seq = max(self._seq, int(job.get("seq", 0)))
        return [j for j in self.list() if j["state"] == "queued"]

    def create(
        self,
        *,
        campaign: dict[str, Any],
        name: str,
        shards: int = 1,
        priority: str = "normal",
        executor: str = "process",
        jobs: int | None = None,
        use_cache: bool = True,
    ) -> dict[str, Any]:
        """Persist a new ``queued`` job and return its state dict.

        ``campaign`` is the submission payload — ``{"builtin": name}`` or
        ``{"spec": {...}}`` — stored verbatim so a restarted daemon can
        rebuild the exact same :class:`~repro.engine.campaign.Campaign`.
        """
        if priority not in PRIORITIES:
            raise ServeError(
                f"unknown priority {priority!r}; known: {', '.join(PRIORITIES)}"
            )
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        self._seq += 1
        job = {
            "job_version": _JOB_VERSION,
            "id": f"j{self._seq:06d}",
            "seq": self._seq,
            "state": "queued",
            "priority": priority,
            "campaign": campaign,
            "name": name,
            "shards": shards,
            "executor": executor,
            "jobs": jobs,
            "use_cache": use_cache,
            "submitted_at": time.time(),
            "started_at": None,
            "finished_at": None,
            "wall_seconds": None,
            "shards_done": [False] * shards,
            "attempts": 0,
            "records": 0,
            "resumed": 0,
            "cache_hits": 0,
            "error": None,
            "jsonl": None,
            "cancel_requested": False,
        }
        self.results_dir(job["id"]).mkdir(parents=True, exist_ok=True)
        self._write(job)
        return job

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> dict[str, Any]:
        """The live state dict (the store's own copy — do not mutate)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(
                f"no job {job_id!r} in the store at {self.root}",
                job_id=job_id,
            ) from None

    def list(self) -> list[dict[str, Any]]:
        """Every job, in submission order."""
        return sorted(self._jobs.values(), key=lambda j: j["seq"])

    def counts(self) -> dict[str, int]:
        """Jobs per state — every state present, zero or not, so the
        jobs-by-state gauges never drop a series between scrapes."""
        out = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            out[job["state"]] += 1
        return out

    def active(self) -> int:
        """Jobs still consuming capacity (queued or running)."""
        return sum(
            1 for j in self._jobs.values() if j["state"] not in TERMINAL_STATES
        )

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #

    def update(self, job_id: str, **fields: Any) -> dict[str, Any]:
        """Merge ``fields`` into the job state, atomically persisted."""
        job = self.get(job_id)
        job.update(fields)
        self._write(job)
        return job

    def mark_shard_done(
        self, job_id: str, index: int, *, records: int, resumed: int,
        cache_hits: int = 0,
    ) -> dict[str, Any]:
        """Record one finished shard; returns the updated job."""
        job = self.get(job_id)
        job["shards_done"][index] = True
        job["records"] += records
        job["resumed"] += resumed
        job["cache_hits"] += cache_hits
        self._write(job)
        return job

    def _write(self, job: dict[str, Any]) -> None:
        path = self._state_path(job["id"])
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, job)
        self._jobs[job["id"]] = job
