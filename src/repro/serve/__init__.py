"""repro.serve — the campaign service (DESIGN.md §9).

A zero-dependency asyncio HTTP/JSON daemon wrapping the registry catalog
and the Session/Campaign pipeline: clients submit campaign jobs, poll
per-shard progress, tail-follow records as they become durable, fetch
group-by aggregates, and scrape Prometheus metrics — while the PR 5 shard
manifests make every job crash-resumable and the PR 6 metrics make the
fleet observable.

The moving parts, one module each:

* :mod:`repro.serve.store`  — the durable job store (atomic ``job.json``
  per job, per-job results dirs, restart recovery);
* :mod:`repro.serve.queue`  — admission control, priority classes, and
  the shard-pulling worker pool (``asyncio.to_thread`` around the
  engine's own sharded ``Campaign.run``);
* :mod:`repro.serve.http`   — the asyncio HTTP layer
  (:class:`ReproServer`, plus :class:`ServerThread` for in-process
  hosting in tests/examples/benchmarks);
* :mod:`repro.serve.client` — the stdlib-``http.client`` thin client
  (:class:`ServeClient` / :class:`RemoteJob`) the CLI verbs and
  :meth:`repro.api.Session.submit` use.

Quickstart (in-process)::

    from repro.serve import ServerThread, ServeClient

    with ServerThread("serve-data", workers=2, executor="thread") as srv:
        job = ServeClient(srv.url).submit(campaign="smoke", shards=2)
        print(job.wait()["state"])          # "done"

or as a daemon: ``python -m repro serve``, then ``repro submit smoke``.
"""

from repro.serve.client import DEFAULT_URL, RemoteJob, ServeClient
from repro.serve.http import DEFAULT_HOST, DEFAULT_PORT, ReproServer, ServerThread
from repro.serve.queue import Scheduler
from repro.serve.store import JOB_STATES, PRIORITIES, TERMINAL_STATES, JobStore

__all__ = [
    "ServeClient",
    "RemoteJob",
    "ReproServer",
    "ServerThread",
    "Scheduler",
    "JobStore",
    "JOB_STATES",
    "TERMINAL_STATES",
    "PRIORITIES",
    "DEFAULT_URL",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
]
