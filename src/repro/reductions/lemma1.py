"""Lemma 1, executable: the information bound on reconstructible families.

"If there is a frugal one-round protocol for reconstructing graphs in G,
then log g(n) = O(n log n)."  The proof is pure counting: k·log n bits per
vertex means ``2^{k n log n}`` distinguishable message vectors, and a
reconstructor must map distinct graphs to distinct vectors.

Two executable forms:

* :func:`lemma1_admits_reconstruction` / :func:`capacity_gap_rows` — the
  arithmetic: compare ``log2 g(n)`` with ``k·n·log2 n`` per family, the
  tables behind Theorems 1–3's contradictions;
* :func:`message_vectors_injective` — the structural necessary condition,
  checkable for a *given* protocol on a *given* family sample: if two
  family members share a message vector, reconstruction is impossible for
  that protocol (this is the bridge to the collision search).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

from repro.graphs.counting import frugal_capacity_bits
from repro.graphs.labeled import LabeledGraph
from repro.model.protocol import OneRoundProtocol

__all__ = [
    "lemma1_admits_reconstruction",
    "capacity_gap_rows",
    "message_vectors_injective",
]


def lemma1_admits_reconstruction(log2_family_size: float, n: int, k_const: float) -> bool:
    """Whether a family of ``2^{log2_family_size}`` graphs fits the frugal capacity.

    ``True`` means Lemma 1 does *not* forbid reconstruction with constant
    ``k_const``; ``False`` is the contradiction the theorems manufacture.
    """
    return log2_family_size <= frugal_capacity_bits(n, k_const)


def capacity_gap_rows(
    ns: Iterable[int],
    k_const: float,
    families: dict[str, Callable[[int], float]],
) -> list[dict[str, float]]:
    """The Lemma 1 table: one row per n, ``log2 g(n)`` per family vs capacity.

    ``families`` maps a family name to a function ``n -> log2 g(n)``.
    Each row carries the capacity and, per family, the log-count and the
    verdict ``log2 g(n) <= capacity``.
    """
    rows: list[dict[str, float]] = []
    for n in ns:
        row: dict[str, float] = {"n": n, "capacity_bits": frugal_capacity_bits(n, k_const)}
        for name, log_count in families.items():
            bits = log_count(n)
            row[f"log2_{name}"] = bits
            row[f"fits_{name}"] = float(lemma1_admits_reconstruction(bits, n, k_const))
        rows.append(row)
    return rows


def message_vectors_injective(
    protocol: OneRoundProtocol, graphs: Iterable[LabeledGraph]
) -> tuple[bool, tuple[LabeledGraph, LabeledGraph] | None]:
    """Check the necessary condition for reconstructibility on a family sample.

    Returns ``(True, None)`` if all message vectors are distinct, or
    ``(False, (g1, g2))`` with a witness pair otherwise.  A frugal protocol
    failing this on ANY two family members is disqualified outright — no
    global function can tell the two graphs apart.
    """
    seen: dict[tuple, LabeledGraph] = {}
    for g in graphs:
        key = tuple(protocol.message_vector(g))
        if key in seen and seen[key] != g:
            return False, (seen[key], g)
        seen[key] = g
    return True, None
