"""Theorem 2 / Algorithm 2: a diameter-≤3 detector yields a reconstructor for ALL graphs.

The gadget (Figure 1) adds three vertices: a pendant on s, a pendant on t,
and a universal vertex.  ``diam(G'_{s,t}) ≤ 3`` iff ``{s,t} ∈ E``.

Unlike Theorem 1, an original vertex's gadget neighbourhood *does* depend on
(s, t) — but only through membership of ``i`` in ``{s, t}``, so three
messages cover all cases.  Node ``i`` sends the triple

* ``m⁰_i = Γ^l_{n+3}(i, N ∪ {n+3})``            (role: bystander),
* ``mˢ_i = Γ^l_{n+3}(i, N ∪ {n+1, n+3})``        (role: i = s),
* ``mᵗ_i = Γ^l_{n+3}(i, N ∪ {n+2, n+3})``        (role: i = t),

packed with self-delimiting framing — "Δ is frugal, since its messages are
three times as big as those of Γ" (plus our explicit O(log k(n)) framing).

The referee, for each (s, t), selects each node's message by role, computes
the three gadget vertices' messages itself (they do not depend on G), and
asks Γ whether the diameter is ≤ 3.  The reconstructed family is *all*
graphs — ``Ω(2^{n²/2})`` of them — so Lemma 1 rules out a frugal Γ.
"""

from __future__ import annotations

from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol, ReconstructionProtocol
from repro.reductions.framing import pack_messages, unpack_messages

__all__ = ["DiameterReduction"]


class DiameterReduction(ReconstructionProtocol):
    """``Δ`` = ReconstructGraph(Γ), Algorithm 2 verbatim."""

    def __init__(self, detector: DecisionProtocol) -> None:
        self.detector = detector
        self.name = f"diameter-reduction[{detector.name}]"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        """The triple ``(m⁰_i, mˢ_i, mᵗ_i)``, packed."""
        gamma = self.detector
        m0 = gamma.local(n + 3, i, neighborhood | {n + 3})
        ms = gamma.local(n + 3, i, neighborhood | {n + 1, n + 3})
        mt = gamma.local(n + 3, i, neighborhood | {n + 2, n + 3})
        return pack_messages([m0, ms, mt])

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        gamma = self.detector
        triples = [unpack_messages(m, 3) for m in messages]
        h = LabeledGraph(n)
        universal = frozenset(range(1, n + 1))
        m_n3 = gamma.local(n + 3, n + 3, universal)  # (s,t)-independent
        for s in range(1, n + 1):
            for t in range(s + 1, n + 1):
                vec = [triples[i - 1][0] for i in range(1, n + 1)]
                vec[s - 1] = triples[s - 1][1]  # m^s_s
                vec[t - 1] = triples[t - 1][2]  # m^t_t
                vec.append(gamma.local(n + 3, n + 1, frozenset({s})))
                vec.append(gamma.local(n + 3, n + 2, frozenset({t})))
                vec.append(m_n3)
                if gamma.global_(n + 3, vec):
                    h.add_edge(s, t)  # diam(G'_{s,t}) <= 3
        return h
