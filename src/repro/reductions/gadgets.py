"""The ``G'_{s,t}`` gadget constructions of Section II.

Each gadget extends an n-vertex graph G with fresh vertices so that a target
property of ``G'_{s,t}`` holds **iff** ``{s,t} ∈ E(G)``:

* :func:`square_gadget` (Theorem 1): add a pendant ``n+i`` to every vertex
  ``i``, plus the single edge ``{n+s, n+t}``.  When G is square-free,
  ``G'_{s,t}`` contains a C4 iff s and t are adjacent (the cycle
  ``s, n+s, n+t, t``).  Crucially the original vertices' neighbourhoods —
  ``N(i) ∪ {n+i}`` — do not depend on (s, t), so one real message per node
  serves every simulated pair.
* :func:`diameter_gadget` (Theorem 2, **Figure 1**): add ``n+1`` adjacent to
  s, ``n+2`` adjacent to t, and ``n+3`` adjacent to all of ``1..n``.
  Diameter ≤ 3 iff ``{s,t} ∈ E`` (otherwise the ``n+1 ⟷ n+2`` distance is 4);
  original vertices take one of only *three* neighbourhoods as (s, t)
  varies, so three messages per node suffice.
* :func:`triangle_gadget` (Theorem 3, **Figure 2**): add one vertex ``n+1``
  adjacent to s and t.  When G is triangle-free, ``G'_{s,t}`` has a triangle
  iff ``{s,t} ∈ E``; original vertices take one of two neighbourhoods.
"""

from __future__ import annotations

from repro.errors import InvalidVertexError
from repro.graphs.labeled import LabeledGraph

__all__ = ["square_gadget", "diameter_gadget", "triangle_gadget"]


def _check_pair(g: LabeledGraph, s: int, t: int) -> None:
    if not (1 <= s <= g.n and 1 <= t <= g.n):
        raise InvalidVertexError(f"(s, t) = ({s}, {t}) outside 1..{g.n}")
    if s == t:
        raise InvalidVertexError(f"gadget needs s != t, got s = t = {s}")


def square_gadget(g: LabeledGraph, s: int, t: int) -> LabeledGraph:
    """Theorem 1's ``G'_{s,t}`` on ``2n`` vertices: pendants + one far edge."""
    _check_pair(g, s, t)
    n = g.n
    edges = [(i, n + i) for i in range(1, n + 1)]
    edges.append((n + s, n + t))
    return g.extended(n, edges)


def diameter_gadget(g: LabeledGraph, s: int, t: int) -> LabeledGraph:
    """Theorem 2's ``G'_{s,t}`` on ``n+3`` vertices (the Figure 1 construction)."""
    _check_pair(g, s, t)
    n = g.n
    edges = [(s, n + 1), (t, n + 2)]
    edges.extend((v, n + 3) for v in range(1, n + 1))
    return g.extended(3, edges)


def triangle_gadget(g: LabeledGraph, s: int, t: int) -> LabeledGraph:
    """Theorem 3's ``G'_{s,t}`` on ``n+1`` vertices (the Figure 2 construction)."""
    _check_pair(g, s, t)
    n = g.n
    return g.extended(1, [(s, n + 1), (t, n + 1)])
