"""Section II, executable: the reduction technique behind Theorems 1–3.

The paper's impossibility proofs all follow one recipe: *if* a one-round
protocol ``Γ`` could decide property P, *then* the referee could simulate
``Γ`` on a family of gadget graphs ``G'_{s,t}`` (one per vertex pair) whose
P-status encodes "is {s,t} an edge of G?" — reconstructing G outright.  A
family too big for Lemma 1's ``2^{O(n log n)}`` capacity then kills Γ.

The reductions are concrete algorithms (the paper prints their pseudocode),
so we implement them as protocol *transformers*: feed in any detector
protocol object, get back a reconstructor protocol object.

* :mod:`~repro.reductions.gadgets` — the ``G'_{s,t}`` constructions
  (Figures 1 and 2, plus Theorem 1's pendant gadget);
* :mod:`~repro.reductions.square` — Theorem 1 / Algorithm 1: square
  detector ⇒ reconstructor for square-free graphs;
* :mod:`~repro.reductions.diameter` — Theorem 2 / Algorithm 2: diameter-≤3
  detector ⇒ reconstructor for *all* graphs;
* :mod:`~repro.reductions.triangle` — Theorem 3: triangle detector ⇒
  reconstructor for triangle-free (in particular bipartite) graphs;
* :mod:`~repro.reductions.oracles` — ground-truth detectors (non-frugal,
  ``n`` bits/node) to validate the reductions end-to-end;
* :mod:`~repro.reductions.lemma1` — the counting bound and an injectivity
  checker (a reconstructible family needs injective message vectors);
* :mod:`~repro.reductions.collision` — the adversarial search: for any
  *candidate frugal* local function, hunt for two graphs with identical
  message vectors but different property values — a certificate that **no**
  global function can make that local function work.
"""

from repro.reductions.gadgets import square_gadget, diameter_gadget, triangle_gadget
from repro.reductions.square import SquareReduction
from repro.reductions.diameter import DiameterReduction
from repro.reductions.triangle import TriangleReduction
from repro.reductions.oracles import (
    OracleSquareDetector,
    OracleTriangleDetector,
    OracleDiameterDetector,
)
from repro.reductions.lemma1 import (
    lemma1_admits_reconstruction,
    capacity_gap_rows,
    message_vectors_injective,
)
from repro.reductions.coalition import (
    CoalitionEncoder,
    HashedCoalitionEncoder,
    EdgeStatsCoalitionEncoder,
    CoalitionCollisionWitness,
    find_coalition_collision,
    coalition_parts,
    coalition_capacity_bits,
)
from repro.reductions.collision import (
    CollisionWitness,
    find_collision_exhaustive,
    find_collision_sampled,
    LocalEncoder,
    DegreeEncoder,
    DegreeSumEncoder,
    PowerSumEncoder,
    HashedNeighborhoodEncoder,
)

__all__ = [
    "square_gadget",
    "diameter_gadget",
    "triangle_gadget",
    "SquareReduction",
    "DiameterReduction",
    "TriangleReduction",
    "OracleSquareDetector",
    "OracleTriangleDetector",
    "OracleDiameterDetector",
    "lemma1_admits_reconstruction",
    "capacity_gap_rows",
    "message_vectors_injective",
    "CoalitionEncoder",
    "HashedCoalitionEncoder",
    "EdgeStatsCoalitionEncoder",
    "CoalitionCollisionWitness",
    "find_coalition_collision",
    "coalition_parts",
    "coalition_capacity_bits",
    "CollisionWitness",
    "find_collision_exhaustive",
    "find_collision_sampled",
    "LocalEncoder",
    "DegreeEncoder",
    "DegreeSumEncoder",
    "PowerSumEncoder",
    "HashedNeighborhoodEncoder",
]
