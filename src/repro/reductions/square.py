"""Theorem 1 / Algorithm 1: a square detector yields a square-free reconstructor.

Given any one-round protocol ``Γ`` deciding "does the graph contain C4?",
the derived protocol ``Δ`` reconstructs any *square-free* G:

* **Local phase** — node ``i`` of G sends exactly what Γ's local function
  would send for node ``i`` of the gadget ``G'_{s,t}``: since ``i``'s
  gadget neighbourhood ``N_G(i) ∪ {i+n}`` is the same for every (s, t), one
  message suffices: ``Δ^l_n(i, N) = Γ^l_{2n}(i, N ∪ {i+n})``.
* **Global phase** — for every pair ``s < t`` the referee completes the
  message vector with the gadget vertices' messages (computable without G:
  pendant ``j`` has neighbourhood ``{j-n}``, except ``n+s``/``n+t`` which
  also see each other), asks Γ's global function whether ``G'_{s,t}`` has a
  square, and records the answer as the edge bit ``{s,t} ∈ E``.

Message blowup: ``|Δ^l| = k(2n)`` where ``k(·)`` is Γ's message-size
function — frugal Γ gives frugal Δ.  Since there are ``2^{Θ(n^{3/2})}``
square-free graphs (Kleitman–Winston), Lemma 1 forbids a frugal Δ, hence a
frugal Γ cannot exist.  Running :class:`SquareReduction` over a correct
(non-frugal) oracle Γ validates every step that *is* executable.
"""

from __future__ import annotations

from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol, ReconstructionProtocol

__all__ = ["SquareReduction"]


class SquareReduction(ReconstructionProtocol):
    """``Δ`` = ReconstructGraphsWithoutSquares(Γ), Algorithm 1 verbatim."""

    def __init__(self, detector: DecisionProtocol) -> None:
        self.detector = detector
        self.name = f"square-reduction[{detector.name}]"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        """``Δ^l_n(i, N) = Γ^l_{2n}(i, N ∪ {i+n})`` — (s,t)-independent."""
        return self.detector.local(2 * n, i, neighborhood | {i + n})

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        gamma = self.detector
        h = LabeledGraph(n)
        # pendant messages that do not depend on (s, t): vertex n+j sees {j}
        plain_pendant = [gamma.local(2 * n, n + j, frozenset({j})) for j in range(1, n + 1)]
        for s in range(1, n + 1):
            for t in range(s + 1, n + 1):
                tail = list(plain_pendant)
                tail[s - 1] = gamma.local(2 * n, n + s, frozenset({s, n + t}))
                tail[t - 1] = gamma.local(2 * n, n + t, frozenset({t, n + s}))
                if gamma.global_(2 * n, messages + tail):
                    h.add_edge(s, t)  # G'_{s,t} has a square
        return h
