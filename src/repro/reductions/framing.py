"""Framing for tuple messages.

Theorems 2 and 3 have each node send a *pair* or *triple* of Γ-messages as
its Δ-message.  A :class:`~repro.model.message.Message` is raw bits, so the
components need self-delimiting framing to be recoverable: each component is
prefixed with its length coded in Elias delta (``O(log length)`` bits, so
the overhead preserves frugality — a frugal Γ gives Δ-messages of
``c·k(n) + O(log log n)`` bits, matching the paper's "twice/three times as
big" up to the additive framing term, which the experiments report).
"""

from __future__ import annotations

from repro.bits.codes import EliasDeltaCode
from repro.bits.writer import BitWriter
from repro.errors import DecodeError
from repro.model.message import Message

__all__ = ["pack_messages", "unpack_messages"]

_delta = EliasDeltaCode()


def pack_messages(parts: list[Message]) -> Message:
    """Concatenate messages with per-part delta-coded length prefixes."""
    w = BitWriter()
    for part in parts:
        _delta.encode(w, part.bits + 1)  # +1: delta encodes >= 1
        w.write_bits(part.acc, part.bits)
    return Message.from_writer(w)


def unpack_messages(msg: Message, count: int) -> list[Message]:
    """Recover exactly ``count`` packed messages; strict framing."""
    r = msg.reader()
    parts: list[Message] = []
    try:
        for _ in range(count):
            nbits = _delta.decode(r) - 1
            parts.append(Message(r.read_bits(nbits), nbits))
        r.expect_exhausted()
    except DecodeError:
        raise
    except Exception as exc:
        raise DecodeError(f"malformed packed message: {exc}") from exc
    return parts
