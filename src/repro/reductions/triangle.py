"""Theorem 3: a triangle detector yields a reconstructor for triangle-free graphs.

The gadget (Figure 2) adds a single vertex ``n+1`` adjacent to s and t; when
G itself has no triangle, ``G'_{s,t}`` has one iff ``{s,t} ∈ E`` (the
triangle ``s, t, n+1``).

A node's gadget neighbourhood depends on (s, t) only through membership in
``{s, t}``, so each node sends the *pair*

* ``m'_i  = Γ^l_{n+1}(i, N)``           (role: bystander),
* ``m''_i = Γ^l_{n+1}(i, N ∪ {n+1})``   (role: i ∈ {s, t}),

packed — "Δ is frugal, since its messages are twice as big as those of Γ".

The paper applies this to bipartite graphs with fixed parts
(``Ω(2^{(n/2)²})`` of them — already too many for Lemma 1); the
implementation reconstructs any triangle-free graph, of which the fixed-part
bipartite family is the counting witness.
"""

from __future__ import annotations

from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol, ReconstructionProtocol
from repro.reductions.framing import pack_messages, unpack_messages

__all__ = ["TriangleReduction"]


class TriangleReduction(ReconstructionProtocol):
    """``Δ``: reconstruct triangle-free graphs from a triangle detector Γ."""

    def __init__(self, detector: DecisionProtocol) -> None:
        self.detector = detector
        self.name = f"triangle-reduction[{detector.name}]"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        """The pair ``(m'_i, m''_i)``, packed."""
        gamma = self.detector
        m_plain = gamma.local(n + 1, i, neighborhood)
        m_marked = gamma.local(n + 1, i, neighborhood | {n + 1})
        return pack_messages([m_plain, m_marked])

    def global_(self, n: int, messages: list[Message]) -> LabeledGraph:
        gamma = self.detector
        pairs = [unpack_messages(m, 2) for m in messages]
        h = LabeledGraph(n)
        for s in range(1, n + 1):
            for t in range(s + 1, n + 1):
                vec = [pairs[i - 1][0] for i in range(1, n + 1)]
                vec[s - 1] = pairs[s - 1][1]
                vec[t - 1] = pairs[t - 1][1]
                vec.append(gamma.local(n + 1, n + 1, frozenset({s, t})))
                if gamma.global_(n + 1, vec):
                    h.add_edge(s, t)  # G'_{s,t} has a triangle
        return h
