"""Ground-truth detector protocols used to validate the reductions.

An impossibility proof cannot be executed against a protocol that does not
exist — but its *reduction* can be executed against a protocol that is
correct and merely non-frugal.  Each oracle here sends the full
neighbourhood bitmap (n bits per node), reconstructs the graph at the
referee, and evaluates the target property exactly.  Plugging an oracle
into a Section II reduction must therefore yield a *correct* reconstructor
— which the tests verify — demonstrating that the reduction logic itself is
sound; the frugality accounting (Δ's messages are as big as Γ's, up to the
stated factor) is measured separately.

The oracles' global functions must be *total*: Algorithm 1 feeds them
message vectors of simulated graphs, and nothing guarantees those encode a
symmetric adjacency relation, so the union-of-claims decoding from
:class:`~repro.protocols.trivial.FullAdjacencyProtocol` is reused.
"""

from __future__ import annotations

from repro.graphs.properties import diameter, has_square, has_triangle
from repro.model.message import Message
from repro.model.protocol import DecisionProtocol
from repro.protocols.trivial import FullAdjacencyProtocol

__all__ = ["OracleSquareDetector", "OracleTriangleDetector", "OracleDiameterDetector"]


class _OracleDetector(DecisionProtocol):
    """Shared plumbing: full-adjacency messages, exact predicate at the referee."""

    _inner = FullAdjacencyProtocol()

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        return self._inner.local(n, i, neighborhood)

    def _decode(self, n: int, messages: list[Message]):
        return self._inner.global_(n, messages)


class OracleSquareDetector(_OracleDetector):
    """Decides "does G contain C4 as a subgraph?" — Theorem 1's hypothetical Γ."""

    name = "oracle-square-detector"

    def global_(self, n: int, messages: list[Message]) -> bool:
        return has_square(self._decode(n, messages))


class OracleTriangleDetector(_OracleDetector):
    """Decides "does G contain K3?" — Theorem 3's hypothetical Γ."""

    name = "oracle-triangle-detector"

    def global_(self, n: int, messages: list[Message]) -> bool:
        return has_triangle(self._decode(n, messages))


class OracleDiameterDetector(_OracleDetector):
    """Decides "is diam(G) <= bound?" — Theorem 2's hypothetical Γ (bound = 3)."""

    def __init__(self, bound: int = 3) -> None:
        self.bound = bound
        self.name = f"oracle-diameter<={bound}-detector"

    def global_(self, n: int, messages: list[Message]) -> bool:
        return diameter(self._decode(n, messages)) <= self.bound
