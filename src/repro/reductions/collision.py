"""Adversarial collision search: the pigeonhole argument, demonstrated on real encoders.

Section II's intuition — "they would need to send their whole adjacency
list" — becomes concrete here.  A one-round protocol's fate is decided by
its *local* function alone: if two graphs produce the same message vector
but differ on the property, **no** global function can be correct.  The
searchers below hunt for such witness pairs:

* :func:`find_collision_exhaustive` — enumerate all labelled graphs on n
  vertices (guarded), bucket by message vector, report a bucket mixing
  property values;
* :func:`find_collision_sampled` — birthday-style random search over a
  generator, for sizes beyond enumeration.

Candidate local encoders (all frugal) are provided to be killed:
:class:`DegreeEncoder`, :class:`DegreeSumEncoder` (the forest encoder —
complete for degeneracy 1 yet useless for C4 on general graphs),
:class:`PowerSumEncoder` (Algorithm 3 with fixed k — complete for
degeneracy ≤ k, still collides beyond), and
:class:`HashedNeighborhoodEncoder` (a random-fingerprint strawman).

A found witness is *certified*: the pair of graphs, their property values,
and the shared message vector are returned so tests can re-verify.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.bits.sizing import id_width
from repro.bits.writer import BitWriter
from repro.graphs.counting import enumerate_labeled_graphs
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.protocols.powersum import compute_power_sums

__all__ = [
    "LocalEncoder",
    "DegreeEncoder",
    "DegreeSumEncoder",
    "PowerSumEncoder",
    "HashedNeighborhoodEncoder",
    "CollisionWitness",
    "find_collision_exhaustive",
    "find_collision_sampled",
]


class LocalEncoder:
    """A bare local function ``(n, i, N) -> Message`` — no global function needed.

    The collision search quantifies over all possible global functions at
    once, so candidates only supply the encoding side.
    """

    name = "local-encoder"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        raise NotImplementedError

    def message_vector(self, g: LabeledGraph) -> tuple[Message, ...]:
        return tuple(self.local(g.n, i, g.neighbors(i)) for i in g.vertices())


class DegreeEncoder(LocalEncoder):
    """Send only the degree (``<= log(n+1)`` bits)."""

    name = "degree"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = BitWriter()
        w.write_bits(len(neighborhood), id_width(n))
        return Message.from_writer(w)


class DegreeSumEncoder(LocalEncoder):
    """Send (degree, sum of neighbour IDs) — the Section III.A forest message."""

    name = "degree+sum"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        w = BitWriter()
        wid = id_width(n)
        w.write_bits(len(neighborhood), wid)
        w.write_bits(sum(neighborhood), 2 * wid)
        return Message.from_writer(w)


class PowerSumEncoder(LocalEncoder):
    """Algorithm 3's message for a fixed k — frugal, complete only up to degeneracy k."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.name = f"powersum(k={k})"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        from repro.protocols.powersum import encode_powersum_message

        return encode_powersum_message(n, self.k, i, neighborhood)


class HashedNeighborhoodEncoder(LocalEncoder):
    """Send a ``bits``-bit deterministic fingerprint of (i, N) — a hashing strawman.

    Stands in for "maybe a clever randomized digest escapes the counting
    argument": it cannot — pigeonhole guarantees collisions once the family
    outnumbers the vectors, and the search finds them.
    """

    def __init__(self, bits: int = 16, salt: int = 0) -> None:
        self.bits = bits
        self.salt = salt
        self.name = f"hashed-neighborhood({bits}b)"

    def local(self, n: int, i: int, neighborhood: frozenset[int]) -> Message:
        mask = 0
        for v in neighborhood:
            mask |= 1 << v
        # splitmix64-style scramble of (i, mask, salt); stable across runs
        x = (hash((i, mask, self.salt)) & 0xFFFFFFFFFFFFFFFF) or 1
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        w = BitWriter()
        w.write_bits(x & ((1 << self.bits) - 1), self.bits)
        return Message.from_writer(w)


@dataclass(frozen=True)
class CollisionWitness:
    """A certified kill: two graphs the encoder cannot separate, property values differing."""

    encoder: str
    g_with: LabeledGraph
    g_without: LabeledGraph
    property_name: str

    def verify(self, encoder: LocalEncoder, prop: Callable[[LabeledGraph], bool]) -> bool:
        """Re-check the certificate from scratch."""
        return (
            encoder.message_vector(self.g_with) == encoder.message_vector(self.g_without)
            and prop(self.g_with)
            and not prop(self.g_without)
        )


def find_collision_exhaustive(
    encoder: LocalEncoder,
    n: int,
    prop: Callable[[LabeledGraph], bool],
    property_name: str = "property",
) -> CollisionWitness | None:
    """Bucket every n-vertex labelled graph by message vector; report a mixed bucket.

    Complete for the given n: returns ``None`` only if the encoder genuinely
    separates the property on ALL pairs (possible when ``2^{bits·n}`` exceeds
    the graph count — the Lemma 1 regime).
    """
    buckets: dict[tuple[Message, ...], tuple[LabeledGraph | None, LabeledGraph | None]] = {}
    for g in enumerate_labeled_graphs(n):
        key = encoder.message_vector(g)
        holds = prop(g)
        with_g, without_g = buckets.get(key, (None, None))
        if holds and with_g is None:
            with_g = g.copy()
        elif not holds and without_g is None:
            without_g = g.copy()
        if with_g is not None and without_g is not None:
            return CollisionWitness(encoder.name, with_g, without_g, property_name)
        buckets[key] = (with_g, without_g)
    return None


def find_collision_sampled(
    encoder: LocalEncoder,
    generator: Iterator[LabeledGraph],
    prop: Callable[[LabeledGraph], bool],
    property_name: str = "property",
    max_samples: int = 100_000,
) -> CollisionWitness | None:
    """Birthday search over a graph stream for sizes beyond enumeration."""
    buckets: dict[tuple[Message, ...], tuple[LabeledGraph | None, LabeledGraph | None]] = {}
    for count, g in enumerate(generator):
        if count >= max_samples:
            return None
        key = encoder.message_vector(g)
        holds = prop(g)
        with_g, without_g = buckets.get(key, (None, None))
        if holds and with_g is None:
            with_g = g.copy()
        elif not holds and without_g is None:
            without_g = g.copy()
        if with_g is not None and without_g is not None:
            return CollisionWitness(encoder.name, with_g, without_g, property_name)
        buckets[key] = (with_g, without_g)
    return None
