"""Coalition (partition-argument) protocols — the strengthened model of the hardness proofs.

The conclusion explains the paper's lower-bound technique: "we have
partitioned the vertices of the graph into two or three parts, and we have
shown that, **even if vertices of a same part are allowed to share their
local information**, the problem remains intractable."  This module makes
that strengthened model concrete:

* a :class:`CoalitionEncoder` sees, per part, the *pooled* knowledge of all
  its vertices (every neighbourhood in the part) and emits one message for
  the whole part;
* :func:`find_coalition_collision` runs the same pigeonhole search as the
  per-node version: two graphs whose ``c`` coalition messages all agree but
  whose property differs defeat every possible referee.

With ``c`` parts of ``B`` bits each, only ``2^{cB}`` message vectors exist
— a *much* tighter pigeonhole than the per-node model (`c` is constant!),
which is why the paper's Theorems 1–3 survive coalition strengthening while
connectivity (whose partition capacity ``O(k log n)·n`` suffices, see
:mod:`repro.protocols.partition_connectivity`) escapes it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.bits.writer import BitWriter
from repro.graphs.counting import enumerate_labeled_graphs
from repro.graphs.labeled import LabeledGraph
from repro.model.message import Message
from repro.sketching.field import splitmix64

__all__ = [
    "coalition_parts",
    "CoalitionEncoder",
    "HashedCoalitionEncoder",
    "EdgeStatsCoalitionEncoder",
    "CoalitionCollisionWitness",
    "find_coalition_collision",
    "coalition_capacity_bits",
]


def coalition_parts(n: int, c: int) -> list[tuple[int, ...]]:
    """Split ``1..n`` into ``c`` contiguous coalitions (sizes within 1)."""
    if c < 1:
        raise ValueError(f"need c >= 1 coalitions, got {c}")
    base, extra = divmod(n, c)
    parts = []
    start = 1
    for p in range(c):
        size = base + (1 if p < extra else 0)
        parts.append(tuple(range(start, start + size)))
        start += size
    return parts


def coalition_capacity_bits(c: int, bits_per_part: int) -> int:
    """Total information a c-coalition round can deliver: ``c · B`` bits.

    Constant in n — the crux of the partition argument: any family with more
    than ``2^{cB}`` members admits a collision outright.
    """
    return c * bits_per_part


class CoalitionEncoder:
    """One message per part, computed from the part's pooled knowledge."""

    name = "coalition-encoder"

    def __init__(self, c: int) -> None:
        self.c = c

    def part_message(
        self, n: int, part: tuple[int, ...], knowledge: dict[int, frozenset[int]]
    ) -> Message:
        """The message of one coalition; ``knowledge[v] = N(v)`` for v in part."""
        raise NotImplementedError

    def message_vector(self, g: LabeledGraph) -> tuple[Message, ...]:
        out = []
        for part in coalition_parts(g.n, self.c):
            knowledge = {v: g.neighbors(v) for v in part}
            out.append(self.part_message(g.n, part, knowledge))
        return tuple(out)


class HashedCoalitionEncoder(CoalitionEncoder):
    """Each part sends a ``bits``-bit fingerprint of everything it knows.

    The strongest *possible* digest of a fixed size — and still killed by
    pigeonhole, demonstrating that no cleverness rescues constant-size
    coalition messages.
    """

    def __init__(self, c: int, bits: int, salt: int = 0) -> None:
        super().__init__(c)
        self.bits = bits
        self.salt = salt
        self.name = f"hashed-coalition(c={c},{bits}b)"

    def part_message(self, n, part, knowledge):
        acc = splitmix64(self.salt)
        for v in part:
            mask = 0
            for w in knowledge[v]:
                mask |= 1 << w
            acc = splitmix64(acc ^ splitmix64(v) ^ splitmix64(mask & 0xFFFFFFFFFFFFFFFF) ^ (mask >> 64))
        w = BitWriter()
        w.write_bits(acc & ((1 << self.bits) - 1), self.bits)
        return Message.from_writer(w)


class EdgeStatsCoalitionEncoder(CoalitionEncoder):
    """Each part sends (edges-within, edges-leaving, degree sum) — natural but doomed."""

    def __init__(self, c: int) -> None:
        super().__init__(c)
        self.name = f"edge-stats-coalition(c={c})"

    def part_message(self, n, part, knowledge):
        members = set(part)
        inside = 0
        leaving = 0
        degsum = 0
        for v in part:
            for u in knowledge[v]:
                degsum += 1
                if u in members:
                    inside += 1  # counted twice, halved below
                else:
                    leaving += 1
        w = BitWriter()
        width = (n * n).bit_length()
        w.write_bits(inside // 2, width)
        w.write_bits(leaving, width)
        w.write_bits(degsum, width)
        return Message.from_writer(w)


@dataclass(frozen=True)
class CoalitionCollisionWitness:
    """Two graphs all c coalition messages agree on, property values differing."""

    encoder: str
    g_with: LabeledGraph
    g_without: LabeledGraph
    property_name: str

    def verify(self, encoder: CoalitionEncoder, prop: Callable[[LabeledGraph], bool]) -> bool:
        return (
            encoder.message_vector(self.g_with) == encoder.message_vector(self.g_without)
            and prop(self.g_with)
            and not prop(self.g_without)
        )


def find_coalition_collision(
    encoder: CoalitionEncoder,
    n: int,
    prop: Callable[[LabeledGraph], bool],
    property_name: str = "property",
) -> CoalitionCollisionWitness | None:
    """Exhaustive pigeonhole search in the coalition model (guarded small n)."""
    buckets: dict[tuple[Message, ...], tuple[LabeledGraph | None, LabeledGraph | None]] = {}
    for g in enumerate_labeled_graphs(n):
        key = encoder.message_vector(g)
        holds = prop(g)
        with_g, without_g = buckets.get(key, (None, None))
        if holds and with_g is None:
            with_g = g.copy()
        elif not holds and without_g is None:
            without_g = g.copy()
        if with_g is not None and without_g is not None:
            return CoalitionCollisionWitness(encoder.name, with_g, without_g, property_name)
        buckets[key] = (with_g, without_g)
    return None
