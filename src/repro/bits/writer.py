"""Append-only bit stream builder.

A :class:`BitWriter` accumulates bits most-significant-bit first into an
arbitrary-precision integer.  This is the fastest pure-Python representation
for the write-once / read-once messages exchanged in the referee model:
appending ``w`` bits is one shift and one or, and the finished stream
converts to bytes in a single call.
"""

from __future__ import annotations

from repro.errors import CodecError

__all__ = ["BitWriter"]


class BitWriter:
    """Accumulates bits MSB-first; the unit of message construction.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> len(w)
    4
    >>> w.to_bytes().hex()
    'b0'
    """

    __slots__ = ("_acc", "_nbits")

    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    @property
    def bits(self) -> int:
        """Number of bits written so far (alias for ``len``)."""
        return self._nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise CodecError(f"bit must be 0 or 1, got {bit!r}")
        self._acc = (self._acc << 1) | bit
        self._nbits += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits, MSB first.

        ``value`` must be a non-negative integer fitting in ``width`` bits.
        ``width == 0`` is allowed only for ``value == 0`` and appends nothing.
        """
        if width < 0:
            raise CodecError(f"width must be >= 0, got {width}")
        if value < 0:
            raise CodecError(f"value must be >= 0, got {value}")
        if value >> width:
            raise CodecError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._nbits += width

    def write_many(self, fields) -> None:
        """Append ``(value, width)`` pairs in a single pass, MSB first.

        Bit-identical to calling :meth:`write_bits` per pair, but the
        (arbitrarily large) accumulated stream is never shifted per field:
        fields fold into a small bounded chunk, and only full chunks are
        spliced onto the stream — packing ``k`` fields into an ``N``-bit
        message costs ``O(N²/chunk + k)`` bit-copies instead of the
        ``O(N·k)`` of per-field appends.  This is the encoder hot path for
        sketch messages (rounds × levels × 3 counters each).  Validation
        failures raise before the writer is touched, so a rejected batch
        never leaves a half-written stream.
        """
        parts: list[tuple[int, int]] = []
        acc = 0
        nbits = 0
        for value, width in fields:
            if width < 0:
                raise CodecError(f"width must be >= 0, got {width}")
            if value < 0:
                raise CodecError(f"value must be >= 0, got {value}")
            if value >> width:
                raise CodecError(f"value {value} does not fit in {width} bits")
            acc = (acc << width) | value
            nbits += width
            if nbits >= 8192:
                parts.append((acc, nbits))
                acc = 0
                nbits = 0
        parts.append((acc, nbits))
        for chunk, chunk_bits in parts:
            self._acc = (self._acc << chunk_bits) | chunk
            self._nbits += chunk_bits

    def write_packed(self, data: bytes, nbits: int) -> None:
        """Append ``nbits`` pre-packed bits (MSB first, right-padded bytes).

        The splice point for array-backed packers
        (:func:`repro.sketching.kernels.pack_fields`): the kernel renders a
        whole field stream to bytes off to the side, and this folds it onto
        the stream in one shift — bit-identical to :meth:`write_many` on the
        same fields.  ``data`` must hold at least ``nbits`` bits; trailing
        pad bits beyond ``nbits`` are ignored.
        """
        if nbits < 0:
            raise CodecError(f"nbits must be >= 0, got {nbits}")
        if nbits > len(data) * 8:
            raise CodecError(
                f"nbits {nbits} exceeds the {len(data) * 8} bits in data"
            )
        value = int.from_bytes(data, "big") >> (len(data) * 8 - nbits)
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits

    def write_writer(self, other: "BitWriter") -> None:
        """Append the full contents of another writer."""
        self._acc = (self._acc << other._nbits) | other._acc
        self._nbits += other._nbits

    def to_int(self) -> tuple[int, int]:
        """Return ``(acc, nbits)`` — the raw integer and the bit count."""
        return self._acc, self._nbits

    def to_bytes(self) -> bytes:
        """Return the stream as bytes, zero-padded on the right to a byte boundary."""
        nbytes = (self._nbits + 7) // 8
        pad = nbytes * 8 - self._nbits
        return (self._acc << pad).to_bytes(nbytes, "big")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitWriter(bits={self._nbits})"
