"""Closed-form bit-length helpers.

These are the arithmetic facts behind the paper's frugality accounting:
an ID in ``1..n`` costs ``ceil(log2(n+1))`` bits fixed-width, a power sum
``b_p <= n^{p+1}`` costs at most ``(p+1) * ceil(log2(n+1))`` bits, and so on
(Lemma 2).  The frugality auditor uses these to convert "O(log n)" into a
concrete per-protocol constant.
"""

from __future__ import annotations

from repro.errors import CodecError

__all__ = [
    "bit_length",
    "fixed_width_for",
    "id_width",
    "elias_gamma_length",
    "elias_delta_length",
    "varint_length",
]


def bit_length(value: int) -> int:
    """Bits in the binary representation of ``value`` (0 -> 0, 1 -> 1, 5 -> 3)."""
    if value < 0:
        raise CodecError(f"value must be >= 0, got {value}")
    return value.bit_length()


def fixed_width_for(max_value: int) -> int:
    """Width needed to store any integer in ``0..max_value`` fixed-width.

    >>> fixed_width_for(0), fixed_width_for(1), fixed_width_for(255), fixed_width_for(256)
    (0, 1, 8, 9)
    """
    if max_value < 0:
        raise CodecError(f"max_value must be >= 0, got {max_value}")
    return max_value.bit_length()


def id_width(n: int) -> int:
    """Width used throughout the library for a vertex ID in ``1..n``.

    IDs are stored as-is (not shifted to 0-based), so the width covers the
    value ``n`` itself.  This is the paper's ``log n`` unit.
    """
    if n < 1:
        raise CodecError(f"n must be >= 1, got {n}")
    return n.bit_length()


def elias_gamma_length(value: int) -> int:
    """Length in bits of the Elias gamma code of ``value >= 1``."""
    if value < 1:
        raise CodecError(f"Elias gamma encodes integers >= 1, got {value}")
    return 2 * value.bit_length() - 1


def elias_delta_length(value: int) -> int:
    """Length in bits of the Elias delta code of ``value >= 1``."""
    if value < 1:
        raise CodecError(f"Elias delta encodes integers >= 1, got {value}")
    nb = value.bit_length()
    return nb + 2 * nb.bit_length() - 2


def varint_length(value: int) -> int:
    """Length in bits of the LEB128 varint code of ``value >= 0`` (7 data bits/byte)."""
    if value < 0:
        raise CodecError(f"varint encodes integers >= 0, got {value}")
    if value == 0:
        return 8
    groups = (value.bit_length() + 6) // 7
    return 8 * groups
