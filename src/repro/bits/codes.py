"""Integer codes over bit streams.

Each code is a stateless object with ``encode(writer, value)`` and
``decode(reader) -> value``.  Fixed-width codes carry their width; the
self-delimiting codes (unary, Elias gamma/delta, varint) need no external
framing and are used where a value's magnitude is data-dependent (e.g. power
sums in Algorithm 3, whose size grows with ``p``).

The codes are deliberately classical: the paper measures message size in
bits, so the library uses textbook codes whose lengths have closed forms
(see :mod:`repro.bits.sizing`) that the experiments can check measured
lengths against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.bits.reader import BitReader
from repro.bits.writer import BitWriter
from repro.errors import CodecError

__all__ = [
    "IntegerCode",
    "FixedWidthCode",
    "UnaryCode",
    "EliasGammaCode",
    "EliasDeltaCode",
    "VarintCode",
]


class IntegerCode(ABC):
    """Interface for integer <-> bit-stream codes."""

    @abstractmethod
    def encode(self, writer: BitWriter, value: int) -> None:
        """Append the code word for ``value`` to ``writer``."""

    @abstractmethod
    def decode(self, reader: BitReader) -> int:
        """Consume one code word from ``reader`` and return its value."""

    def encode_to_bits(self, value: int) -> tuple[int, int]:
        """Convenience: encode ``value`` alone, returning ``(acc, nbits)``."""
        w = BitWriter()
        self.encode(w, value)
        return w.to_int()


class FixedWidthCode(IntegerCode):
    """Non-negative integers in exactly ``width`` bits.

    The workhorse code: vertex IDs use ``FixedWidthCode(id_width(n))``.
    """

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width < 0:
            raise CodecError(f"width must be >= 0, got {width}")
        self.width = width

    def encode(self, writer: BitWriter, value: int) -> None:
        writer.write_bits(value, self.width)

    def decode(self, reader: BitReader) -> int:
        return reader.read_bits(self.width)

    def __repr__(self) -> str:
        return f"FixedWidthCode({self.width})"


class UnaryCode(IntegerCode):
    """``value`` zeros followed by a one; encodes integers >= 0."""

    def encode(self, writer: BitWriter, value: int) -> None:
        if value < 0:
            raise CodecError(f"unary encodes integers >= 0, got {value}")
        writer.write_bits(1, value + 1)

    def decode(self, reader: BitReader) -> int:
        count = 0
        while reader.read_bit() == 0:
            count += 1
        return count


class EliasGammaCode(IntegerCode):
    """Elias gamma: unary length prefix then the value's low bits; integers >= 1."""

    def encode(self, writer: BitWriter, value: int) -> None:
        if value < 1:
            raise CodecError(f"Elias gamma encodes integers >= 1, got {value}")
        nb = value.bit_length()
        writer.write_bits(0, nb - 1)
        writer.write_bits(value, nb)

    def decode(self, reader: BitReader) -> int:
        zeros = 0
        while reader.read_bit() == 0:
            zeros += 1
        value = 1
        if zeros:
            value = (1 << zeros) | reader.read_bits(zeros)
        return value


class EliasDeltaCode(IntegerCode):
    """Elias delta: gamma-coded length then the value's low bits; integers >= 1.

    Asymptotically ``log v + 2 log log v`` bits — used for the power sums in
    Algorithm 3 so a degree-0 vertex does not pay for k full-width zeros.
    """

    _gamma = EliasGammaCode()

    def encode(self, writer: BitWriter, value: int) -> None:
        if value < 1:
            raise CodecError(f"Elias delta encodes integers >= 1, got {value}")
        nb = value.bit_length()
        self._gamma.encode(writer, nb)
        writer.write_bits(value & ((1 << (nb - 1)) - 1), nb - 1)

    def decode(self, reader: BitReader) -> int:
        nb = self._gamma.decode(reader)
        if nb == 1:
            return 1
        return (1 << (nb - 1)) | reader.read_bits(nb - 1)


class VarintCode(IntegerCode):
    """LEB128: 7 data bits per byte, high bit is the continuation flag; >= 0."""

    def encode(self, writer: BitWriter, value: int) -> None:
        if value < 0:
            raise CodecError(f"varint encodes integers >= 0, got {value}")
        while True:
            group = value & 0x7F
            value >>= 7
            if value:
                writer.write_bits(0x80 | group, 8)
            else:
                writer.write_bits(group, 8)
                return

    def decode(self, reader: BitReader) -> int:
        value = 0
        shift = 0
        while True:
            byte = reader.read_bits(8)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 10_000:
                raise CodecError("varint too long (corrupt stream?)")
