"""Bit-level substrate: exact message-size accounting for frugal protocols.

The paper's central resource is the number of *bits* each node sends to the
referee.  This subpackage provides:

* :class:`~repro.bits.writer.BitWriter` / :class:`~repro.bits.reader.BitReader`
  — append-only bit stream builder and cursor-based reader;
* :mod:`~repro.bits.codes` — self-delimiting and fixed-width integer codes
  (fixed-width, unary, Elias gamma, Elias delta, LEB128 varint) used by the
  protocol implementations to serialize IDs, degrees, and power sums;
* :mod:`~repro.bits.sizing` — closed-form bit-length helpers used by the
  frugality auditor and by the Lemma 2 experiments.

All protocols in :mod:`repro.protocols` serialize through this layer so the
auditor's byte counts are honest: a message's size is the number of bits
actually written, not a Python ``sys.getsizeof`` estimate.
"""

from repro.bits.writer import BitWriter
from repro.bits.reader import BitReader
from repro.bits.codes import (
    FixedWidthCode,
    UnaryCode,
    EliasGammaCode,
    EliasDeltaCode,
    VarintCode,
    IntegerCode,
)
from repro.bits.sizing import (
    bit_length,
    fixed_width_for,
    id_width,
    elias_gamma_length,
    elias_delta_length,
    varint_length,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "FixedWidthCode",
    "UnaryCode",
    "EliasGammaCode",
    "EliasDeltaCode",
    "VarintCode",
    "IntegerCode",
    "bit_length",
    "fixed_width_for",
    "id_width",
    "elias_gamma_length",
    "elias_delta_length",
    "varint_length",
]
