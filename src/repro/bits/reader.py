"""Cursor-based bit stream reader, the dual of :class:`~repro.bits.writer.BitWriter`."""

from __future__ import annotations

from repro.errors import BitstreamUnderflow, CodecError

__all__ = ["BitReader"]


class BitReader:
    """Reads bits MSB-first from a stream produced by :class:`BitWriter`.

    Construct either from ``(acc, nbits)`` as returned by
    :meth:`BitWriter.to_int`, or from ``bytes`` (in which case the bit count
    is ``8 * len(data)`` unless ``nbits`` is given explicitly to trim the
    right-padding added by :meth:`BitWriter.to_bytes`).
    """

    __slots__ = ("_acc", "_nbits", "_pos")

    def __init__(self, data: bytes | int, nbits: int | None = None) -> None:
        if isinstance(data, bytes):
            acc = int.from_bytes(data, "big")
            total = 8 * len(data)
            if nbits is not None:
                if nbits > total or nbits < 0:
                    raise CodecError(f"nbits {nbits} out of range for {len(data)} bytes")
                acc >>= total - nbits
                total = nbits
        else:
            if nbits is None:
                raise CodecError("nbits is required when constructing from an int")
            if nbits < 0 or (nbits == 0 and data != 0) or (data >> nbits):
                raise CodecError(f"value does not fit in {nbits} bits")
            acc = data
            total = nbits
        self._acc = acc
        self._nbits = total
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._nbits - self._pos

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._pos

    def read_bit(self) -> int:
        """Read and return the next bit."""
        return self.read_bits(1)

    def read_bits(self, width: int) -> int:
        """Read the next ``width`` bits as a non-negative integer."""
        if width < 0:
            raise CodecError(f"width must be >= 0, got {width}")
        if width > self.remaining:
            raise BitstreamUnderflow(
                f"requested {width} bits but only {self.remaining} remain"
            )
        shift = self._nbits - self._pos - width
        value = (self._acc >> shift) & ((1 << width) - 1)
        self._pos += width
        return value

    def expect_exhausted(self) -> None:
        """Raise :class:`CodecError` unless every bit has been consumed.

        Decoders call this to catch framing bugs: a well-formed message is
        read exactly once with nothing left over.
        """
        if self.remaining:
            raise CodecError(f"{self.remaining} unread bits remain in stream")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitReader(pos={self._pos}, nbits={self._nbits})"
