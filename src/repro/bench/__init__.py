"""repro.bench — the declarative performance harness.

The ROADMAP's north star is a system that *runs as fast as the hardware
allows*; this package is where that claim becomes measurable and gateable.
Benchmarks are registered like every other pluggable piece
(``@register(name, kind="benchmark")`` in :mod:`repro.bench.builtin`),
enumerable via ``repro.registry.catalog()`` / ``python -m repro list
--kind benchmark``, and run by one harness::

    from repro.bench import run_suite, write_suite

    report = run_suite(["l0-update", "l0-update-naive"], repeats=5)
    print(report["speedups"])            # {"l0-update": 1.9}
    write_suite(report, "BENCH_PR4.json")

or from the CLI::

    python -m repro bench --json                         # all benchmarks
    python -m repro bench l0-update --repeats 5
    python -m repro bench --gate benchmarks/baselines/bench.json  # exit 1 on regression

Reports carry wall-time statistics (:data:`~repro.model.referee.monotonic_clock`,
summarized by the results layer's :class:`~repro.results.aggregate.Stats`),
deterministic work counts / bit counts / result digests, peak RSS, and
optimized-vs-naive speedup ratios.  :func:`check_suite` gates a report
against a frozen baseline with the same
:class:`~repro.results.baseline.BaselineCheck` verdict CI already consumes.
"""

from repro.bench.harness import (
    BENCH_BASELINE_VERSION,
    BENCH_VERSION,
    DEFAULT_OUTPUT,
    BenchCase,
    BenchCheck,
    check_suite,
    freeze_suite,
    load_bench_baseline,
    peak_rss_kb,
    run_case,
    run_suite,
    write_suite,
)

__all__ = [
    "BENCH_BASELINE_VERSION",
    "BENCH_VERSION",
    "DEFAULT_OUTPUT",
    "BenchCase",
    "BenchCheck",
    "check_suite",
    "freeze_suite",
    "load_bench_baseline",
    "peak_rss_kb",
    "run_case",
    "run_suite",
    "write_suite",
]
