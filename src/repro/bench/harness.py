"""The benchmark harness: time registered cases, emit stable JSON, gate.

Measurement is a first-class, testable subsystem (the APEX/experimentator
idiom from SNIPPETS.md): benchmarks are *declared* — registered under
``kind="benchmark"`` in :mod:`repro.registry`, enumerable via ``catalog()``
and ``python -m repro list --kind benchmark`` — and this module is the one
place that runs a clock.

One run of :func:`run_suite` produces a JSON-ready report with a stable
schema (``BENCH_VERSION`` pins it)::

    {"bench_version": 1, "scale": 1.0, "repeats": 3,
     "suite": ["bits-pack", ...],
     "results": {"bits-pack": {"ops": ..., "bits": ..., "digest": "...",
                               "wall_seconds": {min/mean/max/p95/count},
                               "ops_per_second": ..., "peak_rss_kb": ...,
                               "meta": {...}}, ...},
     "speedups": {"l0-update": 1.9, ...}}

Wall time comes from :data:`repro.model.referee.monotonic_clock` (the one
clock the whole system uses), spread statistics reuse
:class:`repro.results.aggregate.Stats`, and memory is the process peak RSS.
``ops`` / ``bits`` / ``digest`` are *deterministic* — pure functions of the
benchmark inputs — which is what lets a frozen bench baseline gate CI on
any machine: :func:`check_suite` reuses the results layer's
:class:`~repro.results.baseline.BaselineCheck` / ``CheckFailure`` verdict
structures, pinning the deterministic fields exactly, wall time only up to
an explicit relative tolerance, and optimized-vs-naive speedup ratios
against declared floors.

Pairing convention: a benchmark named ``<name>-naive`` is the reference
implementation of ``<name>``; :func:`run_suite` reports the ratio
``naive_min / optimized_min`` under ``speedups[<name>]`` whenever both ran.

RNG hygiene: the harness draws no randomness at all, and builtin benchmark
inputs derive from :func:`~repro.sketching.field.splitmix64` chains — the
global ``random`` module is never touched (pinned by
``tests/bench/test_bench_no_global_rng.py``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro import registry
from repro.errors import BenchError
from repro.model.referee import monotonic_clock
from repro.results.aggregate import Stats, _PRECISION
from repro.results.baseline import BaselineCheck, CheckFailure

__all__ = [
    "BENCH_VERSION",
    "BENCH_BASELINE_VERSION",
    "DEFAULT_OUTPUT",
    "BenchCase",
    "BenchCheck",
    "peak_rss_kb",
    "run_case",
    "run_suite",
    "write_suite",
    "freeze_suite",
    "load_bench_baseline",
    "check_suite",
]

#: Bumped whenever the report schema changes shape.
BENCH_VERSION = 1

#: Bumped whenever the frozen bench-baseline schema changes shape.
BENCH_BASELINE_VERSION = 1

#: Where ``python -m repro bench`` writes the report by default.
DEFAULT_OUTPUT = pathlib.Path("BENCH_PR4.json")

#: Deterministic per-benchmark fields a bench baseline pins exactly.
_PINNED_FIELDS = ("ops", "bits", "digest")


@dataclass
class BenchCheck(BaselineCheck):
    """A :class:`~repro.results.baseline.BaselineCheck` whose timing slot
    is named honestly: bench gates pin bits exactly, so the inherited
    ``bits_tolerance`` is meaningless here and is dropped from the JSON
    form in favour of ``time_tolerance`` (``None`` when timing never
    gated)."""

    time_tolerance: float | None = None

    def to_dict(self) -> dict:
        out = super().to_dict()
        del out["bits_tolerance"]
        out["time_tolerance"] = self.time_tolerance
        return out


@dataclass(frozen=True)
class BenchCase:
    """One prepared benchmark: a timed operation plus static metadata.

    ``op`` is called once per repetition *on the clock* and returns the
    deterministic payload: ``ops`` (work units performed — required),
    optional ``bits`` (bits processed/produced) and ``digest`` (a stable
    hash of the computed result, the parity hook).  Input construction
    belongs in the registered factory, off the clock.
    """

    op: Callable[[], Mapping[str, Any]]
    meta: Mapping[str, Any] = field(default_factory=dict)


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 where unsupported).

    ``ru_maxrss`` is a process-wide *high-water mark*: it only ever grows,
    so a result entry records the peak as of the moment that case
    finished, not memory attributable to that case alone.  Run a single
    benchmark when you need an isolated ceiling.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return peak


def run_case(case: BenchCase, *, repeats: int = 3) -> dict[str, Any]:
    """Time one case ``repeats`` times; return its result entry."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    times: list[float] = []
    payload: Mapping[str, Any] = {}
    for _ in range(repeats):
        t0 = monotonic_clock()
        payload = case.op()
        times.append(monotonic_clock() - t0)
    if not isinstance(payload, Mapping) or "ops" not in payload:
        raise BenchError("a benchmark op must return a mapping with an 'ops' count")
    ops = int(payload["ops"])
    best = min(times)
    return {
        "ops": ops,
        "bits": int(payload.get("bits", 0)),
        "digest": str(payload.get("digest", "")),
        "wall_seconds": Stats.of([round(t, _PRECISION) for t in times]).to_dict(),
        "ops_per_second": round(ops / best, 2) if best > 0 else None,
        "peak_rss_kb": peak_rss_kb(),
        "meta": dict(case.meta),
    }


def _speedups(results: Mapping[str, Mapping]) -> dict[str, float]:
    """``{name: naive_min / optimized_min}`` for every ``-naive`` pair run."""
    out: dict[str, float] = {}
    for name in results:
        reference = results.get(f"{name}-naive")
        if reference is None:
            continue
        fast = results[name]["wall_seconds"]["min"]
        slow = reference["wall_seconds"]["min"]
        if fast > 0:
            out[name] = round(slow / fast, 2)
    return out


def run_suite(
    names: Sequence[str] | None = None,
    *,
    scale: float = 1.0,
    repeats: int = 3,
) -> dict[str, Any]:
    """Run benchmarks (all registered ones by default) and build the report.

    ``scale`` multiplies every benchmark's input sizes (factories take it
    as their one engine-supplied parameter); ``repeats`` is the number of
    timed repetitions per case.  Unknown names raise
    :class:`~repro.errors.UnknownRegistryEntry` with a did-you-mean.
    """
    if scale <= 0:
        raise BenchError(f"scale must be > 0, got {scale}")
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    bench = registry.BENCHMARK
    if names:
        selected = sorted({bench.resolve(name) for name in names})
    else:
        selected = list(bench.names())
    results = {
        name: run_case(bench.build(name, scale=scale), repeats=repeats)
        for name in selected
    }
    return {
        "bench_version": BENCH_VERSION,
        "python": platform.python_version(),
        "scale": scale,
        "repeats": repeats,
        "suite": selected,
        "results": results,
        "speedups": _speedups(results),
    }


def write_suite(report: Mapping[str, Any], path: str | pathlib.Path) -> pathlib.Path:
    """Write a report as stable JSON (sorted keys, indented, newline-final)."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")
    return path


# --------------------------------------------------------------------- #
# baseline gating
# --------------------------------------------------------------------- #


def freeze_suite(
    report: Mapping[str, Any], path: str | pathlib.Path, *, name: str | None = None
) -> pathlib.Path:
    """Freeze a report's gateable view to ``path`` (the bench baseline).

    Pins the deterministic fields per benchmark and records mean wall
    seconds (gated only when a tolerance is requested — timing must never
    fail a gate by default, exactly like :mod:`repro.results.diff`).
    ``min_speedup`` floors are operator-declared, so re-freezing over an
    existing baseline carries its floors forward — a refresh must never
    silently disarm the speedup gate.
    """
    path = pathlib.Path(path)
    results = report.get("results", {})
    if not results:
        raise BenchError("cannot freeze a bench baseline from zero results")
    floors: dict = {}
    if path.exists():
        try:
            floors = dict(load_bench_baseline(path).get("min_speedup", {}))
        except BenchError:
            floors = {}  # corrupt predecessor: start clean
    baseline = {
        "bench_baseline_version": BENCH_BASELINE_VERSION,
        "name": name if name is not None else path.stem,
        "scale": report.get("scale", 1.0),
        "pinned": {
            bench: {key: entry[key] for key in _PINNED_FIELDS}
            for bench, entry in sorted(results.items())
        },
        "wall_seconds_mean": {
            bench: entry["wall_seconds"]["mean"]
            for bench, entry in sorted(results.items())
        },
        "min_speedup": floors,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, sort_keys=True, indent=2) + "\n")
    return path


def load_bench_baseline(source: str | pathlib.Path | Mapping) -> dict:
    """Load and structurally check a frozen bench baseline."""
    if isinstance(source, Mapping):
        baseline = dict(source)
    else:
        path = pathlib.Path(source)
        if not path.exists():
            raise BenchError(f"bench baseline {path} does not exist")
        try:
            baseline = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BenchError(f"bench baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(baseline, dict):
        raise BenchError("bench baseline must be a JSON object")
    version = baseline.get("bench_baseline_version")
    if version != BENCH_BASELINE_VERSION:
        raise BenchError(
            f"bench_baseline_version must be {BENCH_BASELINE_VERSION}, got {version!r}"
        )
    pinned = baseline.get("pinned")
    if not isinstance(pinned, dict) or not pinned:
        raise BenchError("bench baseline has no 'pinned' benchmark table")
    for bench, entry in pinned.items():
        if not isinstance(entry, dict):
            raise BenchError(f"bench baseline entry {bench!r} is not an object")
        missing = [f for f in _PINNED_FIELDS if f not in entry]
        if missing:
            raise BenchError(
                f"bench baseline entry {bench!r} is missing pinned field(s) {missing}"
            )
    return baseline


def check_suite(
    report: Mapping[str, Any],
    baseline: str | pathlib.Path | Mapping,
    *,
    time_tolerance: float | None = None,
) -> BenchCheck:
    """Gate a fresh report against a frozen bench baseline.

    * every pinned benchmark must be present with identical deterministic
      fields (``ops`` / ``bits`` / ``digest`` — a changed digest means an
      optimization changed *what* is computed, not just how fast);
    * benchmarks the baseline does not know are flagged (freeze again);
    * with ``time_tolerance`` ``R``, each benchmark's mean wall seconds
      must satisfy ``mean <= R * baseline_mean`` (off by default: timing
      is machine-dependent, so it never fails a gate implicitly);
    * declared ``min_speedup`` floors are enforced against the report's
      measured optimized-vs-naive ratios.

    Returns a :class:`BenchCheck` — the results layer's structured verdict
    (same ``failures``/``passed`` shape CI already turns into an exit
    code), with the timing tolerance under its own name.
    """
    if time_tolerance is not None and time_tolerance <= 0:
        raise BenchError(f"time_tolerance must be > 0, got {time_tolerance}")
    baseline = load_bench_baseline(baseline)
    if report.get("scale") != baseline.get("scale"):
        raise BenchError(
            f"bench baseline was frozen at scale {baseline.get('scale')}, "
            f"this report ran at scale {report.get('scale')} — "
            "deterministic op counts are only comparable at equal scale"
        )
    pinned: dict[str, dict] = baseline["pinned"]
    results: Mapping[str, Mapping] = report.get("results", {})

    verdict = BenchCheck(
        baseline_name=str(baseline.get("name", "bench")),
        runs_checked=len(results),
        bits_tolerance=0.0,  # bench pins bits exactly; slot unused
        time_tolerance=time_tolerance,
    )
    for bench in sorted(set(pinned) - set(results)):
        verdict.failures.append(CheckFailure(
            "missing-bench", bench, "pinned benchmark was not run"))
    for bench in sorted(set(results) - set(pinned)):
        verdict.failures.append(CheckFailure(
            "extra-bench", bench, "benchmark has no baseline entry (re-freeze?)"))
    for bench in sorted(set(pinned) & set(results)):
        expected, got = pinned[bench], results[bench]
        for key in _PINNED_FIELDS:
            if got[key] != expected[key]:
                verdict.failures.append(CheckFailure(
                    "result", bench,
                    f"{key}: expected {expected[key]!r}, got {got[key]!r}"))
        if time_tolerance is not None:
            old = baseline.get("wall_seconds_mean", {}).get(bench)
            if isinstance(old, (int, float)) and old > 0:
                new = got["wall_seconds"]["mean"]
                if new > time_tolerance * old:
                    verdict.failures.append(CheckFailure(
                        "time", bench,
                        f"mean wall seconds {new} exceeds {time_tolerance} x "
                        f"baseline {old}"))
    speedups = report.get("speedups", {})
    for bench, floor in sorted(baseline.get("min_speedup", {}).items()):
        measured = speedups.get(bench)
        if measured is None:
            verdict.failures.append(CheckFailure(
                "speedup", bench,
                "no measured speedup (benchmark or its -naive pair missing)"))
        elif measured < floor:
            verdict.failures.append(CheckFailure(
                "speedup", bench,
                f"optimized/naive ratio {measured} below the declared "
                f"floor {floor}"))
    return verdict
