"""The builtin benchmark suite: sketching/bits hot paths + Session campaigns.

Each benchmark is a registered factory ``(scale: float = 1.0) -> BenchCase``:
inputs are built at factory time (off the clock) from deterministic
:func:`~repro.sketching.field.splitmix64` chains — never the global
``random`` module — so ``ops`` / ``bits`` / ``digest`` are pure functions
of ``scale`` and the frozen bench baseline pins them on any machine.

Two kinds of case live here:

* **micro** — the tight loops the hot-path work targets (L0 sampler
  updates, parameter derivation, bit packing).  Each has a ``-naive``
  twin running the pre-optimization reference implementation on the same
  inputs; the harness reports ``speedups[<name>]`` and the bench baseline
  declares floors for them.  The twins double as parity witnesses: both
  members of a pair must produce the same ``digest``.
* **campaign** — real end-to-end loads driven through
  :class:`repro.api.Session`, digesting the run records (spec content
  hashes + output digests), so a hot-path change that altered *what* a
  protocol computes fails the gate even if every microbench still agrees.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.bench.harness import BenchCase
from repro.bits.writer import BitWriter
from repro.registry import register
from repro.sketching.connectivity import sketch_spanning_forest
from repro.sketching.field import (
    MERSENNE61,
    derive_params,
    derive_params_block,
    fadd,
    fmul,
    fpow,
    splitmix64,
)
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams

_SEED = 0xBEC4E12011  # arbitrary fixed public seed for all builtin inputs


def _digest(payload: Any) -> str:
    """Stable hash of a JSON-able deterministic result."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def _scaled(base: int, scale: float, *, lo: int) -> int:
    return max(lo, int(base * scale))


# --------------------------------------------------------------------- #
# L0 sampler update loop (the headline microbench)
# --------------------------------------------------------------------- #


def _l0_inputs(scale: float) -> tuple[L0SamplerParams, list[tuple[int, int]]]:
    """One sampler's params plus a splitmix-derived update stream."""
    n = _scaled(96, scale, lo=16)
    m = n * (n - 1) // 2
    params = L0SamplerParams.derive(m, _SEED, 1)
    count = _scaled(4000, scale, lo=64)
    updates = []
    x = _SEED
    for _ in range(count):
        x = splitmix64(x)
        updates.append((x % m, 1 if x & 1 else -1))
    return params, updates


def _reference_l0_update(sampler: L0Sampler, index: int, delta: int) -> None:
    """The pre-optimization update: one field-call chain per surviving level."""
    deepest = sampler._level_of(index)
    for lvl in range(deepest + 1):
        sketch = sampler.sketches[lvl]
        if not 0 <= index < sketch.m:
            raise ValueError(f"index {index} outside 0..{sketch.m - 1}")
        sketch.c0 += delta
        sketch.c1 += index * delta
        sketch.c2 = fadd(sketch.c2, fmul(delta % MERSENNE61, fpow(sketch.z, index + 1)))


@register("l0-update", kind="benchmark", capabilities=("micro", "sketching"),
          summary="L0 sampler update loop (optimized single-pow fan-out).")
def _bench_l0_update(scale: float = 1.0) -> BenchCase:
    params, updates = _l0_inputs(scale)

    def op():
        sampler = L0Sampler(params)
        sampler.update_many(updates)
        return {"ops": len(updates), "digest": _digest(sampler.counters())}

    return BenchCase(op=op, meta={"m": params.m, "levels": params.levels,
                                  "updates": len(updates)})


@register("l0-update-naive", kind="benchmark", capabilities=("micro", "sketching", "reference"),
          summary="L0 sampler update loop, pre-optimization reference "
                  "(per-level field calls).")
def _bench_l0_update_naive(scale: float = 1.0) -> BenchCase:
    params, updates = _l0_inputs(scale)

    def op():
        sampler = L0Sampler(params)
        for index, delta in updates:
            _reference_l0_update(sampler, index, delta)
        return {"ops": len(updates), "digest": _digest(sampler.counters())}

    return BenchCase(op=op, meta={"m": params.m, "levels": params.levels,
                                  "updates": len(updates)})


# --------------------------------------------------------------------- #
# parameter derivation
# --------------------------------------------------------------------- #


def _derive_tags(scale: float) -> list[tuple[int, int]]:
    count = _scaled(3000, scale, lo=32)
    return [(n, r) for n in (64, 256, 1024) for r in range(count // 3)]


@register("derive-params", kind="benchmark", capabilities=("micro", "sketching"),
          summary="Batched (alpha, beta, z) parameter derivation "
                  "(derive_params_block).")
def _bench_derive_params(scale: float = 1.0) -> BenchCase:
    tag_pairs = _derive_tags(scale)

    def op():
        acc = 0
        for n, r in tag_pairs:
            a, b, z = derive_params_block(_SEED, 3, n, r)
            acc ^= a ^ b ^ z
        return {"ops": 3 * len(tag_pairs), "digest": _digest(acc)}

    return BenchCase(op=op, meta={"instances": len(tag_pairs)})


@register("derive-params-naive", kind="benchmark",
          capabilities=("micro", "sketching", "reference"),
          summary="Scalar (alpha, beta, z) parameter derivation, one "
                  "derive_params call per value.")
def _bench_derive_params_naive(scale: float = 1.0) -> BenchCase:
    tag_pairs = _derive_tags(scale)

    def op():
        acc = 0
        for n, r in tag_pairs:
            a = derive_params(_SEED, 1, n, r)
            b = derive_params(_SEED, 2, n, r)
            z = derive_params(_SEED, 3, n, r)
            acc ^= a ^ b ^ z
        return {"ops": 3 * len(tag_pairs), "digest": _digest(acc)}

    return BenchCase(op=op, meta={"instances": len(tag_pairs)})


# --------------------------------------------------------------------- #
# bit packing
# --------------------------------------------------------------------- #


def _pack_fields(scale: float) -> list[tuple[int, int]]:
    """A sketch-message-shaped field stream: (w0, w1, 61)-bit triples."""
    count = _scaled(3000, scale, lo=60)
    fields = []
    x = _SEED ^ 0x5
    for i in range(count):
        x = splitmix64(x)
        width = (12, 24, 61)[i % 3]
        fields.append((x & ((1 << width) - 1), width))
    return fields


@register("bits-pack", kind="benchmark", capabilities=("micro", "bits"),
          summary="Message packing via single-pass BitWriter.write_many.")
def _bench_bits_pack(scale: float = 1.0) -> BenchCase:
    fields = _pack_fields(scale)
    total = sum(w for _, w in fields)

    def op():
        writer = BitWriter()
        writer.write_many(fields)
        return {"ops": len(fields), "bits": len(writer),
                "digest": _digest(writer.to_bytes().hex())}

    return BenchCase(op=op, meta={"fields": len(fields), "stream_bits": total})


@register("bits-pack-naive", kind="benchmark",
          capabilities=("micro", "bits", "reference"),
          summary="Message packing via one BitWriter.write_bits call per field.")
def _bench_bits_pack_naive(scale: float = 1.0) -> BenchCase:
    fields = _pack_fields(scale)
    total = sum(w for _, w in fields)

    def op():
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        return {"ops": len(fields), "bits": len(writer),
                "digest": _digest(writer.to_bytes().hex())}

    return BenchCase(op=op, meta={"fields": len(fields), "stream_bits": total})


# --------------------------------------------------------------------- #
# numpy kernel backend vs pure twins (digest parity is the gate)
# --------------------------------------------------------------------- #
#
# These pairs put the array-backed kernels and their pure twins on the
# SAME inputs as the pure microbenches above, so their pinned digests
# must equal the pure pins byte for byte — the bench gate is the parity
# gate.  The optimized member runs the numpy backend; the ``-naive``
# twin runs the pure hot path (not the pre-optimization reference), so
# ``speedups[<name>-numpy]`` reads "numpy backend over today's pure
# code".  Registration is unconditional — the registry catalog (and the
# pinned API surface) must not depend on optional imports — but the
# factory raises BenchError without numpy, and the no-numpy CI leg runs
# an explicit pure-only subset.


def _require_numpy(bench: str) -> None:
    from repro.errors import BenchError
    from repro.sketching import kernels

    if not kernels.numpy_available():
        raise BenchError(
            f"benchmark {bench!r} requires numpy; run the pure-only subset "
            "(or install numpy) on interpreters without it"
        )


@register("l0-update-numpy", kind="benchmark",
          capabilities=("micro", "sketching", "kernels"),
          summary="L0 sampler update stream through the numpy kernel backend "
                  "(vectorized multi-level fan-out).")
def _bench_l0_update_numpy(scale: float = 1.0) -> BenchCase:
    _require_numpy("l0-update-numpy")
    from repro.sketching import kernels

    params, updates = _l0_inputs(scale)

    def op():
        sampler = L0Sampler(params)
        with kernels.use_kernels("numpy"):
            sampler.update_many(updates)
        return {"ops": len(updates), "digest": _digest(sampler.counters())}

    return BenchCase(op=op, meta={"m": params.m, "levels": params.levels,
                                  "updates": len(updates), "kernels": "numpy"})


@register("l0-update-numpy-naive", kind="benchmark",
          capabilities=("micro", "sketching", "kernels", "reference"),
          summary="The same update stream through the pure backend — the "
                  "parity twin the numpy digests must match.")
def _bench_l0_update_numpy_naive(scale: float = 1.0) -> BenchCase:
    from repro.sketching import kernels

    params, updates = _l0_inputs(scale)

    def op():
        sampler = L0Sampler(params)
        with kernels.use_kernels("pure"):
            sampler.update_many(updates)
        return {"ops": len(updates), "digest": _digest(sampler.counters())}

    return BenchCase(op=op, meta={"m": params.m, "levels": params.levels,
                                  "updates": len(updates), "kernels": "pure"})


@register("bits-pack-numpy", kind="benchmark",
          capabilities=("micro", "bits", "kernels"),
          summary="Whole-stream bit packing via kernels.pack_arrays + "
                  "BitWriter.write_packed (pre-staged arrays).")
def _bench_bits_pack_numpy(scale: float = 1.0) -> BenchCase:
    _require_numpy("bits-pack-numpy")
    import numpy as np

    from repro.sketching import kernels

    fields = _pack_fields(scale)
    total = sum(w for _, w in fields)
    # Arrays are staged off the clock: this pair gates the *kernel*
    # throughput (pack + splice), the shape protocol encoders feed it.
    values = np.array([f[0] for f in fields], dtype=np.int64)
    widths = np.array([f[1] for f in fields], dtype=np.int64)

    def op():
        writer = BitWriter()
        packed = kernels.pack_arrays(values, widths)
        assert packed is not None  # 61-bit fields are inside the envelope
        writer.write_packed(*packed)
        return {"ops": len(fields), "bits": len(writer),
                "digest": _digest(writer.to_bytes().hex())}

    return BenchCase(op=op, meta={"fields": len(fields), "stream_bits": total,
                                  "kernels": "numpy"})


@register("bits-pack-numpy-naive", kind="benchmark",
          capabilities=("micro", "bits", "kernels", "reference"),
          summary="The same field stream through BitWriter.write_many — the "
                  "parity twin the packed bytes must match.")
def _bench_bits_pack_numpy_naive(scale: float = 1.0) -> BenchCase:
    fields = _pack_fields(scale)
    total = sum(w for _, w in fields)

    def op():
        writer = BitWriter()
        writer.write_many(fields)
        return {"ops": len(fields), "bits": len(writer),
                "digest": _digest(writer.to_bytes().hex())}

    return BenchCase(op=op, meta={"fields": len(fields), "stream_bits": total,
                                  "kernels": "pure"})


@register("derive-params-numpy", kind="benchmark",
          capabilities=("micro", "sketching", "kernels"),
          summary="Batched parameter derivation via "
                  "kernels.derive_params_block_batch (one pass, all rows).")
def _bench_derive_params_numpy(scale: float = 1.0) -> BenchCase:
    _require_numpy("derive-params-numpy")
    from repro.sketching import kernels

    tag_pairs = _derive_tags(scale)

    def op():
        acc = 0
        for a, b, z in kernels.derive_params_block_batch(_SEED, 3, tag_pairs):
            acc ^= a ^ b ^ z
        return {"ops": 3 * len(tag_pairs), "digest": _digest(acc)}

    return BenchCase(op=op, meta={"instances": len(tag_pairs),
                                  "kernels": "numpy"})


@register("derive-params-numpy-naive", kind="benchmark",
          capabilities=("micro", "sketching", "kernels", "reference"),
          summary="The same derivations via scalar derive_params_block calls "
                  "— the parity twin the xor-fold must match.")
def _bench_derive_params_numpy_naive(scale: float = 1.0) -> BenchCase:
    tag_pairs = _derive_tags(scale)

    def op():
        acc = 0
        for n, r in tag_pairs:
            a, b, z = derive_params_block(_SEED, 3, n, r)
            acc ^= a ^ b ^ z
        return {"ops": 3 * len(tag_pairs), "digest": _digest(acc)}

    return BenchCase(op=op, meta={"instances": len(tag_pairs),
                                  "kernels": "pure"})


# --------------------------------------------------------------------- #
# end-to-end loads
# --------------------------------------------------------------------- #


@register("sketch-connectivity", kind="benchmark",
          capabilities=("end-to-end", "sketching"),
          summary="Full AGM sketch round: encode every node, Boruvka-decode "
                  "the spanning forest.")
def _bench_sketch_connectivity(scale: float = 1.0) -> BenchCase:
    from repro.graphs.generators import random_tree

    n = _scaled(28, scale, lo=8)
    g = random_tree(n, seed=3)

    def op():
        report = sketch_spanning_forest(g, seed=1)
        return {
            "ops": n,
            "bits": report.bits_per_node,
            "digest": _digest([report.connected, list(map(list, report.forest_edges))]),
        }

    return BenchCase(op=op, meta={"n": n, "family": "random_tree"})


def _session_case(name: str, family: str, protocol: str, n: int,
                  seeds: tuple[int, ...]) -> BenchCase:
    """A campaign driven through the fluent API; digest = records identity."""
    from repro.api import Session

    session = (Session(name)
               .graphs(family, n=n, seeds=seeds)
               .protocol(protocol))

    def op():
        run = session.run()
        records = run.records
        bits = sum(r.total_message_bits for r in records)
        identity = sorted(
            (r.spec.content_hash(), r.output_digest, r.status) for r in records
        )
        return {"ops": len(records), "bits": bits, "digest": _digest(identity)}

    return BenchCase(op=op, meta={"family": family, "protocol": protocol,
                                  "n": n, "seeds": len(seeds)})


@register("session-forest", kind="benchmark", capabilities=("campaign",),
          summary="Forest-reconstruction campaign through repro.api.Session "
                  "(records digested).")
def _bench_session_forest(scale: float = 1.0) -> BenchCase:
    return _session_case("bench-forest", "random_forest", "forest",
                         _scaled(24, scale, lo=8), (0, 1))


@register("session-sketch", kind="benchmark", capabilities=("campaign", "sketching"),
          summary="AGM-connectivity campaign through repro.api.Session "
                  "(records digested).")
def _bench_session_sketch(scale: float = 1.0) -> BenchCase:
    return _session_case("bench-sketch", "two_components", "agm_connectivity",
                         _scaled(14, scale, lo=6), (0,))


def _trace_case(name: str, scale: float, *, trace: bool) -> BenchCase:
    """The same persisted forest campaign, with and without ``--trace``.

    The pair is the tentpole's "provably free" witness: the harness
    reports ``speedups["trace-overhead"]`` = traced-min / untraced-min,
    and the frozen bench baseline declares a floor just under 1.0 — if
    the *untraced* path ever gets measurably slower than the fully
    traced one (i.e. the NULL_TRACER fast path grew real work), the
    gate fails.  Digest parity doubles as a correctness witness:
    tracing must not change a single record.
    """
    import tempfile

    from repro.api import Session

    n = _scaled(20, scale, lo=8)
    seeds = tuple(range(_scaled(6, scale, lo=2)))
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-trace-")
    session = (Session(name)
               .graphs("random_forest", n=n, seeds=seeds)
               .protocol("forest")
               .persist(tmp.name, use_cache=False)
               .trace(trace))

    def op():
        # `tmp` is closed over here, keeping the results directory alive
        # (each run overwrites the previous streams in place).
        assert tmp is not None
        run = session.run()
        records = run.records
        identity = sorted(
            (r.spec.content_hash(), r.output_digest, r.status) for r in records
        )
        return {
            "ops": len(records),
            "bits": sum(r.total_message_bits for r in records),
            "digest": _digest(identity),
        }

    return BenchCase(op=op, meta={"family": "random_forest", "n": n,
                                  "seeds": len(seeds), "trace": trace})


@register("trace-overhead", kind="benchmark", capabilities=("campaign", "obs"),
          summary="Persisted campaign with tracing OFF — the NULL_TRACER "
                  "fast path the overhead gate pins.")
def _bench_trace_overhead(scale: float = 1.0) -> BenchCase:
    return _trace_case("bench-untraced", scale, trace=False)


@register("trace-overhead-naive", kind="benchmark",
          capabilities=("campaign", "obs", "reference"),
          summary="The same campaign fully traced (fsync'd event stream): "
                  "the cost ceiling the untraced path must beat.")
def _bench_trace_overhead_naive(scale: float = 1.0) -> BenchCase:
    return _trace_case("bench-traced", scale, trace=True)


@register("campaign-resume", kind="benchmark", capabilities=("campaign", "engine"),
          summary="Resume overhead: replay a fully-checkpointed sharded "
                  "campaign with zero recomputation, re-merge, digest.")
def _bench_campaign_resume(scale: float = 1.0) -> BenchCase:
    """What ``--resume`` costs when there is nothing left to compute.

    A sharded forest campaign is run to completion at factory time (off
    the clock, durable streams + done markers under a temp dir); the
    timed op resumes it — load the manifest, prefix-match both shard
    streams, replay every record, re-merge the canonical JSONL — which is
    exactly the fixed overhead a crash recovery or a CI re-run pays on
    top of the missing work.  ``ops``/``bits``/``digest`` cover the
    replayed records *and* the shard-artifact layout, so a change that
    broke replay fidelity or the on-disk contract fails the bench gate.
    """
    import pathlib
    import tempfile

    from repro.api import Session

    n = _scaled(20, scale, lo=8)
    seeds = tuple(range(_scaled(4, scale, lo=2)))
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-resume-")
    session = (Session("bench-resume")
               .graphs("random_forest", n=n, seeds=seeds)
               .protocol("forest")
               .persist(tmp.name, use_cache=False)
               .shard(2))
    session.run()  # checkpoint everything off the clock

    def op():
        # `tmp` is closed over here, keeping the checkpoint directory
        # alive for the whole timed run.
        run = session.resume().run()
        records = run.records
        layout = sorted(
            p.name for p in pathlib.Path(tmp.name).iterdir()
            if p.suffix in (".jsonl", ".json", ".done")
        )
        identity = sorted(
            (r.spec.content_hash(), r.output_digest, r.status) for r in records
        )
        return {
            "ops": len(records),
            "bits": sum(r.total_message_bits for r in records),
            "digest": _digest([identity, layout]),
            "resumed": run.result.resumed,
        }

    return BenchCase(op=op, meta={"family": "random_forest", "n": n,
                                  "seeds": len(seeds), "shards": 2})


# --------------------------------------------------------------------- #
# the campaign service (control plane, not compute)
# --------------------------------------------------------------------- #


def _serve_fixture():
    """A quiesced in-process daemon: ``workers=0`` so nothing executes.

    With no workers pulling assignments, every submitted job stays
    ``queued`` and every measured quantity is pure control-plane cost —
    HTTP round trip, validation, durable job-state write — with
    deterministic state digests (no records, no wall-clock-dependent
    transitions on the timed path).  The server thread and its temp store
    root live in the returned closure cell for the whole bench run.
    """
    import tempfile

    from repro.serve import ServeClient, ServerThread

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
    server = ServerThread(tmp.name, workers=0, executor="serial",
                          queue_limit=1_000_000).start()
    return tmp, server, ServeClient(server.url)


def _job_identity(view: dict) -> tuple:
    """The deterministic slice of a job view (no IDs, no timestamps)."""
    return (view["state"], view["name"], view["shards"], view["priority"],
            view["records"], view["resumed"])


@register("serve-submit-latency", kind="benchmark",
          capabilities=("serve", "end-to-end"),
          summary="Job submission round trip over the serve HTTP API "
                  "(validate + persist + enqueue + cancel).")
def _bench_serve_submit_latency(scale: float = 1.0) -> BenchCase:
    tmp, server, client = _serve_fixture()
    batch = _scaled(12, scale, lo=4)

    def op():
        # `tmp`/`server` are closed over here, keeping the daemon alive
        # across repeats; cancelling frees every admission slot so each
        # repeat starts from the same queue state.
        assert tmp is not None and server is not None
        identities = []
        for i in range(batch):
            job = client.submit("smoke", shards=1 + i % 3,
                                priority=("high", "normal", "low")[i % 3])
            identities.append(_job_identity(job.view))
            identities.append(_job_identity(job.cancel()))
        return {"ops": batch, "digest": _digest(sorted(identities))}

    return BenchCase(op=op, meta={"batch": batch, "workers": 0,
                                  "transport": "http"})


@register("serve-status-poll", kind="benchmark",
          capabilities=("serve", "end-to-end"),
          summary="Status-poll throughput over the serve HTTP API "
                  "(job view + per-shard progress + listing).")
def _bench_serve_status_poll(scale: float = 1.0) -> BenchCase:
    tmp, server, client = _serve_fixture()
    jobs = [client.submit("smoke", shards=2) for _ in range(_scaled(4, scale, lo=2))]
    polls = _scaled(30, scale, lo=8)

    def op():
        # `tmp`/`server` closed over: the daemon (and its queued jobs,
        # pinned by workers=0) lives for the whole bench run.
        assert tmp is not None and server is not None
        identities = []
        for i in range(polls):
            view = client.job(jobs[i % len(jobs)].id)
            identities.append(
                _job_identity(view) + (view["progress"]["records"],)
            )
        listed = client.jobs()
        return {
            "ops": polls,
            "digest": _digest([sorted(identities),
                               sorted(_job_identity(v) for v in listed)]),
        }

    return BenchCase(op=op, meta={"jobs": len(jobs), "polls": polls,
                                  "workers": 0, "transport": "http"})


# --------------------------------------------------------------------- #
# the record store and incremental aggregation (PR 10)
# --------------------------------------------------------------------- #


def _store_records(scale: float) -> list[dict]:
    """A splitmix-derived synthetic campaign, schema-shaped and JSON-able."""
    count = _scaled(600, scale, lo=48)
    protocols = ("forest", "spanning_tree", "degeneracy")
    families = ("random_forest", "path")
    records = []
    x = _SEED
    for i in range(count):
        x = splitmix64(x)
        a = x
        x = splitmix64(x)
        b = x
        n = (16, 32, 64)[a % 3]
        records.append({
            "spec_version": 2,
            "spec": {
                "scenario": "bench", "family": families[b % 2], "n": n,
                "seed": i, "protocol": protocols[a % 3],
                "family_params": {}, "protocol_params": {},
                "budget_bits": None, "shuffle_delivery": False,
                "faults": None,
            },
            "result": {
                "status": ("ok", "ok", "ok", "violation")[b % 4],
                "output_kind": "graph",
                "output_digest": f"{a % (1 << 32):08x}",
                "exact": (True, False, None)[a % 3],
                "graph_n": n, "graph_m": n - 1,
                "max_message_bits": int(a % 4096),
                "total_message_bits": int(b % 100_000),
                "faults": {"dropped": 0, "duplicated": 0, "flipped": 0},
                "error": "",
            },
            "timing": {"wall_seconds": (a % 1000) / 1000.0},
            "cached": False,
        })
    return records


def _store_compact_fixture(scale: float):
    """Both representations of the same campaign, on disk, off the clock."""
    import pathlib
    import tempfile

    from repro.results.records import canonical_line
    from repro.store import write_columnar

    records = _store_records(scale)
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    root = pathlib.Path(tmp.name)
    jsonl = root / "bench.jsonl"
    jsonl.write_text("".join(canonical_line(r) + "\n" for r in records))
    # Uncompressed: the claim under test is page slicing, not deflate.
    columns = write_columnar(root / "bench.columns", records, compress=False)
    return tmp, jsonl, columns, len(records)


@register("store-compact", kind="benchmark", capabilities=("micro", "store"),
          summary="One trend metric out of a compacted campaign: slice the "
                  "result.max_message_bits page from the columnar store.")
def _bench_store_compact(scale: float = 1.0) -> BenchCase:
    from repro.store import read_column

    tmp, _jsonl, columns, count = _store_compact_fixture(scale)

    def op():
        # `tmp` is closed over, keeping both files alive across repeats.
        assert tmp is not None
        values = read_column(columns, "result.max_message_bits")
        return {"ops": len(values), "digest": _digest(values)}

    return BenchCase(op=op, meta={"records": count, "layout": "columnar"})


@register("store-compact-naive", kind="benchmark",
          capabilities=("micro", "store", "reference"),
          summary="The same metric by parsing every canonical JSONL record "
                  "— the pre-store path the column slice must beat.")
def _bench_store_compact_naive(scale: float = 1.0) -> BenchCase:
    tmp, jsonl, _columns, count = _store_compact_fixture(scale)

    def op():
        assert tmp is not None
        values = [
            json.loads(line)["result"]["max_message_bits"]
            for line in jsonl.read_text().splitlines() if line
        ]
        return {"ops": len(values), "digest": _digest(values)}

    return BenchCase(op=op, meta={"records": count, "layout": "jsonl"})


_AGG_POLLS = 16  # summary polls per simulated campaign


def _agg_chunks(scale: float) -> list[list[dict]]:
    """The campaign's records as they land between ``/summary`` polls."""
    records = _store_records(scale)
    size = max(1, len(records) // _AGG_POLLS)
    return [records[i:i + size] for i in range(0, len(records), size)]


@register("aggregate-incremental", kind="benchmark",
          capabilities=("micro", "store"),
          summary="A polled campaign summary served from maintained "
                  "Aggregator state: feed each new chunk, snapshot groups.")
def _bench_aggregate_incremental(scale: float = 1.0) -> BenchCase:
    from repro.results.aggregate import Aggregator

    chunks = _agg_chunks(scale)
    total = sum(len(c) for c in chunks)

    def op():
        agg = Aggregator(by=("protocol", "n"))
        groups = None
        for chunk in chunks:
            agg.feed_many(chunk)
            groups = agg.groups()  # every poll answers with fresh groups
        return {"ops": total, "digest": _digest(groups)}

    return BenchCase(op=op, meta={"records": total, "polls": len(chunks)})


@register("aggregate-incremental-naive", kind="benchmark",
          capabilities=("micro", "store", "reference"),
          summary="The same polls re-aggregating every record seen so far "
                  "from scratch — the O(n·polls) bug the cache fixed.")
def _bench_aggregate_incremental_naive(scale: float = 1.0) -> BenchCase:
    from repro.results.aggregate import aggregate

    chunks = _agg_chunks(scale)
    total = sum(len(c) for c in chunks)

    def op():
        seen: list[dict] = []
        groups = None
        for chunk in chunks:
            seen.extend(chunk)
            groups = aggregate(seen, by=("protocol", "n"))
        return {"ops": total, "digest": _digest(groups)}

    return BenchCase(op=op, meta={"records": total, "polls": len(chunks)})
