"""EXP-L3 — Lemma 3: neighbourhood decoding, lookup table vs Newton identities."""

import random

from repro.analysis import exp_lemma3_decoding, format_table
from repro.protocols.powersum import (
    PowerSumLookupTable,
    compute_power_sums,
    decode_neighborhood_newton,
)

N, K = 64, 3
_rng = random.Random(4)
_CASES = []
for _ in range(64):
    d = _rng.randint(0, K)
    subset = frozenset(_rng.sample(range(1, N + 1), d))
    _CASES.append((d, compute_power_sums(subset, K), subset))


def test_newton_decode(benchmark, write_result):
    def run():
        for d, sums, subset in _CASES:
            assert decode_neighborhood_newton(d, sums, N) == subset

    benchmark(run)
    title, headers, rows = exp_lemma3_decoding()
    write_result("EXP-L3", format_table(title, headers, rows))


def test_table_decode(benchmark):
    table = PowerSumLookupTable(N, K)

    def run():
        for d, sums, subset in _CASES:
            assert table.lookup(sums) == subset

    benchmark(run)


def test_table_construction(benchmark):
    """Lemma 3's O(n^k) preprocessing step."""
    benchmark.pedantic(PowerSumLookupTable, args=(N, K), rounds=1, iterations=1)
