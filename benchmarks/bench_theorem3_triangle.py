"""EXP-T3 — Theorem 3 / Figure 2: the triangle reduction."""

from repro.analysis import exp_theorem3_triangle, format_table
from repro.graphs.generators import random_bipartite
from repro.reductions import OracleTriangleDetector, TriangleReduction, triangle_gadget


def test_triangle_reduction_global_n8(benchmark, write_result):
    g = random_bipartite(4, 4, 0.4, seed=5)
    delta = TriangleReduction(OracleTriangleDetector())
    msgs = delta.message_vector(g)
    out = benchmark(delta.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_theorem3_triangle()
    write_result("EXP-T3", format_table(title, headers, rows))


def test_triangle_gadget_construction(benchmark):
    g = random_bipartite(64, 64, 0.1, seed=6)
    gp = benchmark(triangle_gadget, g, 3, 100)
    assert gp.n == 129
