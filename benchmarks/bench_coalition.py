"""EXP-COAL — the strengthened (coalition) partition argument."""

from repro.analysis import exp_coalition, format_table
from repro.graphs.properties import has_square
from repro.reductions.coalition import EdgeStatsCoalitionEncoder, find_coalition_collision


def test_coalition_collision_search_n5(benchmark, write_result):
    enc = EdgeStatsCoalitionEncoder(c=2)
    w = benchmark.pedantic(
        find_coalition_collision, args=(enc, 5, has_square, "has_square"),
        rounds=2, iterations=1,
    )
    assert w is not None and w.verify(enc, has_square)
    title, headers, rows = exp_coalition(max_n=5)
    write_result("EXP-COAL", format_table(title, headers, rows))
