"""EXP-T1 — Theorem 1: the square reduction (Algorithm 1) end to end."""

from repro.analysis import exp_theorem1_square, format_table
from repro.graphs.generators import random_square_free
from repro.reductions import OracleSquareDetector, SquareReduction, square_gadget


def test_square_reduction_global_n8(benchmark, write_result):
    g = random_square_free(8, 0.3, seed=2)
    delta = SquareReduction(OracleSquareDetector())
    msgs = delta.message_vector(g)
    out = benchmark(delta.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_theorem1_square()
    write_result("EXP-T1", format_table(title, headers, rows))


def test_square_gadget_construction(benchmark):
    g = random_square_free(64, 0.2, seed=3)
    gp = benchmark(square_gadget, g, 5, 40)
    assert gp.n == 128
