"""EXP-SKETCH — AGM sketch connectivity (the open-question extension)."""

from repro.analysis import exp_connectivity_sketch, format_table
from repro.graphs.generators import random_tree
from repro.sketching import AGMConnectivityProtocol


def test_sketch_local_phase_n64(benchmark, write_result):
    g = random_tree(64, seed=9)
    protocol = AGMConnectivityProtocol(seed=1)
    msgs = benchmark(protocol.message_vector, g)
    assert len(msgs) == 64
    title, headers, rows = exp_connectivity_sketch(ns=(16, 32, 64), seeds=5)
    write_result("EXP-SKETCH", format_table(title, headers, rows))


def test_sketch_global_phase_n64(benchmark):
    g = random_tree(64, seed=10)
    protocol = AGMConnectivityProtocol(seed=2)
    msgs = protocol.message_vector(g)
    out = benchmark(protocol.global_, g.n, msgs)
    assert out is True
