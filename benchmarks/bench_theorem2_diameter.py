"""EXP-T2 — Theorem 2 / Figure 1: the diameter reduction (Algorithm 2)."""

from repro.analysis import exp_theorem2_diameter, format_table
from repro.graphs.families import figure1_base
from repro.graphs.generators import erdos_renyi
from repro.reductions import DiameterReduction, OracleDiameterDetector, diameter_gadget


def test_diameter_reduction_global_figure1(benchmark, write_result):
    g = figure1_base()
    delta = DiameterReduction(OracleDiameterDetector(3))
    msgs = delta.message_vector(g)
    out = benchmark(delta.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_theorem2_diameter()
    write_result("EXP-T2", format_table(title, headers, rows))


def test_diameter_gadget_construction(benchmark):
    g = erdos_renyi(128, 0.1, seed=4)
    gp = benchmark(diameter_gadget, g, 3, 77)
    assert gp.n == 131
