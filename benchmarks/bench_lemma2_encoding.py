"""EXP-L2 — Lemma 2: Algorithm 3's local encoding.

Timed hot path: the local phase of the degeneracy protocol over every node
of a 1024-vertex, 3-degenerate graph (the O(n) local-time claim).
"""

from repro.analysis import exp_lemma2_encoding, format_table
from repro.graphs.generators import random_k_degenerate
from repro.protocols import DegeneracyReconstructionProtocol
from repro.protocols.powersum import powersum_message_bits


def test_local_phase_n1024_k3(benchmark, write_result):
    g = random_k_degenerate(1024, 3, seed=9)
    protocol = DegeneracyReconstructionProtocol(3)

    def local_phase():
        return [protocol.local(g.n, i, g.neighbors(i)) for i in g.vertices()]

    msgs = benchmark(local_phase)
    assert max(m.bits for m in msgs) == powersum_message_bits(1024, 3)
    title, headers, rows = exp_lemma2_encoding()
    write_result("EXP-L2", format_table(title, headers, rows))


def test_single_node_encode_star_center(benchmark):
    """Worst single node: the centre of a 4096-star (4095 neighbour power sums)."""
    from repro.protocols.powersum import encode_powersum_message

    nbhd = frozenset(range(2, 4097))
    msg = benchmark(encode_powersum_message, 4096, 3, 1, nbhd)
    assert msg.bits == powersum_message_bits(4096, 3)
