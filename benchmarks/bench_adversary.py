"""EXP-ADV — the adversarial collision search over frugal encoders."""

from repro.analysis import exp_adversary, format_table
from repro.graphs.properties import has_square
from repro.reductions import DegreeEncoder, find_collision_exhaustive


def test_exhaustive_collision_search_n5(benchmark, write_result):
    w = benchmark(find_collision_exhaustive, DegreeEncoder(), 5, has_square, "has_square")
    assert w is not None and w.verify(DegreeEncoder(), has_square)
    title, headers, rows = exp_adversary(max_n=6)
    write_result("EXP-ADV", format_table(title, headers, rows))
