"""EXP-L1 — Lemma 1's counting tables.

Timed hot path: the vectorized exact count of square-free labelled graphs
on 6 vertices (32768 graphs), the expensive ingredient of the table.
"""

from repro.analysis import exp_lemma1_counting, format_table
from repro.graphs.counting import count_square_free


def test_count_square_free_n6(benchmark, write_result):
    result = benchmark(count_square_free, 6)
    assert result == 27693 or result > 0  # exact value pinned by unit tests
    title, headers, rows = exp_lemma1_counting()
    write_result("EXP-L1", format_table(title, headers, rows))


def test_count_square_free_n7(benchmark):
    """The largest enumerable instance: 2^21 graphs, numpy-vectorized."""
    result = benchmark.pedantic(count_square_free, args=(7,), rounds=1, iterations=1)
    assert result > 0
