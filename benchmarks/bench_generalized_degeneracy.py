"""EXP-GD — Section III.E: generalized degeneracy (complement-side pruning)."""

from repro.analysis import exp_generalized_degeneracy, format_table
from repro.graphs.generators import random_tree
from repro.protocols import GeneralizedDegeneracyProtocol


def test_reconstruct_dense_complement_n48(benchmark, write_result):
    g = random_tree(48, seed=3).complement()  # ~1081 edges, plain degeneracy ~45
    protocol = GeneralizedDegeneracyProtocol(1)
    msgs = protocol.message_vector(g)
    out = benchmark(protocol.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_generalized_degeneracy()
    write_result("EXP-GD", format_table(title, headers, rows))
