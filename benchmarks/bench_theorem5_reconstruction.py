"""EXP-T5 — Theorem 5: Algorithm 4's referee-side reconstruction.

Timed hot paths: the global (pruning) phase with the Newton decoder on a
256-vertex 3-degenerate graph, the same with the Lemma 3 lookup table, and
the full round end-to-end on a planar instance.
"""

from repro.analysis import exp_theorem5_reconstruction, format_table
from repro.graphs.generators import apollonian, random_k_degenerate
from repro.protocols import DegeneracyReconstructionProtocol


def test_global_phase_newton_n256_k3(benchmark, write_result):
    g = random_k_degenerate(256, 3, seed=11)
    protocol = DegeneracyReconstructionProtocol(3, decoder="newton")
    msgs = protocol.message_vector(g)
    out = benchmark(protocol.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_theorem5_reconstruction()
    write_result("EXP-T5", format_table(title, headers, rows))


def test_global_phase_table_n64_k2(benchmark):
    g = random_k_degenerate(64, 2, seed=12)
    protocol = DegeneracyReconstructionProtocol(2, decoder="table")
    msgs = protocol.message_vector(g)
    protocol.global_(g.n, msgs)  # build the table outside the timing loop
    out = benchmark(protocol.global_, g.n, msgs)
    assert out == g


def test_full_round_planar_n200(benchmark):
    g = apollonian(200, seed=13)
    protocol = DegeneracyReconstructionProtocol(3)
    out = benchmark(protocol.run, g)
    assert out == g


def test_decode_scaling_n512(benchmark):
    """The O(n²)-ish decode at the largest bench size."""
    g = random_k_degenerate(512, 2, seed=14)
    protocol = DegeneracyReconstructionProtocol(2)
    msgs = protocol.message_vector(g)
    out = benchmark.pedantic(protocol.global_, args=(g.n, msgs), rounds=2, iterations=1)
    assert out == g
