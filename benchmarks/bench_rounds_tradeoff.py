"""EXP-ROUNDS — the rounds-for-bits trade-off (conclusion's last question)."""

from repro.analysis import exp_rounds_tradeoff, format_table
from repro.graphs.generators import erdos_renyi
from repro.model import MultiRoundReferee
from repro.protocols.adaptive_query import AdaptiveQueryReconstruction


def test_adaptive_query_full_run_n32(benchmark, write_result):
    g = erdos_renyi(32, 0.3, seed=5)
    referee = MultiRoundReferee()
    report = benchmark(referee.run, AdaptiveQueryReconstruction(), g)
    assert report.output == g
    title, headers, rows = exp_rounds_tradeoff(ns=(16, 32))
    write_result("EXP-ROUNDS", format_table(title, headers, rows))
