"""EXP-CONN — the conclusion's k-partition coalition connectivity."""

import math

from repro.analysis import exp_connectivity_partition, format_table
from repro.graphs.generators import erdos_renyi
from repro.protocols import PartitionConnectivityProtocol


def test_partition_connectivity_n512_k8(benchmark, write_result):
    n = 512
    g = erdos_renyi(n, 2 * math.log(n) / n, seed=7)
    protocol = PartitionConnectivityProtocol(8)
    report = benchmark(protocol.run, g)
    assert report.n == n
    title, headers, rows = exp_connectivity_partition()
    write_result("EXP-CONN", format_table(title, headers, rows))


def test_part_forest_construction(benchmark):
    from repro.protocols.partition_connectivity import parts_of

    n = 512
    g = erdos_renyi(n, 0.02, seed=8)
    protocol = PartitionConnectivityProtocol(8)
    part = parts_of(n, 8)[0]
    forest = benchmark(protocol.part_forest, g, part)
    assert len(forest) <= n - 1
