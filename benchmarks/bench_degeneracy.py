"""EXP-DEGEN — the Matula–Beck degeneracy substrate at scale."""

from repro.analysis import exp_degeneracy_classes, format_table
from repro.graphs.degeneracy import degeneracy_ordering
from repro.graphs.generators import erdos_renyi, random_k_degenerate


def test_degeneracy_ordering_er_n4000(benchmark, write_result):
    g = erdos_renyi(4000, 0.002, seed=1)
    k, order = benchmark(degeneracy_ordering, g)
    assert len(order) == 4000
    title, headers, rows = exp_degeneracy_classes()
    write_result("EXP-DEGEN", format_table(title, headers, rows))


def test_degeneracy_ordering_k_degenerate_n4000(benchmark):
    g = random_k_degenerate(4000, 4, seed=2)
    k, order = benchmark(degeneracy_ordering, g)
    assert k <= 4
