"""EXP-FOREST — Section III.A: forests in one frugal round, at scale."""

from repro.analysis import exp_forest, format_table
from repro.graphs.generators import random_forest
from repro.protocols import ForestReconstructionProtocol


def test_forest_decode_n4096(benchmark, write_result):
    g = random_forest(4096, 100, seed=1)
    protocol = ForestReconstructionProtocol()
    msgs = protocol.message_vector(g)
    out = benchmark(protocol.global_, g.n, msgs)
    assert out == g
    title, headers, rows = exp_forest()
    write_result("EXP-FOREST", format_table(title, headers, rows))


def test_forest_local_phase_n4096(benchmark):
    g = random_forest(4096, 100, seed=2)
    protocol = ForestReconstructionProtocol()
    msgs = benchmark(protocol.message_vector, g)
    assert len(msgs) == 4096
