"""EXP-BIP — one-round sketch bipartiteness (double-cover extension)."""

from repro.analysis import exp_bipartiteness_sketch, format_table
from repro.graphs.generators import cycle_graph
from repro.sketching import SketchBipartitenessProtocol


def test_bipartiteness_round_n24(benchmark, write_result):
    g = cycle_graph(24)
    protocol = SketchBipartitenessProtocol(seed=3)
    out = benchmark.pedantic(protocol.decide, args=(g,), rounds=3, iterations=1)
    assert out is True
    title, headers, rows = exp_bipartiteness_sketch(ns=(8, 16), seeds=5)
    write_result("EXP-BIP", format_table(title, headers, rows))
