"""EXP-ENGINE — serial vs parallel execution of a reconstruction campaign.

The load is the builtin ``bench`` campaign: 32 independent
degeneracy-reconstruction runs (``random_k_degenerate``, n = 512, k = 2),
exactly the workload class the engine exists for.  Each backend runs the
whole campaign with caching disabled; the table records wall-clock time and
speedup over :class:`~repro.engine.executor.SerialExecutor`.

Two checks ride along:

* **parity** — the serial engine path produces output and bit counts
  identical to a plain ``Referee.run`` (the engine adds no semantics);
* **speedup** — on a machine with >= 4 cores the process pool must beat
  serial by >= 2x.  On fewer cores there is no parallel hardware to
  demonstrate with, so the assertion is skipped (the table is still
  written); the pool is warmed before timing so worker spawn cost is not
  billed to the campaign.
"""

import os
import time

import pytest

from repro.analysis import format_table
from repro.engine import (
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    builtin_campaign,
)
from repro.graphs.generators import random_k_degenerate
from repro.model import Referee
from repro.protocols import DegeneracyReconstructionProtocol

CORES = os.cpu_count() or 1


def _timed_campaign(executor):
    campaign = builtin_campaign("bench", results_dir=None, use_cache=False)
    t0 = time.perf_counter()
    result = campaign.run(executor)
    elapsed = time.perf_counter() - t0
    assert len(result.records) == 32
    assert all(r.status == "ok" and r.exact for r in result.records)
    return elapsed, result


def test_serial_engine_matches_referee():
    """A serial engine run is Referee.run, bit for bit (acceptance check)."""
    g = random_k_degenerate(512, 2, seed=0)
    protocol = DegeneracyReconstructionProtocol(2)
    base = Referee().run(protocol, g)
    with SerialExecutor() as ex:
        engined = Referee(executor=ex).run(protocol, g)
    assert engined.output == base.output == g
    assert engined.per_vertex_bits == base.per_vertex_bits
    assert engined.max_message_bits == base.max_message_bits
    assert engined.total_message_bits == base.total_message_bits


def test_engine_speedup(write_result):
    serial_s, serial_result = _timed_campaign(SerialExecutor())

    rows = [["serial", 1, round(serial_s, 3), 1.0]]
    timings = {}
    for cls in (ThreadPoolExecutor, ProcessPoolExecutor):
        with cls() as ex:
            ex.map(_identity, range(ex.jobs * 2))  # warm the pool off the clock
            elapsed, result = _timed_campaign(ex)
        digests = [r.output_digest for r in result.records]
        assert digests == [r.output_digest for r in serial_result.records]
        timings[cls.kind] = elapsed
        rows.append([cls.kind, ex.jobs, round(elapsed, 3), round(serial_s / elapsed, 2)])

    title = (
        "EXP-ENGINE  campaign engine: 32x degeneracy reconstruction "
        f"(n=512, k=2) on {CORES} core(s)"
    )
    write_result("EXP-ENGINE", format_table(title, ["executor", "jobs", "seconds", "speedup"], rows))

    if CORES < 4:
        pytest.skip(
            f"only {CORES} core(s) visible: no parallel hardware to demonstrate "
            "the >=2x process-pool speedup on (table still written)"
        )
    assert serial_s / timings["process"] >= 2.0, (
        f"expected >=2x process-pool speedup on {CORES} cores, got "
        f"{serial_s / timings['process']:.2f}x"
    )


def _identity(x):
    return x
