"""EXP-BENCH — the sketching/bits hot-path optimization, measured.

Runs the paired builtin benchmarks (optimized vs pre-optimization naive
reference on identical splitmix-derived inputs) through the
:mod:`repro.bench` harness and writes the speedup table.

Two checks ride along:

* **parity** — every optimized/naive pair reports the same deterministic
  digest (the optimization changed how fast, never what);
* **speedup** — the L0 sampler update loop, the headline hot path, must
  beat its pre-optimization reference by >= 1.5x (the PR's acceptance
  bound; measured ~1.8x at introduction), and the single-pass bit packer
  must beat per-field writes by >= 1.2x.

These floors are deliberately above the lenient regression tripwires in
``benchmarks/baselines/bench.json`` (``min_speedup``: 1.25/1.5): the
baseline gate guards every push cheaply, while this experiment documents
the acceptance bound itself with min-of-5 timing.
"""

from repro.analysis import format_table
from repro.bench import run_suite

PAIRS = ("l0-update", "bits-pack", "derive-params")


def test_hot_path_speedup(write_result):
    names = [n for pair in PAIRS for n in (pair, f"{pair}-naive")]
    report = run_suite(names, repeats=5)

    rows = []
    for name in names:
        entry = report["results"][name]
        rows.append([name, entry["ops"], entry["wall_seconds"]["min"],
                     report["speedups"].get(name, "")])
    title = ("EXP-BENCH  sketching/bits hot paths: optimized vs "
             "pre-optimization reference (min of 5 repeats)")
    write_result("EXP-BENCH",
                 format_table(title, ["benchmark", "ops", "min s", "speedup"], rows))

    for pair in PAIRS:
        assert report["results"][pair]["digest"] == \
            report["results"][f"{pair}-naive"]["digest"], \
            f"{pair}: optimized path diverged from the reference (parity broken)"

    assert report["speedups"]["l0-update"] >= 1.5, (
        f"l0-update speedup {report['speedups']['l0-update']}x fell below "
        "the 1.5x acceptance bound"
    )
    assert report["speedups"]["bits-pack"] >= 1.2, (
        f"bits-pack speedup {report['speedups']['bits-pack']}x fell below 1.2x"
    )
