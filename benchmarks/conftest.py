"""Shared helpers for the benchmark suite.

Each ``bench_*`` module both *times* its experiment's hot path with
pytest-benchmark and *regenerates* the experiment's table, writing it to
``benchmarks/results/<EXP-ID>.txt`` so `pytest benchmarks/ --benchmark-only`
leaves the full paper-vs-measured record on disk (EXPERIMENTS.md quotes
these files).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def write_result():
    """Write an experiment table to benchmarks/results/<exp_id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(exp_id: str, text: str) -> None:
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text)

    return _write
