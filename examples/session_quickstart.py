#!/usr/bin/env python
"""Session quickstart: the whole pipeline as one fluent chain.

The paper's model is a single pipeline — build a graph, run a one-round
protocol under a referee, measure bits — and ``repro.api.Session`` is that
pipeline as one chainable builder: graph grid → protocol → referee options
→ executor → run → aggregate → gate.  This script runs a small planar
reconstruction study, prints the aggregated report, freezes it as a
baseline, and re-gates a second identical run against it.

It also demonstrates the API contract the test suite pins down: a Session
builds the *same* scenarios the engine always ran, so its records carry
identical spec content hashes and output digests to a hand-wired
``Scenario``/``Campaign``.

Run:  python examples/session_quickstart.py
"""

import tempfile

from repro import Campaign, Scenario
from repro.api import Session


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. the fluent chain
    # ----------------------------------------------------------------- #
    session = (
        Session("planar-quickstart")
        .graphs("random_planar", n=[32, 64], seeds=range(3), keep_prob=0.8)
        .protocol("degeneracy", k=5)
        .shuffle()            # adversarial delivery order (must not matter)
        .executor("thread", jobs=2)
    )
    run = session.run()

    summary = run.summary()
    print(f"ran {summary['runs']} runs via {summary['executor']}: "
          f"{summary['statuses']}")
    print(f"exact reconstructions: {summary['exact']}/{summary['runs']}")
    print()
    print(run.aggregate(by=["n"]).table())
    print()

    # ----------------------------------------------------------------- #
    # 2. freeze → gate: the regression loop as two method calls
    # ----------------------------------------------------------------- #
    with tempfile.TemporaryDirectory() as baselines:
        run.freeze("planar-quickstart", baselines_dir=baselines)
        verdict = (
            session.run()                       # identical seeds, fresh run
            .aggregate(by=["n", "seed"])
            .gate(baseline="planar-quickstart", baselines_dir=baselines)
        )
        print(f"regression gate vs frozen baseline: "
              f"{'passed' if verdict.passed else 'FAILED'} "
              f"({verdict.runs_checked} runs checked)")

    # ----------------------------------------------------------------- #
    # 3. the contract: fluent and hand-wired pipelines are one pipeline
    # ----------------------------------------------------------------- #
    hand_wired = Campaign(
        [Scenario(name="by-hand", family="random_planar", sizes=(32, 64),
                  protocol="degeneracy", seeds=(0, 1, 2),
                  family_params={"keep_prob": 0.8}, protocol_params={"k": 5},
                  shuffle_delivery=True)],
        name="by-hand", results_dir=None,
    ).run()

    fluent = {r.spec.content_hash(): r.output_digest for r in run.records}
    manual = {r.spec.content_hash(): r.output_digest for r in hand_wired.records}
    assert fluent == manual, "Session and hand-wired records must be identical"
    print(f"parity: {len(fluent)} content hashes + digests identical "
          "to the hand-wired Campaign")


if __name__ == "__main__":
    main()
