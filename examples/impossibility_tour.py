#!/usr/bin/env python
"""A guided tour of the paper's impossibility machinery (Section II).

Three stops:

1. **The gadgets** — build Figure 1's and Figure 2's G'_{s,t} and watch the
   iff-property (diameter <= 3 / triangle exists ⇔ {s,t} is an edge).
2. **The reductions, run for real** — plug a correct-but-non-frugal oracle
   detector into Algorithm 1/2 and watch the derived protocol reconstruct a
   graph it never saw, edge by edge.
3. **The counting wall** — the Lemma 1 table showing why the reconstructors
   built in step 2 cannot be frugal: the families are just too big.

Run:  python examples/impossibility_tour.py
"""

import math

from repro.analysis import exp_lemma1_counting, format_table
from repro.graphs import diameter, has_square, has_triangle
from repro.graphs.families import figure1_base, figure2_base
from repro.graphs.generators import random_square_free
from repro.reductions import (
    DiameterReduction,
    OracleDiameterDetector,
    OracleSquareDetector,
    SquareReduction,
    diameter_gadget,
    triangle_gadget,
)


def stop_1_gadgets() -> None:
    print("== Stop 1: the G'_{s,t} gadgets (Figures 1 and 2) ==")
    g = figure1_base()
    for s, t in [(1, 2), (1, 7)]:
        gp = diameter_gadget(g, s, t)
        print(f"  Figure 1 gadget for (s,t)=({s},{t}): edge={g.has_edge(s, t)}, "
              f"diam(G') = {diameter(gp):.0f}  (<=3 iff edge)")
    g2 = figure2_base()
    for s, t in [(2, 7), (1, 7)]:
        gp = triangle_gadget(g2, s, t)
        print(f"  Figure 2 gadget for (s,t)=({s},{t}): edge={g2.has_edge(s, t)}, "
              f"triangle in G' = {has_triangle(gp)}  (iff edge)")
    print()


def stop_2_reductions() -> None:
    print("== Stop 2: running Algorithms 1 and 2 against oracle detectors ==")
    g = random_square_free(9, 0.3, seed=5)
    assert not has_square(g)
    delta = SquareReduction(OracleSquareDetector())
    rebuilt = delta.reconstruct(g)
    print(f"  Theorem 1: square detector -> reconstructed {rebuilt.m}-edge "
          f"square-free graph exactly: {rebuilt == g}")
    print(f"             Δ message = {delta.max_message_bits(g)} bits "
          f"= Γ's k(2n) with k(n)=n (oracle)")

    g = figure1_base()
    delta2 = DiameterReduction(OracleDiameterDetector(3))
    rebuilt2 = delta2.reconstruct(g)
    print(f"  Theorem 2: diameter<=3 detector -> reconstructed ARBITRARY graph "
          f"exactly: {rebuilt2 == g}")
    print(f"             Δ message = {delta2.max_message_bits(g)} bits "
          f"≈ 3·k(n+3) + framing")
    print()


def stop_3_counting_wall() -> None:
    print("== Stop 3: the Lemma 1 counting wall ==")
    title, headers, rows = exp_lemma1_counting(ns=(4, 5, 6, 64, 1024, 4096))
    print(format_table(title, headers, rows))
    print("  Reading: once log2(family) exceeds the capacity column, no frugal")
    print("  one-round protocol can reconstruct that family — so the detectors")
    print("  fed to Algorithms 1-2 in Stop 2 cannot be frugal either.")
    n = 4096
    gap = (n * n / 2 - 1) / (4 * n * math.log2(n))
    print(f"  At n={n}, all-graphs overshoot a 4-log-unit budget by ~{gap:,.0f}x.")


def main() -> None:
    stop_1_gadgets()
    stop_2_reductions()
    stop_3_counting_wall()


if __name__ == "__main__":
    main()
