#!/usr/bin/env python
"""The paper's open question, explored: one-round connectivity.

The conclusion of Becker et al. leaves connectivity open and sketches why
their lower-bound technique cannot close it: with the vertex set split into
k cooperating parts, O(k log n) bits per node *do* suffice.  This example
runs that partition protocol, then jumps to the technique the field later
adopted — AGM linear sketches — which decides connectivity in one round of
O(log³ n)-bit messages using public randomness, and finally streams the same
sketches over multiple rounds to shrink the per-round message.

Run:  python examples/connectivity_frontier.py
"""

from repro.graphs import is_connected
from repro.graphs.generators import disjoint_union, erdos_renyi, random_tree
from repro.model import MultiRoundReferee, Referee, log2_ceil
from repro.protocols import PartitionConnectivityProtocol
from repro.sketching import AGMConnectivityProtocol, MultiRoundSketchConnectivity


def main() -> None:
    n = 128
    connected = random_tree(n, seed=3)
    split = disjoint_union(random_tree(n // 2, seed=4), random_tree(n - n // 2, seed=5))

    print(f"inputs: a spanning tree (connected) and a 2-component forest, n={n}\n")

    print("-- conclusion's coalition protocol (k parts share knowledge) --")
    for k in (2, 8):
        for name, g in [("connected ", connected), ("split     ", split)]:
            r = PartitionConnectivityProtocol(k).run(g)
            unit = k * log2_ceil(g.n)
            print(f"  k={k:2d} {name} -> {'connected' if r.connected else 'disconnected':12s} "
                  f"{r.max_bits_per_node:5d} bits/node ({r.max_bits_per_node / unit:.1f} x k·log n)")
    print("  (truth: connected / disconnected — and each vertex pays O(k log n))\n")

    print("-- AGM sketches: one genuine referee round, public randomness --")
    for name, g in [("connected ", connected), ("split     ", split)]:
        protocol = AGMConnectivityProtocol(seed=11)
        report = Referee().run(protocol, g)
        bits = report.max_message_bits
        print(f"  {name} -> {'connected' if report.output else 'disconnected':12s} "
              f"{bits:6d} bits/node ({bits / log2_ceil(g.n) ** 3:.0f} x log^3 n)")
        assert report.output == is_connected(g)
    print()

    print("-- the same sketches, streamed one Borůvka phase per round --")
    for name, g in [("connected ", connected), ("split     ", split)]:
        report = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=11), g)
        print(f"  {name} -> {'connected' if report.output else 'disconnected':12s} "
              f"{report.max_node_message_bits:5d} bits/round over {report.rounds_used} rounds")
    print("\n  One log-factor traded from message size into round count — the")
    print("  shape of the paper's final open question about multi-round frugality.")


if __name__ == "__main__":
    main()
