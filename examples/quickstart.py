#!/usr/bin/env python
"""Quickstart: reconstruct a planar network from one round of frugal messages.

The headline result of Becker et al. (IPDPS 2011): graphs of degeneracy at
most k — planar graphs have degeneracy <= 5 — can be *fully reconstructed*
by a referee that receives just one O(k² log n)-bit message from each node,
where a node knows nothing but its own ID, its neighbours' IDs, and n.

Run:  python examples/quickstart.py
"""

from repro import DegeneracyReconstructionProtocol, Referee
from repro.graphs import degeneracy
from repro.graphs.generators import random_planar
from repro.model import log2_ceil


def main() -> None:
    # A random planar network on 120 nodes (thinned Apollonian triangulation).
    g = random_planar(120, keep_prob=0.8, seed=42)
    print(f"network: n={g.n} nodes, m={g.m} links, degeneracy={degeneracy(g)}")

    # Every node runs the same local function; the referee decodes.
    protocol = DegeneracyReconstructionProtocol(k=5)
    report = Referee().run(protocol, g)

    reconstructed = report.output
    print(f"reconstruction exact: {reconstructed == g}")
    print(f"max message size:     {report.max_message_bits} bits "
          f"(= {report.max_message_bits / log2_ceil(g.n):.1f} x log2(n))")
    print(f"total traffic:        {report.total_message_bits} bits for the whole round")
    print(f"local phase:          {report.local_seconds * 1e3:.1f} ms, "
          f"global phase: {report.global_seconds * 1e3:.1f} ms")

    # Contrast: sending raw neighbour lists would need Θ(deg · log n) bits —
    # unbounded for hubs. The power-sum trick caps every node at O(k² log n):
    hub_degree = max(g.degrees())
    naive_bits = (hub_degree + 1) * log2_ceil(g.n)
    print(f"worst hub degree {hub_degree}: naive neighbourhood dump would be "
          f"~{naive_bits} bits; power sums use {report.max_message_bits}")


if __name__ == "__main__":
    main()
