#!/usr/bin/env python
"""Serve quickstart: the campaign service end to end, in one process.

``repro serve`` turns the engine into a daemon: clients submit campaign
jobs over HTTP, follow the record stream as shards land, and fetch
group-by aggregates — while the job store keeps everything durable.
This script hosts that daemon on a background thread (``ServerThread``,
the same class the test battery uses), drives it through the public
``ServeClient`` wire path, and prints what a remote client would see:
submit → follow → summary → fleet health.

Run:  python examples/serve_quickstart.py
"""

import tempfile

from repro.api import Session
from repro.serve import ServeClient, ServerThread


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        with ServerThread(root, workers=2, executor="thread") as server:
            print(f"daemon up at {server.url}")
            client = ServeClient(server.url)

            # ------------------------------------------------------- #
            # 1. submit the builtin smoke campaign, sharded two ways
            # ------------------------------------------------------- #
            job = client.submit("smoke", shards=2)
            print(f"submitted {job.id}: state={job.state}")

            # follow=True holds the socket open: records stream as the
            # worker pool lands them, and the stream ends at completion
            streamed = sum(1 for _ in job.records(follow=True))
            view = job.wait(timeout=60)
            print(f"{job.id} -> {view['state']}: {view['records']} records "
                  f"({streamed} streamed live)")

            # ------------------------------------------------------- #
            # 2. aggregate over the wire (the §4 group-by, served)
            # ------------------------------------------------------- #
            summary = job.summary(by=("protocol",))
            for group in summary["groups"]:
                print(f"  {group['group']['protocol']}: "
                      f"{group['runs']} runs, "
                      f"max {group['max_message_bits']['max']} bits/msg")

            # ------------------------------------------------------- #
            # 3. the fluent spelling: Session -> RemoteJob
            # ------------------------------------------------------- #
            remote = (Session("forest-sweep")
                      .graphs("random_forest", n=[24, 32], seeds=range(3))
                      .protocol("forest")
                      .shard(2)
                      .submit(server.url))
            print(f"Session.submit -> {remote.id}: "
                  f"{remote.wait(timeout=60)['records']} records")

            # ------------------------------------------------------- #
            # 4. fleet health, as a monitor would read it
            # ------------------------------------------------------- #
            health = client.health()
            print(f"healthz: {health['status']}, jobs by state "
                  f"{ {k: v for k, v in health['jobs'].items() if v} }")
            assert health["jobs"]["done"] == 2
            wall = [line for line in client.metrics_text().splitlines()
                    if line.startswith("repro_serve_job_wall_seconds_count")]
            print(f"metrics: {wall[0]}")
        print("daemon stopped; job store was durable the whole time")


if __name__ == "__main__":
    main()
