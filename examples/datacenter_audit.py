#!/usr/bin/env python
"""Topology audit of a datacenter fabric with one frugal round.

Scenario (the paper's "interconnection network" reading, made concrete): a
monitoring service (the referee) must verify that a fabric's *actual* wiring
matches the intended blueprint.  Each switch knows only its own ID and its
link partners; shipping full LLDP neighbour tables to the collector costs
Θ(deg·log n) per switch.  Fat-trees, tori, and hypercubes all have small
degeneracy, so the paper's power-sum protocol reconstructs the exact wiring
from one bounded-size message per switch — and any miscabling shows up as a
diff against the blueprint.

Run:  python examples/datacenter_audit.py
"""

import random

from repro import DegeneracyReconstructionProtocol, Referee
from repro.graphs import LabeledGraph, degeneracy
from repro.graphs.generators import fat_tree, hypercube, torus_2d


def audit(name: str, blueprint: LabeledGraph, k: int, *, sabotage: bool) -> None:
    """Reconstruct the live topology and diff it against the blueprint."""
    live = blueprint.copy()
    tampered: list[tuple[str, tuple[int, int]]] = []
    if sabotage:
        rng = random.Random(7)
        u, v = rng.choice(list(live.edges()))
        live.remove_edge(u, v)                    # a pulled cable...
        tampered.append(("missing", (u, v)))
        a = rng.randrange(1, live.n + 1)
        b = next(x for x in range(1, live.n + 1) if x != a and not live.has_edge(a, x))
        live.add_edge(a, b)                       # ...and a mispatched one
        tampered.append(("unexpected", tuple(sorted((a, b)))))

    protocol = DegeneracyReconstructionProtocol(k)
    report = Referee().run(protocol, live)
    seen: LabeledGraph = report.output
    assert seen == live, "protocol must reproduce the live wiring exactly"

    missing = sorted(blueprint.edge_set() - seen.edge_set())
    unexpected = sorted(seen.edge_set() - blueprint.edge_set())
    print(f"[{name}] n={live.n} m={live.m} degeneracy={degeneracy(live)} "
          f"bits/switch={report.max_message_bits}")
    if missing or unexpected:
        for e in missing:
            print(f"    MISSING LINK    {e}")
        for e in unexpected:
            print(f"    UNEXPECTED LINK {e}")
        expected = {kind: edge for kind, edge in tampered}
        assert set(missing) == {expected["missing"]}
        assert set(unexpected) == {expected["unexpected"]}
    else:
        print("    wiring matches blueprint")


def main() -> None:
    # k is chosen per fabric family (every switch must know it up front),
    # with one unit of slack so a mispatched cable cannot push the live
    # network past the protocol's degeneracy bound.
    audit("fat-tree k=8 (80 switches)", fat_tree(8), k=5, sabotage=False)
    audit("fat-tree k=8 (80 switches)", fat_tree(8), k=5, sabotage=True)
    audit("torus 8x8", torus_2d(8, 8), k=5, sabotage=True)
    audit("hypercube d=6", hypercube(6), k=7, sabotage=True)


if __name__ == "__main__":
    main()
