#!/usr/bin/env python
"""Regenerate (or --check) the frozen public-API-surface fixture.

The fixture ``tests/api/fixtures/api_surface.json`` pins two things:

* ``public_api`` — ``repro.__all__``, in order (the documented import
  surface);
* ``catalog`` — ``repro.registry.catalog()``: every registered graph
  family, protocol, experiment, and builtin campaign with its
  capabilities, parameter schema, aliases, and owning module.

``tests/api/test_api_surface.py`` (and the CI ``api-surface`` job) diff
the live surface against this file, so any API change is an explicit,
reviewed edit:

    PYTHONPATH=src python tools/update_api_surface.py          # rewrite
    PYTHONPATH=src python tools/update_api_surface.py --check  # exit 1 on drift
"""

from __future__ import annotations

import json
import pathlib
import sys

FIXTURE = (pathlib.Path(__file__).resolve().parents[1]
           / "tests" / "api" / "fixtures" / "api_surface.json")


def build_surface() -> dict:
    import repro
    import repro.registry

    return {
        "public_api": list(repro.__all__),
        "catalog": repro.registry.catalog(),
    }


def render(surface: dict) -> str:
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def main(argv: list[str]) -> int:
    text = render(build_surface())
    if "--check" in argv:
        on_disk = FIXTURE.read_text() if FIXTURE.exists() else ""
        if on_disk != text:
            sys.stderr.write(
                "api surface drifted from tests/api/fixtures/api_surface.json;\n"
                "run: PYTHONPATH=src python tools/update_api_surface.py\n"
            )
            return 1
        print(f"api surface matches {FIXTURE}")
        return 0
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(text)
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
