"""Cross-protocol integration matrix.

One corpus of graphs, every applicable protocol, ground truth checked for
each — the library-level contract a downstream user relies on.  Each
(protocol, graph) cell runs a full referee round through the real message
path (serialize → deliver → deserialize).
"""

import pytest

from repro.graphs import LabeledGraph, degeneracy, is_connected
from repro.graphs.generators import (
    apollonian,
    disjoint_union,
    erdos_renyi,
    grid_2d,
    path_graph,
    random_forest,
    random_tree,
    star_graph,
)
from repro.model import Referee
from repro.protocols import (
    BoundedDegreeProtocol,
    DegeneracyRecognitionProtocol,
    DegeneracyReconstructionProtocol,
    ForestReconstructionProtocol,
    GeneralizedDegeneracyProtocol,
    PartitionConnectivityProtocol,
)
from repro.protocols.trivial import FullAdjacencyProtocol
from repro.sketching import AGMConnectivityProtocol

CORPUS = {
    "tree": random_tree(24, seed=1),
    "forest": random_forest(24, 4, seed=2),
    "star": star_graph(24),
    "grid": grid_2d(5, 5),
    "planar": apollonian(24, seed=3),
    "sparse-er": erdos_renyi(24, 0.12, seed=4),
    "two-comps": disjoint_union(path_graph(12), path_graph(12)),
    "edgeless": LabeledGraph(12),
}


@pytest.mark.parametrize("name", CORPUS)
def test_reconstruction_protocols_agree(name):
    g = CORPUS[name]
    k = max(1, degeneracy(g))
    reference = FullAdjacencyProtocol().reconstruct(g)
    assert reference == g
    assert DegeneracyReconstructionProtocol(k).reconstruct(g) == g
    assert GeneralizedDegeneracyProtocol(k).reconstruct(g) == g
    delta = max(g.degrees() or [0])
    assert BoundedDegreeProtocol(max(delta, 1)).reconstruct(g) == g
    if degeneracy(g) <= 1:
        assert ForestReconstructionProtocol().reconstruct(g) == g


@pytest.mark.parametrize("name", CORPUS)
def test_decision_protocols_match_ground_truth(name):
    g = CORPUS[name]
    k = max(1, degeneracy(g))
    assert DegeneracyRecognitionProtocol(k).decide(g) is True
    if k > 1:
        assert DegeneracyRecognitionProtocol(k - 1).decide(g) is False
    truth = is_connected(g)
    assert AGMConnectivityProtocol(seed=7).decide(g) == truth
    assert PartitionConnectivityProtocol(4).run(g).connected == truth


@pytest.mark.parametrize("name", CORPUS)
def test_referee_reports_are_consistent(name):
    g = CORPUS[name]
    k = max(1, degeneracy(g))
    report = Referee(shuffle_delivery=True, shuffle_seed=3).run(
        DegeneracyReconstructionProtocol(k), g
    )
    assert report.output == g
    assert report.n == g.n
    assert len(report.per_vertex_bits) == g.n
    assert report.total_message_bits == sum(report.per_vertex_bits)
    assert report.max_message_bits == max(report.per_vertex_bits, default=0)


# --------------------------------------------------------------------- #
# shuffle-invariance matrix: delivery order is adversarial noise, so every
# registered protocol must produce the same output digest with and without
# shuffled delivery (the referee indexes messages by ID, Definition 1).
# --------------------------------------------------------------------- #

from repro import registry  # noqa: E402
from repro.engine import Scenario, execute_run  # noqa: E402

#: protocol -> (family, family_params, protocol_params) giving a valid
#: small-graph input for that protocol.
SHUFFLE_GRID = {
    "degeneracy": ("random_k_degenerate", {"k": 2}, {"k": 2}),
    "forest": ("random_forest", {}, {}),
    "generalized_degeneracy": ("random_tree", {}, {"k": 1}),
    "bounded_degree": ("path", {}, {"max_degree": 3}),
    "agm_connectivity": ("random_tree", {}, {"sketch_seed": 3}),
    "sketch_bipartiteness": ("random_bipartite", {}, {"sketch_seed": 3}),
    "full_adjacency": ("erdos_renyi", {}, {}),
}


def test_shuffle_grid_covers_every_registered_protocol():
    """A new protocol-registry entry must be added to the matrix."""
    assert set(SHUFFLE_GRID) == set(registry.PROTOCOL.names())


@pytest.mark.parametrize("n", (12, 16))
@pytest.mark.parametrize("protocol", sorted(SHUFFLE_GRID))
def test_shuffle_delivery_is_invariant(protocol, n):
    family, family_params, protocol_params = SHUFFLE_GRID[protocol]
    records = {}
    for shuffled in (False, True):
        spec = next(Scenario(
            name="shuffle-matrix", family=family, sizes=(n,), seeds=(1,),
            protocol=protocol, family_params=family_params,
            protocol_params=protocol_params, shuffle_delivery=shuffled,
        ).expand())
        records[shuffled] = execute_run(spec)
    plain, shuffled = records[False], records[True]
    assert plain.status == shuffled.status == "ok"
    assert plain.output_kind == shuffled.output_kind
    assert plain.output_digest == shuffled.output_digest
    assert plain.exact == shuffled.exact
    # shuffling rearranges delivery, it must not change what was sent
    assert plain.total_message_bits == shuffled.total_message_bits
    assert plain.max_message_bits == shuffled.max_message_bits
