"""Integration tests: every experiment harness runs and its claims hold.

These are the executable form of EXPERIMENTS.md — each test runs a (shrunk)
experiment and asserts the *shape* the paper predicts, so a regression in
any protocol shows up as a failed reproduction, not just a failed unit.
"""

import pytest

from repro import registry
from repro.analysis import (
    exp_adversary,
    exp_connectivity_partition,
    exp_connectivity_sketch,
    exp_degeneracy_classes,
    exp_forest,
    exp_generalized_degeneracy,
    exp_lemma1_counting,
    exp_lemma2_encoding,
    exp_lemma3_decoding,
    exp_theorem1_square,
    exp_theorem2_diameter,
    exp_theorem3_triangle,
    exp_theorem5_reconstruction,
    format_table,
)


def col(headers, rows, name):
    idx = headers.index(name)
    return [row[idx] for row in rows]


class TestLemma1:
    def test_verdicts(self):
        title, headers, rows = exp_lemma1_counting(ns=(4, 6, 64, 256))
        fits_all = col(headers, rows, "all_fits")
        # small n fit, large n overflow
        assert fits_all[0] == "yes" and fits_all[-1] == "NO"
        assert all(v == "yes" for v in col(headers, rows, "forests_fit"))

    def test_table_renders(self):
        title, headers, rows = exp_lemma1_counting(ns=(4, 5))
        text = format_table(title, headers, rows)
        assert "EXP-L1" in text and "capacity" in text


class TestLemma2:
    def test_measured_equals_formula(self):
        title, headers, rows = exp_lemma2_encoding(ns=(64, 256), ks=(1, 3))
        assert col(headers, rows, "bits(measured)") == col(headers, rows, "bits(formula)")

    def test_ratio_bounded(self):
        title, headers, rows = exp_lemma2_encoding(ns=(64, 1024), ks=(2, 4))
        assert all(r <= 6.0 for r in col(headers, rows, "bits/(k^2 log2 n)"))


class TestLemma3:
    def test_both_decoders_exact(self):
        title, headers, rows = exp_lemma3_decoding(n=32, k=2, trials=50)
        assert all(v == "yes" for v in col(headers, rows, "exact"))

    def test_lookup_faster_or_comparable(self):
        title, headers, rows = exp_lemma3_decoding(n=64, k=3, trials=100)
        us = col(headers, rows, "us/decode")
        assert us[0] < us[1] * 2  # table decode not dramatically slower


class TestTheorems:
    def test_t5_all_exact(self):
        title, headers, rows = exp_theorem5_reconstruction()
        assert all(v == "yes" for v in col(headers, rows, "exact"))
        # degeneracy never exceeds the protocol k
        for d, k in zip(col(headers, rows, "degeneracy"), col(headers, rows, "k")):
            assert d <= k

    def test_t1_exact_and_blowup(self):
        title, headers, rows = exp_theorem1_square(n=8)
        assert all(v == "yes" for v in col(headers, rows, "exact"))
        for gamma, delta in zip(col(headers, rows, "Γ bits"), col(headers, rows, "Δ bits")):
            assert delta == gamma  # k(2n) with the n-bit oracle = 2n = Γ bits on gadget

    def test_t2_exact(self):
        title, headers, rows = exp_theorem2_diameter(n=6)
        assert all(v == "yes" for v in col(headers, rows, "exact"))

    def test_t3_exact(self):
        title, headers, rows = exp_theorem3_triangle(n=8)
        assert all(v == "yes" for v in col(headers, rows, "exact"))


class TestAdversaryAndForest:
    def test_adversary_verdicts(self):
        title, headers, rows = exp_adversary(max_n=5)
        verdicts = dict(zip(col(headers, rows, "encoder"), col(headers, rows, "verdict")))
        assert verdicts["degree"].startswith("killed at n=5")
        assert verdicts["degree+sum"].startswith("rigid")
        assert "forced collision" in verdicts["ANY 4-log-unit encoder"]

    def test_forest_bounds(self):
        title, headers, rows = exp_forest(ns=(16, 256))
        assert all(v == "yes" for v in col(headers, rows, "within_bound"))
        assert all(v == "yes" for v in col(headers, rows, "exact"))

    def test_generalized_degeneracy_exact(self):
        title, headers, rows = exp_generalized_degeneracy()
        assert all(v == "yes" for v in col(headers, rows, "exact"))
        # the dense rows really are outside plain degeneracy-k reach
        plain = col(headers, rows, "plain_degeneracy")
        ks = col(headers, rows, "k")
        assert any(d > k for d, k in zip(plain, ks))


class TestConnectivity:
    def test_partition_correct(self):
        title, headers, rows = exp_connectivity_partition(n=64, ks=(2, 4))
        assert col(headers, rows, "verdict") == col(headers, rows, "truth")

    def test_partition_budget(self):
        title, headers, rows = exp_connectivity_partition(n=128, ks=(4,))
        assert all(r <= 4.0 for r in col(headers, rows, "bits/(k*log2 n)"))

    def test_sketch_accuracy(self):
        title, headers, rows = exp_connectivity_sketch(ns=(16, 32), seeds=6)
        for acc in col(headers, rows, "accuracy"):
            good, total = acc.split("/")
            assert int(good) >= int(total) - 1  # at most one unlucky seed

    def test_degeneracy_classes_within_bounds(self):
        title, headers, rows = exp_degeneracy_classes()
        assert all(v == "yes" for v in col(headers, rows, "within"))


class TestExtensions:
    def test_bip_majority_accurate(self):
        from repro.analysis import exp_bipartiteness_sketch

        title, headers, rows = exp_bipartiteness_sketch(ns=(8,), seeds=5)
        for acc in col(headers, rows, "accuracy"):
            good, total = acc.split("/")
            assert int(good) >= int(total) - 1

    def test_rounds_tradeoff_shape(self):
        from repro.analysis import exp_rounds_tradeoff

        title, headers, rows = exp_rounds_tradeoff(ns=(16,))
        assert all(v == "yes" for v in col(headers, rows, "exact/correct"))
        by_protocol = {row[1]: row for row in rows}
        one_round = by_protocol[next(k for k in by_protocol if k.startswith("power-sum"))]
        adaptive = by_protocol["adaptive-query"]
        # adaptive pays rounds, saves bits; one-round the reverse
        assert adaptive[3] > one_round[3]
        assert adaptive[4] < one_round[4]

    def test_coalition_verdicts(self):
        from repro.analysis import exp_coalition

        title, headers, rows = exp_coalition(max_n=4)
        verdicts = col(headers, rows, "verdict")
        assert sum(v.startswith("killed") for v in verdicts) >= 2
        assert any(v.startswith("rigid") for v in verdicts)


class TestRegistry:
    def test_all_ids_present(self):
        assert set(registry.EXPERIMENT.names()) == {
            "EXP-L1", "EXP-L2", "EXP-L3", "EXP-T5", "EXP-T1", "EXP-T2",
            "EXP-T3", "EXP-ADV", "EXP-FOREST", "EXP-GD", "EXP-CONN",
            "EXP-SKETCH", "EXP-DEGEN", "EXP-BIP", "EXP-ROUNDS", "EXP-COAL",
            "EXP-RESULTS",
        }

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bbb"], [[1, 2.5], [10, "x"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1  # aligned rows
