"""Exit-code contract of the CLI: 0 success, 1 gate failure, 2 usage error.

Every path returns a code — ``main()`` never lets argparse's ``SystemExit``
escape, and never prints a traceback for user errors.
"""

import json

import pytest

from repro.cli import main
from repro.engine import builtin_campaign
from repro.results import freeze, load_records


@pytest.fixture(scope="module")
def smoke_jsonl(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("cli-smoke")
    return builtin_campaign("smoke", results_dir=results_dir).run().jsonl_path


class TestUsageErrors:
    def test_unknown_subcommand(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'frobnicate'" in err
        assert "Traceback" not in err

    def test_malformed_json_flag(self, capsys):
        assert main(["list", "--json=yes"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_malformed_json_flag_on_report(self, capsys, smoke_jsonl):
        assert main(["report", str(smoke_jsonl), "--json=1"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_unknown_flag(self, capsys):
        assert main(["list", "--frobnicate"]) == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_subcommand_help_exits_zero(self, capsys):
        assert main(["report", "--help"]) == 0
        assert "--by" in capsys.readouterr().out

    def test_exp_alias_still_routes_to_experiment(self, capsys):
        assert main(["EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_baseline_without_action(self, capsys):
        assert main(["baseline"]) == 2
        assert "an action is required" in capsys.readouterr().err

    def test_baseline_unknown_action(self, capsys):
        assert main(["baseline", "melt"]) == 2
        assert "invalid choice" in capsys.readouterr().err


class TestReportPaths:
    def test_report_missing_file(self, capsys, tmp_path):
        # A missing records file is a domain condition (the campaign has
        # not merged yet), not a usage error: exit 1, never a traceback.
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "has not written" in capsys.readouterr().err

    def test_report_malformed_jsonl(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert main(["report", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_report_schema_invalid_record(self, capsys, tmp_path, smoke_jsonl):
        record = json.loads(smoke_jsonl.read_text().splitlines()[0])
        record["surprise"] = 1
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        assert main(["report", str(path)]) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_report_unknown_axis(self, capsys, smoke_jsonl):
        assert main(["report", str(smoke_jsonl), "--by", "colour"]) == 2
        assert "unknown group-by axis" in capsys.readouterr().err

    def test_report_ok(self, capsys, smoke_jsonl):
        assert main(["report", str(smoke_jsonl)]) == 0
        assert "protocol" in capsys.readouterr().out

    def test_report_json_deterministic(self, capsys, smoke_jsonl):
        assert main(["report", str(smoke_jsonl), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(smoke_jsonl), "--json"]) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["records"] == 8


class TestDiffPaths:
    def test_diff_missing_file(self, capsys, smoke_jsonl, tmp_path):
        assert main(["diff", str(smoke_jsonl), str(tmp_path / "absent.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_diff_identical_exits_zero(self, capsys, smoke_jsonl):
        assert main(["diff", str(smoke_jsonl), str(smoke_jsonl)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_mismatch_exits_one(self, capsys, smoke_jsonl, tmp_path):
        lines = smoke_jsonl.read_text().splitlines()
        record = json.loads(lines[0])
        record["result"]["output_digest"] = "drifted"
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_text("\n".join([json.dumps(record, sort_keys=True)] + lines[1:]) + "\n")
        assert main(["diff", str(smoke_jsonl), str(drifted)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH output_digest" in out and "DIFFERS" in out

    def test_diff_json_mismatch_exits_one(self, capsys, smoke_jsonl, tmp_path):
        lines = smoke_jsonl.read_text().splitlines()
        record = json.loads(lines[0])
        record["result"]["max_message_bits"] += 1
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_text("\n".join([json.dumps(record, sort_keys=True)] + lines[1:]) + "\n")
        assert main(["diff", str(smoke_jsonl), str(drifted), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False and payload["bit_deltas"]

    def test_diff_bad_tolerance(self, capsys, smoke_jsonl):
        assert main(["diff", str(smoke_jsonl), str(smoke_jsonl),
                     "--bits-tolerance", "-1"]) == 2
        assert "bits_tolerance" in capsys.readouterr().err


class TestBaselinePaths:
    def test_freeze_then_check_roundtrip(self, capsys, smoke_jsonl, tmp_path):
        assert main(["baseline", "freeze", str(smoke_jsonl), "--name", "smoke",
                     "--dir", str(tmp_path)]) == 0
        assert "-> " in capsys.readouterr().out
        assert main(["baseline", "check", str(smoke_jsonl),
                     str(tmp_path / "smoke.json")]) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_failure_exits_one(self, capsys, smoke_jsonl, tmp_path):
        records = load_records(smoke_jsonl)
        records[0]["result"]["output_digest"] = "drifted"
        baseline = freeze(records, "drifted", baselines_dir=tmp_path)
        assert main(["baseline", "check", str(smoke_jsonl), str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "FAIL [result]" in out and "FAILED" in out

    def test_check_failure_json_exits_one(self, capsys, smoke_jsonl, tmp_path):
        records = load_records(smoke_jsonl)[:-1]  # shrink the grid
        baseline = freeze(records, "small", baselines_dir=tmp_path)
        assert main(["baseline", "check", str(smoke_jsonl), str(baseline),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert payload["failures"][0]["kind"] == "extra-run"

    def test_check_missing_baseline(self, capsys, smoke_jsonl, tmp_path):
        assert main(["baseline", "check", str(smoke_jsonl),
                     str(tmp_path / "absent.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_freeze_missing_records(self, capsys, tmp_path):
        assert main(["baseline", "freeze", str(tmp_path / "absent.jsonl"),
                     "--name", "x", "--dir", str(tmp_path)]) == 2
        assert "does not exist" in capsys.readouterr().err
