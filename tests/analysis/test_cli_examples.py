"""Smoke tests for the CLI and the example scripts (deliverable b)."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T5" in out and "EXP-SKETCH" in out
        assert "smoke" in out            # builtin campaigns are listed too
        assert "random_planar" in out    # so are graph families ...
        assert "degeneracy" in out       # ... and protocols

    def test_list_json_is_the_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert set(catalog) == {"benchmark", "campaign", "experiment",
                                "graph_family", "protocol", "span"}
        assert "EXP-T5" in catalog["experiment"]
        assert "smoke" in catalog["campaign"]
        deg = catalog["protocol"]["degeneracy"]
        assert "reconstruction" in deg["capabilities"]
        assert "k" in deg["params"]

    def test_list_json_is_byte_stable(self, capsys):
        assert main(["list", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["list", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_list_kind_filter(self, capsys):
        assert main(["list", "--kind", "protocol", "--json"]) == 0
        assert set(json.loads(capsys.readouterr().out)) == {"protocol"}

    def test_single_experiment(self, capsys):
        assert main(["EXP-DEGEN"]) == 0
        out = capsys.readouterr().out
        assert "degeneracy of the paper's graph classes" in out

    def test_experiment_subcommand(self, capsys):
        assert main(["experiment", "EXP-DEGEN"]) == 0
        assert "degeneracy of the paper's graph classes" in capsys.readouterr().out

    def test_experiment_json(self, capsys):
        assert main(["experiment", "EXP-DEGEN", "--json"]) == 0
        tables = json.loads(capsys.readouterr().out)
        assert tables[0]["id"] == "EXP-DEGEN"
        assert tables[0]["headers"] and tables[0]["rows"]

    def test_unknown_experiment(self, capsys):
        assert main(["EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "Traceback" not in err

    def test_campaign_builtin(self, capsys, tmp_path):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        assert (tmp_path / "smoke.jsonl").exists()

    def test_campaign_json_summary(self, capsys, tmp_path):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["campaign"] == "smoke"
        assert summary["runs"] == 8

    def test_campaign_from_spec_file(self, capsys, tmp_path):
        spec = {"name": "cli-spec", "scenarios": [
            {"name": "f", "family": "random_forest", "sizes": [12],
             "protocol": "forest", "seeds": [0]}]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["campaign", str(path), "--results-dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["runs"] == 1

    def test_campaign_unknown(self, capsys):
        assert main(["campaign", "definitely-not-a-campaign"]) == 2
        assert "neither a builtin" in capsys.readouterr().err

    def test_campaign_zero_jobs_is_usage_error(self, capsys, tmp_path):
        for executor in ("serial", "thread"):
            assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                         "--executor", executor, "--jobs", "0"]) == 2
            assert "jobs must be >= 1" in capsys.readouterr().err

    def test_campaign_serial_jobs_prints_note(self, capsys, tmp_path):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--jobs", "4"]) == 0
        assert "no effect with the serial executor" in capsys.readouterr().err

    def test_campaign_wrong_typed_spec_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "x", "scenarios": [
            {"name": "a", "family": "path", "sizes": 5, "protocol": "forest"}]}))
        assert main(["campaign", str(path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_campaign_thread_executor(self, capsys, tmp_path):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--executor", "thread", "--jobs", "2", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["executor"] == "thread"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "session_quickstart.py",
    "datacenter_audit.py",
    "impossibility_tour.py",
    "connectivity_frontier.py",
])
def test_example_runs_clean(script):
    """Each example exits 0 and prints something sensible."""
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 100
    assert "FAILED" not in proc.stdout
