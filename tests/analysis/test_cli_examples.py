"""Smoke tests for the CLI and the example scripts (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T5" in out and "EXP-SKETCH" in out

    def test_single_experiment(self, capsys):
        assert main(["EXP-DEGEN"]) == 0
        out = capsys.readouterr().out
        assert "degeneracy of the paper's graph classes" in out

    def test_unknown_experiment(self, capsys):
        assert main(["EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "datacenter_audit.py",
    "impossibility_tour.py",
    "connectivity_frontier.py",
])
def test_example_runs_clean(script):
    """Each example exits 0 and prints something sensible."""
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 100
    assert "FAILED" not in proc.stdout
