"""Unit tests for BitWriter / BitReader round-trips and framing errors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import BitReader, BitWriter
from repro.errors import BitstreamUnderflow, CodecError


class TestBitWriter:
    def test_empty(self):
        w = BitWriter()
        assert len(w) == 0
        assert w.to_bytes() == b""
        assert w.to_int() == (0, 0)

    def test_single_bits(self):
        w = BitWriter()
        for b in (1, 0, 1, 1):
            w.write_bit(b)
        assert len(w) == 4
        assert w.to_int() == (0b1011, 4)

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b01, 2)
        assert w.to_int() == (0b10101, 5)

    def test_to_bytes_pads_right(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        assert w.to_bytes() == bytes([0b10110000])

    def test_zero_width_write(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert len(w) == 0

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bits(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bits(-1, 4)

    def test_negative_width_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bits(0, -1)

    def test_bad_bit_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bit(2)

    def test_write_writer_concatenates(self):
        a, b = BitWriter(), BitWriter()
        a.write_bits(0b11, 2)
        b.write_bits(0b001, 3)
        a.write_writer(b)
        assert a.to_int() == (0b11001, 5)


class TestBitReader:
    def test_reads_back_bits(self):
        w = BitWriter()
        w.write_bits(0b110101, 6)
        r = BitReader(*w.to_int())
        assert r.read_bits(3) == 0b110
        assert r.read_bit() == 1
        assert r.read_bits(2) == 0b01
        r.expect_exhausted()

    def test_from_bytes(self):
        r = BitReader(bytes([0xA5]))
        assert r.read_bits(8) == 0xA5

    def test_from_bytes_with_trim(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        r = BitReader(w.to_bytes(), nbits=4)
        assert r.read_bits(4) == 0b1011
        r.expect_exhausted()

    def test_underflow(self):
        r = BitReader(0b1, 1)
        r.read_bit()
        with pytest.raises(BitstreamUnderflow):
            r.read_bit()

    def test_expect_exhausted_raises(self):
        r = BitReader(0b10, 2)
        r.read_bit()
        with pytest.raises(CodecError):
            r.expect_exhausted()

    def test_int_requires_nbits(self):
        with pytest.raises(CodecError):
            BitReader(5)

    def test_int_value_must_fit(self):
        with pytest.raises(CodecError):
            BitReader(8, 3)

    def test_trim_out_of_range(self):
        with pytest.raises(CodecError):
            BitReader(b"\x00", nbits=9)

    def test_position_tracking(self):
        r = BitReader(0b1010, 4)
        assert r.position == 0 and r.remaining == 4
        r.read_bits(3)
        assert r.position == 3 and r.remaining == 1


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**64), st.integers(min_value=0, max_value=70))))
def test_roundtrip_many_fields(fields):
    """Property: any sequence of (value, width) pairs with value < 2^width round-trips."""
    w = BitWriter()
    clipped = [(v & ((1 << width) - 1) if width else 0, width) for v, width in fields]
    for v, width in clipped:
        w.write_bits(v, width)
    r = BitReader(*w.to_int())
    for v, width in clipped:
        assert r.read_bits(width) == v
    r.expect_exhausted()


@given(st.binary(max_size=64))
def test_bytes_roundtrip(data):
    """Property: to_bytes/from_bytes is the identity on whole-byte streams."""
    w = BitWriter()
    for byte in data:
        w.write_bits(byte, 8)
    assert w.to_bytes() == data
    r = BitReader(data)
    assert bytes(r.read_bits(8) for _ in data) == data
