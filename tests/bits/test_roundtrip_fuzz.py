"""Seeded-fuzz round-trip properties for the bit layer.

Random write programs over ``BitWriter``/``BitReader`` and every integer
code, replayed from fixed seeds (200+ cases per seed) so a failure is a
deterministic repro, not a flake.  The invariant under test is the
paper's resource model itself: every message is written once, read once,
bit-exactly, with the length accounting agreeing at each step.
"""

import random

import pytest

from repro.bits import BitReader, BitWriter
from repro.bits.codes import (
    EliasDeltaCode,
    EliasGammaCode,
    FixedWidthCode,
    UnaryCode,
    VarintCode,
)
from repro.errors import BitstreamUnderflow, CodecError

SEEDS = (0, 1, 2, 3, 4)
CASES_PER_SEED = 200

#: (code, random value generator) — generators stay small enough to keep
#: 1000 programs fast but still cross every length-class boundary.
CODE_DOMAINS = [
    (UnaryCode(), lambda rng: rng.randrange(0, 40)),
    (EliasGammaCode(), lambda rng: rng.randrange(1, 1 << rng.randrange(1, 24))),
    (EliasDeltaCode(), lambda rng: rng.randrange(1, 1 << rng.randrange(1, 24))),
    (VarintCode(), lambda rng: rng.randrange(0, 1 << rng.randrange(1, 40))),
]


def _random_program(rng):
    """A list of (kind, payload) write ops with their expected read-back."""
    ops = []
    for _ in range(rng.randrange(1, 20)):
        choice = rng.randrange(4)
        if choice == 0:
            ops.append(("bit", rng.randrange(2)))
        elif choice == 1:
            width = rng.randrange(0, 65)
            value = rng.randrange(1 << width) if width else 0
            ops.append(("bits", (value, width)))
        elif choice == 2:
            code_index = rng.randrange(len(CODE_DOMAINS))
            code, domain = CODE_DOMAINS[code_index]
            ops.append(("code", (code_index, domain(rng))))
        else:
            width = rng.randrange(1, 17)
            ops.append(("fixed", (rng.randrange(1 << width), width)))
    return ops


def _write(ops):
    writer = BitWriter()
    for kind, payload in ops:
        if kind == "bit":
            writer.write_bit(payload)
        elif kind == "bits":
            writer.write_bits(*payload)
        elif kind == "code":
            code_index, value = payload
            CODE_DOMAINS[code_index][0].encode(writer, value)
        else:
            value, width = payload
            FixedWidthCode(width).encode(writer, value)
    return writer


def _read_back(reader, ops):
    out = []
    for kind, payload in ops:
        if kind == "bit":
            out.append(("bit", reader.read_bit()))
        elif kind == "bits":
            _, width = payload
            out.append(("bits", (reader.read_bits(width), width)))
        elif kind == "code":
            code_index, _ = payload
            out.append(("code", (code_index, CODE_DOMAINS[code_index][0].decode(reader))))
        else:
            _, width = payload
            out.append(("fixed", (FixedWidthCode(width).decode(reader), width)))
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_random_programs_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        ops = _random_program(rng)
        writer = _write(ops)
        acc, nbits = writer.to_int()
        assert nbits == len(writer)
        reader = BitReader(acc, nbits)
        assert _read_back(reader, ops) == ops
        reader.expect_exhausted()


@pytest.mark.parametrize("seed", SEEDS)
def test_bytes_path_matches_int_path(seed):
    rng = random.Random(seed + 1000)
    for _ in range(CASES_PER_SEED):
        ops = _random_program(rng)
        writer = _write(ops)
        data, nbits = writer.to_bytes(), len(writer)
        assert len(data) == (nbits + 7) // 8
        reader = BitReader(data, nbits)
        assert _read_back(reader, ops) == ops
        reader.expect_exhausted()


@pytest.mark.parametrize("seed", SEEDS)
def test_concatenation_via_write_writer(seed):
    rng = random.Random(seed + 2000)
    for _ in range(CASES_PER_SEED):
        left, right = _random_program(rng), _random_program(rng)
        combined = BitWriter()
        combined.write_writer(_write(left))
        combined.write_writer(_write(right))
        sequential = _write(left + right)
        assert combined.to_int() == sequential.to_int()


@pytest.mark.parametrize("seed", SEEDS)
def test_underflow_is_always_detected(seed):
    rng = random.Random(seed + 3000)
    for _ in range(CASES_PER_SEED):
        ops = _random_program(rng)
        writer = _write(ops)
        acc, nbits = writer.to_int()
        reader = BitReader(acc, nbits)
        overshoot = rng.randrange(1, 10)
        with pytest.raises(BitstreamUnderflow):
            reader.read_bits(nbits + overshoot)
        # the failed read consumed nothing: the stream is still intact
        assert reader.remaining == nbits
        assert _read_back(reader, ops) == ops


class TestWidthEdgeCases:
    def test_zero_width_zero_value(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert len(writer) == 0
        assert BitReader(*writer.to_int()).read_bits(0) == 0

    def test_value_overflowing_width_rejected(self):
        writer = BitWriter()
        for value, width in ((1, 0), (2, 1), (1 << 8, 8), (1 << 63, 63)):
            with pytest.raises(CodecError):
                writer.write_bits(value, width)
        assert len(writer) == 0  # failed writes append nothing

    def test_negative_width_and_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(CodecError):
            writer.write_bits(0, -1)
        with pytest.raises(CodecError):
            writer.write_bits(-1, 4)
        reader = BitReader(0, 0)
        with pytest.raises(CodecError):
            reader.read_bits(-1)

    def test_non_binary_bit_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bit(2)

    def test_empty_stream_reads_nothing(self):
        reader = BitReader(0, 0)
        assert reader.remaining == 0
        reader.expect_exhausted()
        with pytest.raises(BitstreamUnderflow):
            reader.read_bit()

    def test_leftover_bits_flagged(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        reader = BitReader(*writer.to_int())
        reader.read_bit()
        with pytest.raises(CodecError, match="unread bits"):
            reader.expect_exhausted()

    def test_code_domain_bounds_rejected(self):
        writer = BitWriter()
        with pytest.raises(CodecError):
            UnaryCode().encode(writer, -1)
        with pytest.raises(CodecError):
            EliasGammaCode().encode(writer, 0)
        with pytest.raises(CodecError):
            EliasDeltaCode().encode(writer, 0)
        with pytest.raises(CodecError):
            VarintCode().encode(writer, -1)
