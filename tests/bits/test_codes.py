"""Unit + property tests for the integer codes and their length formulas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import (
    BitReader,
    BitWriter,
    EliasDeltaCode,
    EliasGammaCode,
    FixedWidthCode,
    UnaryCode,
    VarintCode,
    elias_delta_length,
    elias_gamma_length,
    fixed_width_for,
    id_width,
    varint_length,
)
from repro.errors import CodecError

SELF_DELIMITING = [EliasGammaCode(), EliasDeltaCode(), VarintCode()]


def roundtrip(code, value):
    w = BitWriter()
    code.encode(w, value)
    r = BitReader(*w.to_int())
    out = code.decode(r)
    r.expect_exhausted()
    return out, len(w)


class TestFixedWidth:
    @pytest.mark.parametrize("width,value", [(0, 0), (1, 1), (8, 255), (20, 12345)])
    def test_roundtrip(self, width, value):
        out, nbits = roundtrip(FixedWidthCode(width), value)
        assert out == value and nbits == width

    def test_rejects_overflow(self):
        with pytest.raises(CodecError):
            roundtrip(FixedWidthCode(3), 8)

    def test_negative_width(self):
        with pytest.raises(CodecError):
            FixedWidthCode(-1)


class TestUnary:
    @pytest.mark.parametrize("value", [0, 1, 2, 17])
    def test_roundtrip_and_length(self, value):
        out, nbits = roundtrip(UnaryCode(), value)
        assert out == value and nbits == value + 1

    def test_rejects_negative(self):
        with pytest.raises(CodecError):
            roundtrip(UnaryCode(), -1)


class TestEliasGamma:
    @pytest.mark.parametrize("value", [1, 2, 3, 4, 7, 8, 255, 1 << 40])
    def test_roundtrip(self, value):
        out, nbits = roundtrip(EliasGammaCode(), value)
        assert out == value
        assert nbits == elias_gamma_length(value)

    def test_known_codewords(self):
        # gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101"
        w = BitWriter()
        EliasGammaCode().encode(w, 5)
        assert w.to_int() == (0b00101, 5)

    def test_rejects_zero(self):
        with pytest.raises(CodecError):
            roundtrip(EliasGammaCode(), 0)


class TestEliasDelta:
    @pytest.mark.parametrize("value", [1, 2, 3, 16, 17, 255, 1 << 40])
    def test_roundtrip(self, value):
        out, nbits = roundtrip(EliasDeltaCode(), value)
        assert out == value
        assert nbits == elias_delta_length(value)

    def test_rejects_zero(self):
        with pytest.raises(CodecError):
            roundtrip(EliasDeltaCode(), 0)

    def test_shorter_than_gamma_for_large_values(self):
        v = 1 << 30
        assert elias_delta_length(v) < elias_gamma_length(v)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 1 << 35])
    def test_roundtrip(self, value):
        out, nbits = roundtrip(VarintCode(), value)
        assert out == value
        assert nbits == varint_length(value)

    def test_rejects_negative(self):
        with pytest.raises(CodecError):
            roundtrip(VarintCode(), -3)


class TestSizingHelpers:
    def test_fixed_width_for(self):
        assert [fixed_width_for(v) for v in (0, 1, 2, 3, 4, 255, 256)] == [0, 1, 2, 2, 3, 8, 9]

    def test_id_width_matches_paper_log_n(self):
        # id_width(n) = ceil(log2(n+1)); within the paper's O(log n) unit.
        assert id_width(1) == 1
        assert id_width(15) == 4
        assert id_width(16) == 5

    def test_id_width_rejects_zero(self):
        with pytest.raises(CodecError):
            id_width(0)


@pytest.mark.parametrize("code", SELF_DELIMITING, ids=lambda c: type(c).__name__)
@given(values=st.lists(st.integers(min_value=1, max_value=1 << 48), max_size=30))
def test_self_delimiting_sequences(code, values):
    """Property: self-delimiting codes concatenate without framing."""
    w = BitWriter()
    for v in values:
        code.encode(w, v)
    r = BitReader(*w.to_int())
    assert [code.decode(r) for _ in values] == values
    r.expect_exhausted()


@given(values=st.lists(st.integers(min_value=0, max_value=200), max_size=30))
def test_unary_sequences(values):
    """Property: unary codewords concatenate without framing (small values)."""
    code = UnaryCode()
    w = BitWriter()
    for v in values:
        code.encode(w, v)
    r = BitReader(*w.to_int())
    assert [code.decode(r) for _ in values] == values
    r.expect_exhausted()


@given(value=st.integers(min_value=1, max_value=1 << 200))
def test_gamma_delta_agree_on_value(value):
    """Property: gamma and delta decode back the same huge integers."""
    for code in (EliasGammaCode(), EliasDeltaCode()):
        out, _ = roundtrip(code, value)
        assert out == value
