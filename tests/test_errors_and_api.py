"""Tests for the exception hierarchy and the top-level public API surface."""

import pytest

import repro
from repro.errors import (
    BitstreamError,
    BitstreamUnderflow,
    CodecError,
    DecodeError,
    FrugalityViolation,
    GraphError,
    InvalidVertexError,
    NotInFamilyError,
    ProtocolError,
    RecognitionFailure,
    RegistryError,
    ReproError,
    SketchFailure,
    UnknownRegistryEntry,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        BitstreamError, CodecError, GraphError, ProtocolError, SketchFailure,
        BitstreamUnderflow, InvalidVertexError, NotInFamilyError,
        FrugalityViolation, DecodeError, RecognitionFailure,
        RegistryError, UnknownRegistryEntry,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specific_parents(self):
        assert issubclass(BitstreamUnderflow, BitstreamError)
        assert issubclass(CodecError, BitstreamError)
        assert issubclass(InvalidVertexError, GraphError)
        assert issubclass(FrugalityViolation, ProtocolError)
        assert issubclass(DecodeError, ProtocolError)
        assert issubclass(RecognitionFailure, DecodeError)
        assert issubclass(RegistryError, ProtocolError)
        assert issubclass(UnknownRegistryEntry, ProtocolError)
        # the Mapping-contract half: deprecated dict views can raise it as KeyError
        assert issubclass(UnknownRegistryEntry, KeyError)

    def test_frugality_violation_payload(self):
        e = FrugalityViolation("too big", vertex=3, bits=99, budget=10)
        assert (e.vertex, e.bits, e.budget) == (3, 99, 10)

    def test_recognition_failure_payload(self):
        e = RecognitionFailure("stuck", stuck_vertices=frozenset({1, 2}))
        assert e.stuck_vertices == frozenset({1, 2})

    def test_catching_base_catches_everything(self):
        from repro.bits import BitWriter

        with pytest.raises(ReproError):
            BitWriter().write_bits(4, 1)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_example(self):
        """The package docstring's example must actually work."""
        from repro import DegeneracyReconstructionProtocol, Referee
        from repro.graphs.generators import random_planar

        g = random_planar(64, seed=1)
        report = Referee().run(DegeneracyReconstructionProtocol(k=5), g)
        assert report.output == g
        assert report.max_message_bits > 0
