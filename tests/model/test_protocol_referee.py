"""Tests for the protocol ABC, the referee simulator, and run reports."""

import pytest

from repro.errors import FrugalityViolation, ProtocolError
from repro.graphs import LabeledGraph
from repro.graphs.generators import cycle_graph, erdos_renyi, path_graph, star_graph
from repro.model import DecisionProtocol, Message, Referee, ReconstructionProtocol
from repro.protocols import (
    DegreeProtocol,
    EmptyProtocol,
    FullAdjacencyProtocol,
    IdEchoProtocol,
)


class TestTrivialProtocols:
    def test_empty_protocol(self):
        g = path_graph(4)
        p = EmptyProtocol()
        assert p.run(g) is None
        assert p.max_message_bits(g) == 0

    def test_id_echo(self):
        g = path_graph(5)
        assert IdEchoProtocol().run(g) == [1, 2, 3, 4, 5]

    def test_degree_protocol(self):
        g = star_graph(5)
        assert DegreeProtocol().run(g) == [4, 1, 1, 1, 1]

    def test_full_adjacency_reconstructs(self):
        for g in (path_graph(6), cycle_graph(5), erdos_renyi(12, 0.4, seed=3)):
            assert FullAdjacencyProtocol().reconstruct(g) == g

    def test_full_adjacency_message_is_n_bits(self):
        g = erdos_renyi(9, 0.5, seed=1)
        assert FullAdjacencyProtocol().max_message_bits(g) == 9

    def test_message_vector_indexed_by_id(self):
        g = LabeledGraph(3, [(1, 3)])
        vec = DegreeProtocol().message_vector(g)
        assert len(vec) == 3
        # vertex 2 is isolated: degree 0
        assert vec[1].reader().read_bits(2) == 0


class TestOutputContracts:
    def test_decision_contract_violation(self):
        class Bad(DecisionProtocol):
            name = "bad"

            def local(self, n, i, neighborhood):
                return Message.empty()

            def global_(self, n, messages):
                return 42

        with pytest.raises(ProtocolError):
            Bad().decide(path_graph(2))

    def test_reconstruction_contract_violation(self):
        class Bad(ReconstructionProtocol):
            name = "bad"

            def local(self, n, i, neighborhood):
                return Message.empty()

            def global_(self, n, messages):
                return "not a graph"

        with pytest.raises(ProtocolError):
            Bad().reconstruct(path_graph(2))


class TestReferee:
    def test_run_report_fields(self):
        g = star_graph(8)
        report = Referee().run(FullAdjacencyProtocol(), g)
        assert report.n == 8
        assert report.output == g
        assert report.max_message_bits == 8
        assert report.total_message_bits == 64
        assert report.mean_message_bits == 8.0
        assert report.local_seconds >= 0 and report.global_seconds >= 0
        assert len(report.per_vertex_bits) == 8

    def test_budget_enforced(self):
        g = star_graph(8)
        ref = Referee(budget_bits=4)
        with pytest.raises(FrugalityViolation) as exc:
            ref.run(FullAdjacencyProtocol(), g)
        assert exc.value.bits == 8 and exc.value.budget == 4

    def test_budget_permits_small(self):
        g = star_graph(8)
        report = Referee(budget_bits=4).run(DegreeProtocol(), g)
        assert report.max_message_bits <= 4

    def test_shuffled_delivery_same_output(self):
        g = erdos_renyi(10, 0.4, seed=5)
        plain = Referee().run(FullAdjacencyProtocol(), g)
        shuffled = Referee(shuffle_delivery=True, shuffle_seed=99).run(FullAdjacencyProtocol(), g)
        assert plain.output == shuffled.output == g

    def test_empty_graph(self):
        report = Referee().run(EmptyProtocol(), LabeledGraph(0))
        assert report.max_message_bits == 0 and report.mean_message_bits == 0.0
