"""Tests for the multi-round referee loop."""

import pytest

from repro.bits import BitWriter
from repro.errors import FrugalityViolation, ProtocolError
from repro.graphs.generators import path_graph, star_graph
from repro.model import Message, MultiRoundProtocol, MultiRoundReferee


class EchoPlusOne(MultiRoundProtocol):
    """Round 0: nodes send degree; referee feeds it back; round 1: nodes send it + 1."""

    name = "echo-plus-one"

    def rounds(self, n):
        return 2

    def node_step(self, n, i, neighborhood, round_idx, inbox):
        w = BitWriter()
        if round_idx == 0:
            w.write_bits(len(neighborhood), 8)
        else:
            w.write_bits(inbox.reader().read_bits(8) + 1, 8)
        return Message.from_writer(w)

    def referee_step(self, n, round_idx, messages):
        values = [m.reader().read_bits(8) for m in messages]
        if round_idx == 0:
            return "continue", [Message(v, 8) for v in values]
        return "output", values


class NeverFinishes(EchoPlusOne):
    name = "never-finishes"

    def referee_step(self, n, round_idx, messages):
        return "continue", [Message(m.reader().read_bits(8), 8) for m in messages]


class BadVerdict(EchoPlusOne):
    name = "bad-verdict"

    def referee_step(self, n, round_idx, messages):
        return "banana", None


class WrongOutboxCount(EchoPlusOne):
    name = "wrong-outbox"

    def referee_step(self, n, round_idx, messages):
        return "continue", [Message.empty()]


class TestMultiRound:
    def test_two_round_echo(self):
        g = star_graph(5)
        report = MultiRoundReferee().run(EchoPlusOne(), g)
        assert report.output == [5, 2, 2, 2, 2]  # degrees + 1
        assert report.rounds_used == 2
        assert report.max_node_message_bits == 8
        assert report.max_referee_message_bits == 8
        assert report.total_bits == 5 * 8 * 3  # two node rounds + one feedback round

    def test_exhausted_rounds_raises(self):
        with pytest.raises(ProtocolError, match="exhausted"):
            MultiRoundReferee().run(NeverFinishes(), path_graph(3))

    def test_bad_verdict_raises(self):
        with pytest.raises(ProtocolError, match="verdict"):
            MultiRoundReferee().run(BadVerdict(), path_graph(3))

    def test_wrong_outbox_count_raises(self):
        with pytest.raises(ProtocolError, match="one message per node"):
            MultiRoundReferee().run(WrongOutboxCount(), path_graph(3))

    def test_budget_applies_both_directions(self):
        with pytest.raises(FrugalityViolation):
            MultiRoundReferee(budget_bits=4).run(EchoPlusOne(), path_graph(3))

    def test_zero_rounds_rejected(self):
        class Zero(EchoPlusOne):
            def rounds(self, n):
                return 0

        with pytest.raises(ProtocolError, match="rounds"):
            MultiRoundReferee().run(Zero(), path_graph(2))
