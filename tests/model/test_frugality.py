"""Tests for the frugality auditor."""

import pytest

from repro.errors import FrugalityViolation
from repro.graphs.generators import erdos_renyi, star_graph
from repro.model import FrugalityAuditor, log2_ceil
from repro.protocols import DegreeProtocol, FullAdjacencyProtocol, IdEchoProtocol


class TestLog2Ceil:
    def test_values(self):
        assert [log2_ceil(n) for n in (1, 2, 3, 4, 5, 8, 9, 1024, 1025)] == [
            1, 1, 2, 2, 3, 3, 4, 10, 11,
        ]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_ceil(0)


class TestAuditor:
    def test_frugal_protocol_constant(self):
        graphs = [erdos_renyi(n, 0.3, seed=n) for n in (8, 16, 32, 64)]
        report = FrugalityAuditor().audit(IdEchoProtocol(), graphs)
        assert report.graphs_audited == 4
        # id is exactly one log-unit... id_width(n) vs log2_ceil(n) may differ
        # by one bit at powers of two, so allow <= 2
        assert report.fitted_constant <= 2.0
        assert report.is_frugal(2.0)

    def test_non_frugal_protocol_constant_grows(self):
        graphs = [star_graph(n) for n in (16, 64, 256)]
        report = FrugalityAuditor().audit(FullAdjacencyProtocol(), graphs)
        # n bits per message: constant n / log n, blows past any fixed budget
        assert report.fitted_constant >= 256 / log2_ceil(256)
        assert not report.is_frugal(10.0)

    def test_budget_raises_inline(self):
        auditor = FrugalityAuditor(budget_constant=1.5)
        with pytest.raises(FrugalityViolation):
            auditor.audit(FullAdjacencyProtocol(), [star_graph(64)])

    def test_rows_sorted(self):
        graphs = [star_graph(n) for n in (32, 8, 16)]
        report = FrugalityAuditor().audit(DegreeProtocol(), graphs)
        ns = [row[0] for row in report.rows()]
        assert ns == sorted(ns)
        for n, bits, unit, ratio in report.rows():
            assert unit == log2_ceil(n)
            assert ratio == pytest.approx(bits / unit)

    def test_empty_corpus(self):
        report = FrugalityAuditor().audit(DegreeProtocol(), [])
        assert report.fitted_constant == 0.0 and report.graphs_audited == 0


class TestScalingExponent:
    def test_frugal_shape_near_one(self):
        samples = {n: 3 * log2_ceil(n) for n in (8, 32, 128, 512, 2048)}
        e = FrugalityAuditor.fit_scaling_exponent(samples)
        assert e == pytest.approx(1.0, abs=0.05)

    def test_linear_shape_far_above_one(self):
        samples = {n: n for n in (8, 32, 128, 512, 2048)}
        e = FrugalityAuditor.fit_scaling_exponent(samples)
        assert e > 2.0

    def test_degenerate_inputs(self):
        assert FrugalityAuditor.fit_scaling_exponent({}) == 0.0
        assert FrugalityAuditor.fit_scaling_exponent({8: 5}) == 0.0
        assert FrugalityAuditor.fit_scaling_exponent({8: 5, 16: 7, 32: 0}) != 0.0 or True
