"""Referee edge cases the engine relies on: n=0, exact budgets, shuffling."""

import pytest

from repro.errors import FrugalityViolation
from repro.graphs.generators import random_forest, random_k_degenerate
from repro.graphs.labeled import LabeledGraph
from repro.model import Referee
from repro.protocols import DegeneracyReconstructionProtocol, ForestReconstructionProtocol
from repro.protocols.trivial import EmptyProtocol, IdEchoProtocol


class TestEmptyGraph:
    def test_zero_vertices_produces_empty_report(self):
        report = Referee().run(EmptyProtocol(), LabeledGraph(0))
        assert report.n == 0
        assert report.max_message_bits == 0
        assert report.total_message_bits == 0
        assert report.per_vertex_bits == ()
        assert report.mean_message_bits == 0.0

    def test_zero_vertices_with_all_referee_options(self):
        from repro.engine import FaultSpec, SerialExecutor

        referee = Referee(
            budget_bits=0,
            shuffle_delivery=True,
            executor=SerialExecutor(),
            faults=FaultSpec(drop=0.5, seed=1),
        )
        report = referee.run(EmptyProtocol(), LabeledGraph(0))
        assert report.n == 0
        assert report.output is None


class TestExactBudget:
    def test_budget_equal_to_message_length_passes(self):
        g = random_forest(24, 3, seed=5)
        protocol = ForestReconstructionProtocol()
        longest = max(m.bits for m in protocol.message_vector(g))
        report = Referee(budget_bits=longest).run(protocol, g)
        assert report.output == g
        assert report.max_message_bits == longest

    def test_budget_one_below_raises_with_witness(self):
        g = random_forest(24, 3, seed=5)
        protocol = ForestReconstructionProtocol()
        longest = max(m.bits for m in protocol.message_vector(g))
        with pytest.raises(FrugalityViolation) as exc:
            Referee(budget_bits=longest - 1).run(protocol, g)
        assert exc.value.bits == longest
        assert exc.value.budget == longest - 1
        assert exc.value.vertex in set(g.vertices())

    def test_zero_budget_accepts_empty_messages(self):
        g = random_forest(10, 2, seed=1)
        report = Referee(budget_bits=0).run(EmptyProtocol(), g)
        assert report.total_message_bits == 0


class TestShuffleInvariance:
    def test_output_and_bits_invariant_across_shuffle_seeds(self):
        g = random_k_degenerate(40, 2, seed=7)
        protocol = DegeneracyReconstructionProtocol(2)
        baseline = Referee().run(protocol, g)
        for seed in (None, 0, 1, 2, 12345):
            shuffled = Referee(shuffle_delivery=True, shuffle_seed=seed).run(protocol, g)
            assert shuffled.output == baseline.output == g
            assert shuffled.per_vertex_bits == baseline.per_vertex_bits
            assert shuffled.max_message_bits == baseline.max_message_bits
            assert shuffled.total_message_bits == baseline.total_message_bits
