"""Tests for the Message type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import BitWriter
from repro.errors import CodecError
from repro.model import Message


class TestMessage:
    def test_empty(self):
        m = Message.empty()
        assert m.bits == 0 and len(m) == 0
        assert m.reader().remaining == 0

    def test_from_writer(self):
        w = BitWriter()
        w.write_bits(0b1101, 4)
        m = Message.from_writer(w)
        assert m.bits == 4 and m.acc == 0b1101
        assert m.reader().read_bits(4) == 0b1101

    def test_rejects_overflow(self):
        with pytest.raises(CodecError):
            Message(8, 3)
        with pytest.raises(CodecError):
            Message(0, -1)

    def test_equality_by_content(self):
        assert Message(5, 3) == Message(5, 3)
        assert Message(5, 3) != Message(5, 4)  # same value, different length
        assert Message(5, 3) != "x"
        assert hash(Message(5, 3)) == hash(Message(5, 3))

    def test_concat(self):
        m = Message(0b11, 2).concat(Message(0b001, 3))
        assert m.acc == 0b11001 and m.bits == 5

    def test_concat_with_empty(self):
        m = Message(0b1, 1)
        assert m.concat(Message.empty()) == m
        assert Message.empty().concat(m) == m

    def test_repr_small_and_large(self):
        assert "101" in repr(Message(0b101, 3))
        assert "bits=64" in repr(Message(0, 64))
        assert "empty" in repr(Message.empty())


@given(a=st.integers(0, 2**30 - 1), na=st.integers(30, 40), b=st.integers(0, 2**30 - 1), nb=st.integers(30, 40))
def test_concat_bit_lengths_add(a, na, b, nb):
    m = Message(a, na).concat(Message(b, nb))
    assert m.bits == na + nb
    r = m.reader()
    assert r.read_bits(na) == a and r.read_bits(nb) == b
