"""Test-suite configuration: deterministic, deadline-free hypothesis runs.

Several property tests exercise full protocol rounds whose first execution
includes lazy table builds; wall-clock deadlines would make those flaky on
loaded machines, so deadlines are disabled globally (example counts are the
budget instead).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile("repro")
