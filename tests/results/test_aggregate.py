"""Group-by aggregation: stats, rates, and the Lemma-2 normalization."""

import math

import pytest

from repro.errors import SchemaError
from repro.results import (
    Stats,
    aggregate,
    aggregate_table,
    normalized_bits,
    percentile,
)


class TestStats:
    def test_known_values(self):
        s = Stats.of([4, 1, 3, 2])
        assert (s.count, s.min, s.mean, s.max) == (4, 1, 2.5, 4)
        assert s.p95 == 4

    def test_p95_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 95) == 95
        assert percentile([7], 95) == 7
        assert percentile([1, 2], 50) == 1

    def test_percentile_bounds(self):
        with pytest.raises(SchemaError):
            percentile([], 95)
        with pytest.raises(SchemaError):
            percentile([1], 101)


class TestNormalization:
    def test_lemma2_units(self, make_record):
        r = make_record(n=64, k=2, max_bits=96)
        assert normalized_bits(r) == round(96 / (4 * math.log2(64)), 6)

    def test_default_k_is_one(self, make_record):
        r = make_record(n=16, max_bits=20)
        assert normalized_bits(r) == round(20 / math.log2(16), 6)

    def test_undefined_for_tiny_n(self, make_record):
        assert normalized_bits(make_record(n=1)) is None

    def test_undefined_for_non_integer_k(self, make_record):
        r = make_record(n=16)
        r["spec"]["protocol_params"]["k"] = 1.5
        assert normalized_bits(r) is None

    def test_zero_bit_runs_excluded(self, make_record):
        failed = make_record(status="error", exact=None, max_bits=0, total_bits=0)
        assert normalized_bits(failed) is None

    def test_failed_runs_do_not_drag_the_group_mean(self, make_record):
        records = [
            make_record(seed=0, n=16, max_bits=20),
            make_record(seed=1, n=16, status="error", exact=None,
                        max_bits=0, total_bits=0),
        ]
        [g] = aggregate(records, by=("n",))
        # only the measured run contributes to the normalization column
        assert g["bits_per_k2_log_n"]["count"] == 1
        assert g["bits_per_k2_log_n"]["mean"] == round(20 / math.log2(16), 6)


class TestAggregate:
    def test_grouping_counts(self, make_record):
        records = [
            make_record(protocol="forest", n=12),
            make_record(protocol="forest", n=12, seed=1),
            make_record(protocol="forest", n=16),
            make_record(protocol="degeneracy", n=16, k=2),
        ]
        groups = aggregate(records, by=("protocol", "n"))
        keys = [(g["group"]["protocol"], g["group"]["n"]) for g in groups]
        assert keys == [("degeneracy", 16), ("forest", 12), ("forest", 16)]
        assert [g["runs"] for g in groups] == [1, 2, 1]

    def test_numeric_axis_sorts_numerically(self, make_record):
        records = [make_record(n=n) for n in (128, 16, 64)]
        groups = aggregate(records, by=("n",))
        assert [g["group"]["n"] for g in groups] == [16, 64, 128]

    def test_bit_stats(self, make_record):
        records = [make_record(max_bits=b, total_bits=10 * b, seed=i)
                   for i, b in enumerate((10, 20, 30, 40))]
        [g] = aggregate(records, by=("protocol",))
        assert g["max_message_bits"] == {
            "count": 4, "min": 10, "mean": 25, "max": 40, "p95": 40}
        assert g["total_message_bits"]["mean"] == 250

    def test_exact_and_status_rates(self, make_record):
        records = [
            make_record(seed=0, exact=True), make_record(seed=1, exact=True),
            make_record(seed=2, exact=False),
            make_record(seed=3, status="error", exact=None),
        ]
        [g] = aggregate(records, by=("family",))
        assert g["statuses"] == {"error": 1, "ok": 3}
        assert g["exact"] == {"true": 2, "false": 1, "checked": 3,
                              "rate": round(2 / 3, 6)}

    def test_fault_events_totalled(self, make_record):
        faults = {"drop": 0.2, "duplicate": 0.0, "flip": 0.0, "seed": 7}
        records = [make_record(seed=i, faults=faults, dropped=i) for i in range(3)]
        [g] = aggregate(records, by=("faults",))
        assert g["group"]["faults"] == "drop=0.2,dup=0.0,flip=0.0,seed=7"
        assert g["fault_events"]["dropped"] == 3

    def test_timing_is_opt_in(self, make_record):
        records = [make_record(wall=0.5)]
        [bare] = aggregate(records, by=("n",))
        assert "wall_seconds" not in bare
        [timed] = aggregate(records, by=("n",), include_timing=True)
        assert timed["wall_seconds"]["mean"] == 0.5

    def test_unknown_axis_rejected(self, make_record):
        with pytest.raises(SchemaError, match="unknown group-by axis"):
            aggregate([make_record()], by=("colour",))

    def test_empty_axes_rejected(self, make_record):
        with pytest.raises(SchemaError, match="at least one"):
            aggregate([make_record()], by=())

    def test_zero_records_rejected(self):
        with pytest.raises(SchemaError, match="zero records"):
            aggregate([], by=("n",))

    def test_deterministic(self, make_record):
        records = [make_record(n=n, seed=s) for n in (12, 16) for s in (0, 1)]
        assert aggregate(records, by=("n",)) == aggregate(records, by=("n",))


class TestTable:
    def test_table_shape(self, make_record):
        records = [make_record(n=12), make_record(n=16, seed=1)]
        by = ("protocol", "n")
        groups = aggregate(records, by=by)
        title, headers, rows = aggregate_table(groups, by, title="t")
        assert title == "t"
        assert headers[:2] == ["protocol", "n"]
        assert len(rows) == 2
        assert all(len(r) == len(headers) for r in rows)

    def test_exact_dash_when_unchecked(self, make_record):
        groups = aggregate([make_record(exact=None, status="error")], by=("n",))
        _, headers, rows = aggregate_table(groups, ("n",))
        assert rows[0][headers.index("exact")] == "-"
