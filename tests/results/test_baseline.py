"""Frozen baselines: freeze determinism and the regression-gate verdicts."""

import copy
import json

import pytest

from repro.errors import BaselineError, SchemaError
from repro.results import check, freeze, load_baseline, summarize_campaign


def _records(make_record, n_runs=3):
    return [make_record(seed=s, max_bits=20 + s, total_bits=300 + s,
                        digest=f"d{s}") for s in range(n_runs)]


class TestFreeze:
    def test_freeze_writes_named_file(self, tmp_path, make_record):
        path = freeze(_records(make_record), "smoke", baselines_dir=tmp_path)
        assert path == tmp_path / "smoke.json"
        baseline = json.loads(path.read_text())
        assert baseline["runs"] == 3
        assert baseline["rollup"]["statuses"] == {"ok": 3}
        assert len(baseline["by_hash"]) == 3

    def test_freeze_is_byte_stable(self, tmp_path, make_record):
        records = _records(make_record)
        first = freeze(records, "b", baselines_dir=tmp_path).read_bytes()
        # timing noise must not reach the frozen form
        records[0]["timing"]["wall_seconds"] = 999.0
        assert freeze(records, "b", baselines_dir=tmp_path).read_bytes() == first

    def test_freeze_zero_records_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match="zero records"):
            freeze([], "empty", baselines_dir=tmp_path)

    def test_summary_has_no_timing(self, make_record):
        summary = summarize_campaign(_records(make_record))
        assert "timing" not in json.dumps(summary)


class TestLoad:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="does not exist"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version(self, tmp_path, make_record):
        path = freeze(_records(make_record), "b", baselines_dir=tmp_path)
        baseline = json.loads(path.read_text())
        baseline["baseline_version"] = 99
        path.write_text(json.dumps(baseline))
        with pytest.raises(BaselineError, match="baseline_version"):
            load_baseline(path)

    def test_truncated_entry_refused(self, tmp_path, make_record):
        """A baseline that cannot pin anything must fail loudly, not pass."""
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        baseline = json.loads(path.read_text())
        for entry in baseline["by_hash"].values():
            del entry["output_digest"]
            del entry["max_message_bits"]
        path.write_text(json.dumps(baseline))
        with pytest.raises(BaselineError, match="missing pinned field"):
            check(records, path)


class TestCheck:
    def test_same_records_pass(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        verdict = check(copy.deepcopy(records), path)
        assert verdict.passed
        assert verdict.runs_checked == 3
        assert verdict.to_dict()["failures"] == []

    def test_digest_change_fails(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        records[1]["result"]["output_digest"] = "drifted"
        verdict = check(records, path)
        assert not verdict.passed
        [failure] = verdict.failures
        assert failure.kind == "result"
        assert "output_digest" in failure.detail

    def test_bit_growth_fails_within_tolerance_passes(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        records[0]["result"]["max_message_bits"] += 2  # 10% of 20
        strict = check(records, path)
        assert not strict.passed and strict.failures[0].kind == "bits"
        assert check(records, path, bits_tolerance=0.1).passed

    def test_missing_run_fails(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        verdict = check(records[:-1], path)
        assert not verdict.passed
        assert verdict.failures[0].kind == "missing-run"

    def test_extra_run_fails(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        records.append(make_record(seed=77, digest="extra"))
        verdict = check(records, path)
        assert not verdict.passed
        assert verdict.failures[0].kind == "extra-run"

    def test_status_flip_fails(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        records[2]["result"]["status"] = "violation"
        kinds = {f.kind for f in check(records, path).failures}
        assert "result" in kinds

    def test_verdict_json_serializable(self, tmp_path, make_record):
        records = _records(make_record)
        path = freeze(records, "b", baselines_dir=tmp_path)
        records[0]["result"]["exact"] = False
        payload = json.loads(json.dumps(check(records, path).to_dict()))
        assert payload["passed"] is False
        assert payload["failures"][0]["kind"] == "result"
