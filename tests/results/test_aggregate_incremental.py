"""The incremental aggregation core: Aggregator ≡ aggregate, bounded state.

The PR 10 bugfix replaced the unbounded per-group value lists with
running stats and a bounded quantile sketch.  These tests pin the
contract that made the swap safe: below the spill limit every number is
*bit-identical* to the old list-based path, the state is
order-independent, and zero records is a domain error, not a crash.
"""

import random

import pytest

from repro.errors import SchemaError
from repro.results.aggregate import (
    DEFAULT_AXES,
    SKETCH_EXACT_LIMIT,
    Aggregator,
    QuantileSketch,
    RunningStats,
    aggregate,
    percentile,
)


def _records(make_record, n=40, seed=0):
    rng = random.Random(seed)
    return [
        make_record(
            protocol=rng.choice(["forest", "spanning_tree"]),
            n=rng.choice([16, 64]),
            max_bits=rng.randrange(1, 2000),
            total_bits=rng.randrange(1, 50_000),
            wall=rng.random(),
            status=rng.choice(["ok", "ok", "violation"]),
        )
        for _ in range(n)
    ]


class TestAggregatorEquivalence:
    def test_feed_matches_batch(self, make_record):
        records = _records(make_record)
        agg = Aggregator()
        for record in records:
            agg.feed(record)
        assert agg.records == len(records)
        assert agg.groups() == aggregate(records)

    def test_groups_is_a_snapshot_not_a_drain(self, make_record):
        records = _records(make_record, n=10)
        agg = Aggregator()
        agg.feed_many(records[:5])
        first = agg.groups()
        assert agg.groups() == first  # reading twice changes nothing
        agg.feed_many(records[5:])
        assert agg.groups() == aggregate(records)

    def test_custom_axes_and_timing(self, make_record):
        records = _records(make_record, n=25, seed=3)
        agg = Aggregator(by=("protocol",), include_timing=True)
        agg.feed_many(records)
        assert agg.groups() == aggregate(records, by=("protocol",),
                                         include_timing=True)
        assert "wall_seconds" in agg.groups()[0]

    def test_default_axes_exported(self):
        assert Aggregator().by == tuple(DEFAULT_AXES)


class TestDomainErrors:
    def test_zero_records_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="zero records"):
            Aggregator().groups()

    def test_unknown_axis_rejected_at_construction(self):
        with pytest.raises(SchemaError, match="axis"):
            Aggregator(by=("protocol", "nonsense"))

    def test_empty_axes_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            Aggregator(by=())


class TestRunningStats:
    def test_matches_naive_float_summary(self):
        rng = random.Random(7)
        values = [rng.random() * 100 for _ in range(500)]
        rs = RunningStats(floats=True)
        for v in values:
            rs.feed(v)
        got = rs.stats()
        assert got["count"] == 500
        assert got["min"] == min(values)
        assert got["max"] == max(values)
        assert got["mean"] == round(sum(values) / 500, 6)
        assert got["p95"] == percentile(values, 95.0)

    def test_merge_equals_single_feed(self):
        rng = random.Random(11)
        values = [rng.randrange(10_000) for _ in range(300)]
        whole = RunningStats()
        for v in values:
            whole.feed(v)
        left, right = RunningStats(), RunningStats()
        for v in values[:150]:
            left.feed(v)
        for v in values[150:]:
            right.feed(v)
        left.merge(right)
        assert left.stats() == whole.stats()

    def test_empty_stats_is_schema_error(self):
        with pytest.raises(SchemaError, match="empty"):
            RunningStats().stats()


class TestQuantileSketch:
    def test_exact_below_limit(self):
        rng = random.Random(13)
        values = [rng.randrange(1_000_000) for _ in range(1000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.feed(v)
        assert not sketch.spilled
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert sketch.quantile(q) == percentile(values, q)

    def test_spill_bounds_memory_and_error(self):
        n = SKETCH_EXACT_LIMIT + 1000
        rng = random.Random(17)
        values = rng.sample(range(1, 50_000_000), n)
        sketch = QuantileSketch()
        for v in values:
            sketch.feed(v)
        assert sketch.spilled
        exact = percentile(values, 95.0)
        assert abs(sketch.quantile(95.0) - exact) / exact <= 0.10

    def test_merge_commutes(self):
        rng = random.Random(19)
        values = [rng.randrange(1, 100_000) for _ in range(2000)]
        a, b = QuantileSketch(), QuantileSketch()
        for v in values[::2]:
            a.feed(v)
        for v in values[1::2]:
            b.feed(v)
        ab, ba = QuantileSketch(), QuantileSketch()
        for v in values[::2]:
            ab.feed(v)
        for v in values[1::2]:
            ba.feed(v)
        ab.merge(b)
        ba.merge(a)
        assert ab.quantile(95.0) == ba.quantile(95.0)

    def test_empty_quantile_is_schema_error(self):
        with pytest.raises(SchemaError, match="empty"):
            QuantileSketch().quantile(95.0)

    def test_negative_and_zero_values_survive_spill(self):
        values = list(range(-3000, 3000))  # 6000 distinct forces a spill
        sketch = QuantileSketch()
        for v in values:
            sketch.feed(v)
        assert sketch.spilled
        assert sketch.quantile(0.0) <= -2700  # ~9.1% relative, sign kept
        assert sketch.quantile(100.0) >= 2700
        lo, hi = sketch.quantile(25.0), sketch.quantile(75.0)
        assert lo < hi
