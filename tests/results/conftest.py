"""Shared factory for schema-valid synthetic campaign records."""

import pytest

from repro.results.records import validate_record


def _make_record(*, protocol="forest", family="random_forest", n=16, seed=0,
                 status="ok", exact=True, max_bits=20, total_bits=320,
                 k=None, faults=None, dropped=0, wall=0.01,
                 digest="d", scenario="s") -> dict:
    protocol_params = {} if k is None else {"k": k}
    record = {
        "spec_version": 2,
        "spec": {
            "scenario": scenario, "family": family, "n": n, "seed": seed,
            "protocol": protocol, "family_params": {},
            "protocol_params": protocol_params, "budget_bits": None,
            "shuffle_delivery": False, "faults": faults,
        },
        "result": {
            "status": status, "output_kind": "graph", "output_digest": digest,
            "exact": exact, "graph_n": n, "graph_m": n - 1,
            "max_message_bits": max_bits, "total_message_bits": total_bits,
            "faults": {"dropped": dropped, "duplicated": 0, "flipped": 0},
            "error": "",
        },
        "timing": {"wall_seconds": wall},
        "cached": False,
    }
    return validate_record(record)


@pytest.fixture()
def make_record():
    return _make_record
