"""Campaign diffing: content-hash alignment, tolerances, determinism."""

import copy
import json

import pytest

from repro.errors import SchemaError
from repro.results import diff_campaigns


def _pair(make_record, n_runs=3):
    a = [make_record(seed=s, max_bits=20 + s, total_bits=300 + s, digest=f"d{s}")
         for s in range(n_runs)]
    return a, copy.deepcopy(a)


class TestAlignment:
    def test_identical_campaigns_are_ok(self, make_record):
        a, b = _pair(make_record)
        report = diff_campaigns(a, b)
        assert report.ok
        assert (report.runs_a, report.runs_b, report.matched) == (3, 3, 3)

    def test_alignment_ignores_file_order_and_labels(self, make_record):
        a, b = _pair(make_record)
        b.reverse()
        for record in b:
            record["spec"]["scenario"] = "renamed"
        assert diff_campaigns(a, b).ok

    def test_missing_and_extra_runs(self, make_record):
        a, b = _pair(make_record)
        dropped = b.pop()
        b.append(make_record(seed=99, digest="new"))
        report = diff_campaigns(a, b)
        assert not report.ok
        assert len(report.only_in_a) == 1
        assert len(report.only_in_b) == 1
        assert report.only_in_a[0]["spec"]["seed"] == dropped["spec"]["seed"]

    def test_duplicate_hash_rejected(self, make_record):
        record = make_record()
        with pytest.raises(SchemaError, match="duplicate run"):
            diff_campaigns([record, copy.deepcopy(record)], [record])


class TestMismatches:
    def test_digest_change_detected(self, make_record):
        a, b = _pair(make_record)
        b[1]["result"]["output_digest"] = "changed"
        report = diff_campaigns(a, b)
        assert not report.ok
        [delta] = report.result_mismatches
        assert delta.field == "output_digest"
        assert (delta.a, delta.b) == ("d1", "changed")

    def test_status_and_exact_changes_detected(self, make_record):
        a, b = _pair(make_record)
        b[0]["result"]["status"] = "error"
        b[2]["result"]["exact"] = False
        report = diff_campaigns(a, b)
        assert {d.field for d in report.result_mismatches} == {"status", "exact"}

    def test_bit_delta_beyond_tolerance(self, make_record):
        a, b = _pair(make_record)
        b[0]["result"]["max_message_bits"] += 5
        strict = diff_campaigns(a, b)
        assert not strict.ok
        [delta] = strict.bit_deltas
        assert delta.field == "max_message_bits"
        loose = diff_campaigns(a, b, bits_tolerance=0.5)
        assert loose.ok

    def test_exact_tolerance_boundary(self, make_record):
        a, b = _pair(make_record, n_runs=1)
        b[0]["result"]["total_message_bits"] = 330  # +10% of 300
        assert diff_campaigns(a, b, bits_tolerance=0.1).ok
        assert not diff_campaigns(a, b, bits_tolerance=0.09).ok

    def test_negative_tolerance_rejected(self, make_record):
        a, b = _pair(make_record)
        with pytest.raises(SchemaError, match="bits_tolerance"):
            diff_campaigns(a, b, bits_tolerance=-0.1)


class TestTiming:
    def test_timing_never_fails_by_default(self, make_record):
        a, b = _pair(make_record)
        for record in b:
            record["timing"]["wall_seconds"] = 100.0
        report = diff_campaigns(a, b)
        assert report.ok and report.time_ok is None
        assert report.wall_ratio["mean"] > 1000

    def test_time_tolerance_gates(self, make_record):
        a, b = _pair(make_record)
        for record in b:
            record["timing"]["wall_seconds"] = 0.03  # 3x slower than 0.01
        assert not diff_campaigns(a, b, time_tolerance=2.0).ok
        assert diff_campaigns(a, b, time_tolerance=4.0).ok

    def test_json_form_excludes_timing_by_default(self, make_record):
        a, b = _pair(make_record)
        plain = diff_campaigns(a, b).to_dict()
        assert "wall_ratio" not in plain
        timed = diff_campaigns(a, b).to_dict(include_timing=True)
        assert "wall_ratio" in timed


class TestDeterminism:
    def test_default_report_is_byte_stable(self, make_record):
        a, b = _pair(make_record)
        b[0]["timing"]["wall_seconds"] = 42.0  # timing noise must not leak
        one = json.dumps(diff_campaigns(a, b).to_dict(), sort_keys=True)
        two = json.dumps(diff_campaigns(a, b).to_dict(), sort_keys=True)
        assert one == two
        assert "42" not in one
