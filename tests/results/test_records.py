"""Schema validator, migrator, and streaming record I/O."""

import json

import pytest

from repro.engine import Scenario
from repro.engine.scenario import SPEC_VERSION, execute_run
from repro.errors import SchemaError
from repro.results import (
    RECORD_VERSION,
    canonical_line,
    iter_records,
    load_records,
    migrate_record,
    spec_content_hash,
    validate_record,
    write_records,
)


def _record() -> dict:
    spec = next(Scenario(name="r", family="random_forest", sizes=(12,),
                         protocol="forest", seeds=(0,)).expand())
    return execute_run(spec).to_json_dict()


@pytest.fixture()
def record():
    return _record()


class TestValidate:
    def test_engine_record_validates(self, record):
        assert validate_record(record) == record

    def test_version_matches_engine(self):
        assert RECORD_VERSION == SPEC_VERSION

    def test_unknown_top_level_key_rejected(self, record):
        record["extra"] = 1
        with pytest.raises(SchemaError, match="unknown key.*extra"):
            validate_record(record)

    def test_unknown_spec_key_rejected(self, record):
        record["spec"]["color"] = "red"
        with pytest.raises(SchemaError, match="unknown key.*color"):
            validate_record(record)

    def test_unknown_result_key_rejected(self, record):
        record["result"]["speed"] = 9
        with pytest.raises(SchemaError, match="unknown key.*speed"):
            validate_record(record)

    def test_missing_key_rejected(self, record):
        del record["result"]["output_digest"]
        with pytest.raises(SchemaError, match="missing key result.output_digest"):
            validate_record(record)

    def test_wrong_type_rejected(self, record):
        record["spec"]["n"] = "twelve"
        with pytest.raises(SchemaError, match="spec.n must be int"):
            validate_record(record)

    def test_bool_is_not_an_int(self, record):
        record["result"]["graph_n"] = True
        with pytest.raises(SchemaError, match="graph_n must be int"):
            validate_record(record)

    def test_int_is_not_a_bool(self, record):
        record["spec"]["shuffle_delivery"] = 1
        with pytest.raises(SchemaError, match="shuffle_delivery must be bool"):
            validate_record(record)

    def test_bad_status_rejected(self, record):
        record["result"]["status"] = "fine"
        with pytest.raises(SchemaError, match="status must be one of"):
            validate_record(record)

    def test_negative_bits_rejected(self, record):
        record["result"]["max_message_bits"] = -1
        with pytest.raises(SchemaError, match="max_message_bits must be >= 0"):
            validate_record(record)

    def test_non_numeric_timing_rejected(self, record):
        record["timing"]["wall_seconds"] = "fast"
        with pytest.raises(SchemaError, match="timing.wall_seconds must be a number"):
            validate_record(record)

    def test_param_value_must_be_scalar(self, record):
        record["spec"]["family_params"] = {"k": [1, 2]}
        with pytest.raises(SchemaError, match="family_params.k"):
            validate_record(record)

    def test_fault_sections_validated(self, record):
        record["result"]["faults"]["dropped"] = -2
        with pytest.raises(SchemaError, match="dropped must be >= 0"):
            validate_record(record)

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError, match="must be an object"):
            validate_record([1, 2])


class TestMigrate:
    def test_v1_record_is_stamped(self, record):
        v1 = dict(record)
        del v1["spec_version"]
        migrated = migrate_record(v1)
        assert migrated["spec_version"] == RECORD_VERSION
        assert validate_record(migrated)
        assert "spec_version" not in v1  # input not mutated

    def test_unmigrated_v1_fails_strict_validation(self, record):
        del record["spec_version"]
        with pytest.raises(SchemaError, match="missing key record.spec_version"):
            validate_record(record)

    def test_future_version_refused(self, record):
        record["spec_version"] = RECORD_VERSION + 1
        with pytest.raises(SchemaError, match="newer than this reader"):
            migrate_record(record)

    def test_current_version_passes_through(self, record):
        assert migrate_record(record) == record


class TestStreamIO:
    def test_roundtrip_is_byte_stable(self, tmp_path, record):
        path = write_records(tmp_path / "c.jsonl", [record])
        first = path.read_bytes()
        write_records(path, load_records(path))
        assert path.read_bytes() == first
        assert first.decode().strip() == canonical_line(record)

    def test_iter_is_lazy(self, tmp_path, record):
        path = write_records(tmp_path / "c.jsonl", [record, record, record])
        it = iter_records(path)
        assert next(it)["spec"]["family"] == "random_forest"

    def test_blank_lines_skipped(self, tmp_path, record):
        path = tmp_path / "c.jsonl"
        path.write_text(canonical_line(record) + "\n\n" + canonical_line(record) + "\n")
        assert len(load_records(path)) == 2

    def test_error_carries_file_and_line(self, tmp_path, record):
        path = tmp_path / "c.jsonl"
        path.write_text(canonical_line(record) + "\n{not json\n")
        with pytest.raises(SchemaError, match=r"c\.jsonl:2.*not valid JSON"):
            load_records(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SchemaError, match="does not exist"):
            load_records(tmp_path / "absent.jsonl")

    def test_v1_stream_migrates_on_load(self, tmp_path, record):
        v1 = dict(record)
        del v1["spec_version"]
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(v1, sort_keys=True) + "\n")
        [loaded] = load_records(path)
        assert loaded["spec_version"] == RECORD_VERSION

    def test_conformance_mode_rejects_v1(self, tmp_path, record):
        v1 = dict(record)
        del v1["spec_version"]
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(v1, sort_keys=True) + "\n")
        with pytest.raises(SchemaError, match="spec_version"):
            load_records(path, migrate=False)

    def test_write_validates(self, tmp_path, record):
        record["result"]["status"] = "fine"
        with pytest.raises(SchemaError):
            write_records(tmp_path / "c.jsonl", [record])


class TestSpecHash:
    def test_matches_engine_content_hash(self, record):
        spec = next(Scenario(name="r", family="random_forest", sizes=(12,),
                             protocol="forest", seeds=(0,)).expand())
        assert spec_content_hash(record["spec"]) == spec.content_hash()

    def test_scenario_label_is_provenance_not_identity(self, record):
        relabeled = json.loads(json.dumps(record["spec"]))
        relabeled["scenario"] = "other-name"
        assert spec_content_hash(relabeled) == spec_content_hash(record["spec"])
