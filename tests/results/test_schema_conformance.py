"""Every record the engine emits conforms to the DESIGN.md §3 schema.

The builtin ``smoke`` campaign touches all record shapes — reconstruction,
decision protocols, shuffled delivery, fault injection, error statuses —
so validating its JSONL in strict (no-migration) mode pins the emission
side of the contract to the validator.
"""

import json

import pytest

from repro.engine import builtin_campaign
from repro.errors import SchemaError
from repro.results import RECORD_VERSION, canonical_line, load_records, validate_record


@pytest.fixture(scope="module")
def smoke_jsonl(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("smoke-results")
    result = builtin_campaign("smoke", results_dir=results_dir).run()
    return result.jsonl_path


def test_every_smoke_record_validates_strictly(smoke_jsonl):
    records = load_records(smoke_jsonl, migrate=False)
    assert len(records) == 8
    assert all(r["spec_version"] == RECORD_VERSION for r in records)


def test_engine_bytes_are_canonical(smoke_jsonl):
    lines = smoke_jsonl.read_text().splitlines()
    assert [canonical_line(json.loads(line)) for line in lines] == lines


def test_smoke_covers_both_clean_and_faulty_records(smoke_jsonl):
    records = load_records(smoke_jsonl)
    assert any(r["spec"]["faults"] is not None for r in records)
    assert any(r["spec"]["faults"] is None for r in records)
    assert any(r["result"]["exact"] is True for r in records)
    assert any(r["spec"]["shuffle_delivery"] for r in records)


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.__setitem__("surprise", 1), "unknown key"),
    (lambda d: d["spec"].__setitem__("n", "12"), "spec.n must be int"),
    (lambda d: d["result"].__setitem__("exact", 1), "result.exact must be bool"),
    (lambda d: d["result"].pop("status"), "missing key result.status"),
    (lambda d: d["result"]["faults"].__setitem__("eaten", 3), "unknown key"),
])
def test_mutated_smoke_record_rejected(smoke_jsonl, mutate, match):
    record = json.loads(smoke_jsonl.read_text().splitlines()[0])
    mutate(record)
    with pytest.raises(SchemaError, match=match):
        validate_record(record)
