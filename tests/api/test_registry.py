"""The registry core: registration, aliases, suggestions, lazy loading."""

import subprocess
import sys
import warnings

import pytest

from repro import registry
from repro.errors import ProtocolError, RegistryError, UnknownRegistryEntry
from repro.registry import Registry


def _fresh() -> Registry:
    reg = Registry("widget", label="widget", context_params=1)

    @reg.register("alpha", capabilities=("fast",), aliases=("a",),
                  deprecated_aliases=("old_alpha",))
    def _alpha(n, size: int = 3):
        """Builds an alpha."""
        return ("alpha", n, size)

    @reg.register("beta", summary="explicit summary wins")
    def _beta(n, **anything):
        """Docstring summary (unused)."""
        return ("beta", n, anything)

    return reg


class TestRegistration:
    def test_get_build_and_metadata(self):
        reg = _fresh()
        assert reg.build("alpha", 8) == ("alpha", 8, 3)
        entry = reg.entry("alpha")
        assert entry.summary == "Builds an alpha."
        assert entry.capabilities == ("fast",)
        # context param (n) is excluded from the tunable-param schema
        assert dict(entry.params) == {"size": "int = 3"}
        assert reg.entry("beta").summary == "explicit summary wins"

    def test_duplicate_name_rejected(self):
        reg = _fresh()
        with pytest.raises(RegistryError, match="duplicate"):
            reg.register("alpha")(lambda n: None)

    def test_reregistering_same_factory_is_idempotent(self):
        reg = Registry("widget")

        def factory():
            return 1

        reg.register("x")(factory)
        reg.register("x")(factory)  # module re-exec: no error
        assert len(reg) == 1

    def test_alias_collisions_rejected(self):
        reg = _fresh()
        with pytest.raises(RegistryError, match="alias"):
            reg.register("gamma", aliases=("a",))(lambda n: None)
        with pytest.raises(RegistryError, match="shadows"):
            reg.register("delta", aliases=("beta",))(lambda n: None)

    def test_canonical_name_cannot_steal_an_alias(self):
        reg = _fresh()
        with pytest.raises(RegistryError, match="already an alias"):
            reg.register("a")(lambda n: None)
        assert reg.resolve("a") == "alpha"  # alias still intact

    def test_rejected_registration_leaves_no_partial_state(self):
        reg = _fresh()
        with pytest.raises(RegistryError):
            reg.register("gamma", aliases=("fresh", "a"))(lambda n: None)
        assert "gamma" not in reg       # entry not half-installed
        assert "fresh" not in reg       # earlier alias rolled back too
        assert list(reg) == ["alpha", "beta"]

    def test_membership_len_iter(self):
        reg = _fresh()
        assert "alpha" in reg and "a" in reg and "nope" not in reg
        assert len(reg) == 2
        assert list(reg) == ["alpha", "beta"]


class TestAliases:
    def test_plain_alias_resolves_silently(self):
        reg = _fresh()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reg.resolve("a") == "alpha"
            assert reg.get("a") is reg.get("alpha")

    def test_deprecated_alias_warns_once_and_resolves(self):
        reg = _fresh()
        with pytest.warns(DeprecationWarning, match="'old_alpha' is deprecated"):
            assert reg.resolve("old_alpha") == "alpha"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reg.resolve("old_alpha") == "alpha"  # second use: silent


class TestUnknown:
    def test_suggestion_and_payload(self):
        reg = _fresh()
        with pytest.raises(UnknownRegistryEntry, match="did you mean 'alpha'") as exc:
            reg.get("alpa")
        assert exc.value.kind == "widget"
        assert exc.value.name == "alpa"
        assert exc.value.suggestion == "alpha"
        assert exc.value.known == ("alpha", "beta")

    def test_no_close_match_lists_known(self):
        reg = _fresh()
        with pytest.raises(UnknownRegistryEntry) as exc:
            reg.get("zzzzzz")
        assert exc.value.suggestion is None
        assert "did you mean" not in str(exc.value)
        assert "known: alpha, beta" in str(exc.value)

    def test_is_both_protocol_error_and_key_error(self):
        reg = _fresh()
        with pytest.raises(ProtocolError):
            reg.get("nope")
        with pytest.raises(KeyError):
            reg.get("nope")


class TestParamValidation:
    def test_unknown_param_rejected_with_accepted_list(self):
        reg = _fresh()
        with pytest.raises(RegistryError, match="unknown parameter.*'sise'.*size"):
            reg.validate_params("alpha", {"sise": 4})

    def test_var_keyword_factory_accepts_anything(self):
        reg = _fresh()
        reg.validate_params("beta", {"whatever": 1})  # **anything: no error


class TestLazyLoading:
    def test_modules_import_on_first_use_only(self, tmp_path, monkeypatch):
        probe = tmp_path / "lazy_probe_mod.py"
        probe.write_text(
            "import builtins\n"
            "builtins._lazy_probe_count = getattr(builtins, '_lazy_probe_count', 0) + 1\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        import builtins
        monkeypatch.delattr(builtins, "_lazy_probe_count", raising=False)

        reg = Registry("widget", modules=("lazy_probe_mod",))
        assert not hasattr(builtins, "_lazy_probe_count")  # nothing imported yet
        reg.names()
        assert builtins._lazy_probe_count == 1
        reg.names()
        assert builtins._lazy_probe_count == 1  # loaded once
        sys.modules.pop("lazy_probe_mod", None)
        monkeypatch.delattr(builtins, "_lazy_probe_count", raising=False)

    def test_import_repro_registry_stays_cheap(self):
        """`import repro.registry` must not drag in protocol/analysis modules."""
        code = (
            "import sys, repro.registry\n"
            "heavy = [m for m in ('repro.protocols.degeneracy_reconstruction',"
            " 'repro.analysis.experiments', 'repro.sketching.connectivity')"
            " if m in sys.modules]\n"
            "assert not heavy, heavy\n"
            "repro.registry.PROTOCOL.names()\n"
            "assert 'repro.protocols.degeneracy_reconstruction' in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


class TestGlobalRegistries:
    def test_catalog_covers_all_kinds_sorted(self):
        catalog = registry.catalog()
        assert list(catalog) == ["benchmark", "campaign", "experiment",
                                 "graph_family", "protocol", "span"]
        for entries in catalog.values():
            assert list(entries) == sorted(entries)
            for meta in entries.values():
                assert set(meta) == {"aliases", "capabilities", "deprecated_aliases",
                                     "kind", "module", "params", "summary"}

    def test_registrations_live_in_their_own_modules(self):
        """Protocols/families register where they are implemented."""
        assert registry.PROTOCOL.entry("degeneracy").module == \
            "repro.protocols.degeneracy_reconstruction"
        assert registry.PROTOCOL.entry("agm_connectivity").module == \
            "repro.sketching.connectivity"
        assert registry.GRAPH_FAMILY.entry("random_planar").module == \
            "repro.graphs.generators"
        assert registry.EXPERIMENT.entry("EXP-T5").module == \
            "repro.analysis.experiments"
        assert registry.CAMPAIGN.entry("smoke").module == "repro.engine.campaign"

    def test_capability_metadata(self):
        deg = registry.PROTOCOL.entry("degeneracy")
        assert "reconstruction" in deg.capabilities
        agm = registry.PROTOCOL.entry("agm_connectivity")
        assert {"decision", "sketching", "randomized"} <= set(agm.capabilities)

    def test_registry_for_unknown_kind(self):
        with pytest.raises(RegistryError, match="unknown registry kind"):
            registry.registry_for("flavour")

    def test_scenario_unknown_names_suggest(self):
        from repro.engine import Scenario

        with pytest.raises(UnknownRegistryEntry, match="did you mean 'degeneracy'"):
            Scenario(name="s", family="path", sizes=(8,), protocol="degenracy")
        with pytest.raises(UnknownRegistryEntry, match="did you mean 'random_planar'"):
            Scenario(name="s", family="random_plana", sizes=(8,), protocol="forest")

    def test_scenario_canonicalizes_aliases(self):
        from repro.engine import Scenario

        spec = next(Scenario(name="s", family="gnp", sizes=(8,),
                             protocol="full_adjacency").expand())
        assert spec.family == "erdos_renyi"
