"""The api-surface gate: the live surface must match the frozen fixture.

``repro.__all__`` and ``repro.registry.catalog()`` are diffed against
``tests/api/fixtures/api_surface.json``.  An accidental export, a renamed
registry entry, a changed parameter default — anything that moves the
public surface — fails here until the fixture is regenerated on purpose::

    PYTHONPATH=src python tools/update_api_surface.py
"""

import importlib.util
import json
import pathlib

HERE = pathlib.Path(__file__).resolve().parent
FIXTURE = HERE / "fixtures" / "api_surface.json"
TOOL = HERE.parents[1] / "tools" / "update_api_surface.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("update_api_surface", TOOL)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_fixture_exists_and_is_canonical_json():
    surface = json.loads(FIXTURE.read_text())
    assert set(surface) == {"catalog", "public_api"}
    # the fixture itself must be in the tool's canonical rendering
    assert FIXTURE.read_text() == json.dumps(surface, indent=2, sort_keys=True) + "\n"


def test_public_api_snapshot():
    """repro.__all__ is exactly the documented public API, in order."""
    import repro

    frozen = json.loads(FIXTURE.read_text())["public_api"]
    assert list(repro.__all__) == frozen
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_registry_catalog_snapshot():
    """Every registered name + its metadata matches the frozen catalog."""
    import repro.registry

    frozen = json.loads(FIXTURE.read_text())["catalog"]
    live = repro.registry.catalog()
    assert live == frozen, (
        "registry catalog drifted; regenerate with "
        "`PYTHONPATH=src python tools/update_api_surface.py` if intended"
    )


def test_update_tool_check_mode_agrees():
    tool = _load_tool()
    assert tool.render(tool.build_surface()) == FIXTURE.read_text()
    assert tool.main(["--check"]) == 0
