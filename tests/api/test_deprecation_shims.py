"""The deprecated dict-shaped registry views keep working, warning once."""

import importlib
import warnings

import pytest

from repro import registry
from repro.registry import compat


@pytest.fixture(autouse=True)
def rearm_warnings():
    """Re-arm the warn-once latches so each test observes a fresh first touch."""
    compat._reset_deprecation_warnings()
    yield
    compat._reset_deprecation_warnings()


def _silently(view_op):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return view_op()


def _import_silently(module: str, name: str):
    """Fetch a deprecated view without tripping -W error::DeprecationWarning."""
    return _silently(lambda: getattr(importlib.import_module(module), name))


class TestImportWarns:
    def test_scenario_graph_families(self):
        with pytest.warns(DeprecationWarning, match="GRAPH_FAMILIES is deprecated"):
            from repro.engine.scenario import GRAPH_FAMILIES  # noqa: F401

    def test_scenario_protocol_builders(self):
        with pytest.warns(DeprecationWarning, match="PROTOCOL_BUILDERS is deprecated"):
            from repro.engine.scenario import PROTOCOL_BUILDERS  # noqa: F401

    def test_engine_package_reexports(self):
        with pytest.warns(DeprecationWarning, match="GRAPH_FAMILIES is deprecated"):
            from repro.engine import GRAPH_FAMILIES  # noqa: F401

    def test_campaign_builtins(self):
        with pytest.warns(DeprecationWarning, match="BUILTIN_CAMPAIGNS is deprecated"):
            from repro.engine.campaign import BUILTIN_CAMPAIGNS  # noqa: F401

    def test_experiments(self):
        with pytest.warns(DeprecationWarning, match="EXPERIMENTS is deprecated"):
            from repro.analysis import EXPERIMENTS  # noqa: F401


class TestWarnsExactlyOnce:
    def test_repeated_use_warns_once(self):
        from repro.engine import scenario

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            view = scenario.PROTOCOL_BUILDERS          # first touch: warns
            _ = view["forest"]                         # already warned
            _ = sorted(view)                           # already warned
            _ = scenario.PROTOCOL_BUILDERS["degeneracy"]
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1


class TestOldNamesResolve:
    def test_protocol_builders_resolve_to_registry_factories(self):
        PROTOCOL_BUILDERS = _import_silently("repro.engine.scenario", "PROTOCOL_BUILDERS")

        assert _silently(lambda: set(PROTOCOL_BUILDERS)) == \
            set(registry.PROTOCOL.names())
        for name in registry.PROTOCOL.names():
            assert _silently(lambda: PROTOCOL_BUILDERS[name]) is \
                registry.PROTOCOL.get(name)
        protocol = _silently(lambda: PROTOCOL_BUILDERS["forest"])(8)
        assert hasattr(protocol, "local") and hasattr(protocol, "global_")

    def test_graph_families_build_graphs(self):
        GRAPH_FAMILIES = _import_silently("repro.engine", "GRAPH_FAMILIES")

        g = _silently(lambda: GRAPH_FAMILIES["random_planar"])(16, 1)
        assert g.n == 16

    def test_builtin_campaigns_and_experiments(self):
        EXPERIMENTS = _import_silently("repro.analysis", "EXPERIMENTS")
        BUILTIN_CAMPAIGNS = _import_silently("repro.engine", "BUILTIN_CAMPAIGNS")

        assert _silently(lambda: set(BUILTIN_CAMPAIGNS)) == \
            set(registry.CAMPAIGN.names())
        assert _silently(lambda: set(EXPERIMENTS)) == \
            set(registry.EXPERIMENT.names())
        title, headers, rows = _silently(lambda: EXPERIMENTS["EXP-DEGEN"])()
        assert headers and rows

    def test_missing_key_is_keyerror_with_suggestion(self):
        PROTOCOL_BUILDERS = _import_silently("repro.engine.scenario", "PROTOCOL_BUILDERS")

        with pytest.raises(KeyError, match="did you mean 'degeneracy'"):
            _silently(lambda: PROTOCOL_BUILDERS["degenracy"])


class TestReadOnly:
    def test_views_reject_mutation(self):
        GRAPH_FAMILIES = _import_silently("repro.engine.scenario", "GRAPH_FAMILIES")
        PROTOCOL_BUILDERS = _import_silently("repro.engine.scenario", "PROTOCOL_BUILDERS")

        for view in (GRAPH_FAMILIES, PROTOCOL_BUILDERS):
            with pytest.raises(TypeError):
                view["sneaky"] = lambda n, seed: None
            with pytest.raises((TypeError, AttributeError)):
                view.pop("forest")

    def test_unknown_module_attribute_still_raises(self):
        import repro.analysis
        import repro.engine
        import repro.engine.scenario

        for mod in (repro.engine, repro.engine.scenario, repro.analysis):
            with pytest.raises(AttributeError):
                mod.DEFINITELY_NOT_AN_ATTRIBUTE
