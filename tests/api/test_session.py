"""repro.api.Session: the fluent chain and its record-identity contract."""

import json

import pytest

from repro import Campaign, Scenario
from repro.api import Session, SessionAggregate, SessionRun
from repro.engine.faults import FaultSpec
from repro.errors import (
    BaselineError,
    ProtocolError,
    RegistryError,
    UnknownRegistryEntry,
)


def _strip(records):
    """Deterministic JSONL payloads (timing/cached removed)."""
    out = []
    for r in records:
        d = r.to_json_dict()
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


def _base() -> Session:
    return (Session("t")
            .graphs("random_forest", n=[12, 16], seeds=(0, 1))
            .protocol("forest"))


class TestChain:
    def test_run_records_and_summary(self):
        run = _base().run()
        assert isinstance(run, SessionRun)
        assert len(run.records) == 4
        assert all(r.status == "ok" for r in run.records)
        summary = run.summary()
        assert summary["runs"] == 4 and summary["exact"] == 4

    def test_aggregate_and_table(self):
        agg = _base().run().aggregate(by=["n"])
        assert isinstance(agg, SessionAggregate)
        assert len(agg) == 2
        assert [g["group"]["n"] for g in agg] == [12, 16]
        table = agg.table()
        assert "max bits (mean)" in table and "12" in table

    def test_freeze_then_gate_roundtrip(self, tmp_path):
        session = _base()
        session.run().freeze("t-base", baselines_dir=tmp_path)
        verdict = (session.run()
                   .aggregate(by=["n", "seed"])
                   .gate(baseline="t-base", baselines_dir=tmp_path))
        assert verdict.passed and verdict.runs_checked == 4

    def test_gate_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="does not exist"):
            _base().run().gate(baseline="nothing-here", baselines_dir=tmp_path)

    def test_gate_bare_name_never_reads_cwd(self, tmp_path, monkeypatch):
        """A stray cwd file must not shadow <baselines_dir>/<name>.json."""
        monkeypatch.chdir(tmp_path)
        (tmp_path / "smoke").write_text("not a baseline")
        with pytest.raises(BaselineError, match="expected"):
            _base().run().gate(baseline="smoke", baselines_dir=tmp_path / "b")

    def test_gate_accepts_explicit_path(self, tmp_path):
        session = _base()
        path = session.run().freeze("frozen", baselines_dir=tmp_path)
        assert session.run().gate(baseline=path).passed

    def test_deterministic_across_runs_and_executors(self):
        serial = _base().run()
        threaded = _base().executor("thread", jobs=2).run()
        assert _strip(serial.records) == _strip(threaded.records)


class TestRecordIdentity:
    """The acceptance contract: fluent == hand-wired, hash for hash."""

    def test_matches_hand_wired_campaign(self):
        run = (Session("fluent")
               .graphs("random_k_degenerate", n=[16, 24], seeds=range(3), k=2)
               .protocol("degeneracy", k=2)
               .faults(drop=0.01, seed=7)
               .shuffle()
               .run())
        hand = Campaign(
            [Scenario(name="hand", family="random_k_degenerate", sizes=(16, 24),
                      protocol="degeneracy", seeds=(0, 1, 2),
                      family_params={"k": 2}, protocol_params={"k": 2},
                      faults=FaultSpec(drop=0.01, seed=7),
                      shuffle_delivery=True)],
            name="hand", results_dir=None,
        ).run()
        fluent = {r.spec.content_hash(): r.output_digest for r in run.records}
        manual = {r.spec.content_hash(): r.output_digest for r in hand.records}
        assert fluent == manual

    def test_build_exposes_the_equivalent_campaign(self):
        campaign = _base().build()
        assert isinstance(campaign, Campaign)
        assert [s.family for s in campaign.scenarios] == ["random_forest"]
        assert campaign.results_dir is None  # no disk writes unless persisted

    def test_persist_streams_jsonl(self, tmp_path):
        run = _base().persist(tmp_path).run()
        assert run.result.jsonl_path is not None
        assert run.result.jsonl_path.exists()
        assert len(run.result.jsonl_path.read_text().splitlines()) == 4


class TestBuilderSemantics:
    def test_copy_on_write_prefixes_are_reusable(self):
        base = Session("b").protocol("forest")
        a = base.graphs("random_forest", n=12)
        b = base.graphs("random_tree", n=12)
        assert [s.family for s in a.scenarios()] == ["random_forest"]
        assert [s.family for s in b.scenarios()] == ["random_tree"]
        with pytest.raises(ProtocolError, match="no graph blocks"):
            base.scenarios()

    def test_multiple_graph_blocks(self):
        run = (Session("multi")
               .graphs("random_forest", n=12)
               .graphs("random_tree", n=[12, 16])
               .protocol("forest")
               .run())
        assert len(run.records) == 3
        assert {r.spec.family for r in run.records} == {"random_forest", "random_tree"}

    def test_referee_options_reach_the_specs(self):
        scenarios = (Session("opts")
                     .graphs("random_forest", n=12)
                     .protocol("forest")
                     .budget(64)
                     .shuffle()
                     .faults(drop=0.2, flip=0.1, seed=3)
                     .scenarios())
        (s,) = scenarios
        assert s.budget_bits == 64
        assert s.shuffle_delivery is True
        assert s.faults == FaultSpec(drop=0.2, flip=0.1, seed=3)

    def test_scalar_n_and_seeds(self):
        (s,) = Session("s").graphs("path", n=8, seeds=4).protocol("forest").scenarios()
        assert s.sizes == (8,) and s.seeds == (4,)

    def test_family_alias_resolves(self):
        (s,) = (Session("a").graphs("gnp", n=8, p=0.2)
                .protocol("full_adjacency").scenarios())
        assert s.family == "erdos_renyi"


class TestFailFast:
    def test_unknown_family_suggests(self):
        with pytest.raises(UnknownRegistryEntry, match="did you mean 'random_planar'"):
            Session().graphs("random_plana", n=8)

    def test_unknown_protocol_suggests(self):
        with pytest.raises(UnknownRegistryEntry, match="did you mean 'degeneracy'"):
            Session().protocol("degenracy")

    def test_unknown_params_rejected_at_chain_time(self):
        with pytest.raises(RegistryError, match="unknown parameter"):
            Session().graphs("random_planar", n=8, keep_probb=0.5)
        with pytest.raises(RegistryError, match="unknown parameter"):
            Session().protocol("degeneracy", kk=3)

    def test_unknown_executor(self):
        with pytest.raises(ProtocolError, match="unknown executor"):
            Session().executor("gpu")

    def test_missing_protocol(self):
        with pytest.raises(ProtocolError, match="no protocol"):
            Session().graphs("path", n=8).run()

    def test_empty_grid(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            Session().graphs("path", n=[])

    def test_string_sizes_rejected(self):
        with pytest.raises(ProtocolError, match="string"):
            Session().graphs("path", n="64")   # would silently mean (6, 4)
        with pytest.raises(ProtocolError, match="string"):
            Session().graphs("path", n=8, seeds="12")


class TestShardAndResume:
    def test_sharded_session_merges_to_identical_records(self, tmp_path):
        mono = _base().persist(tmp_path / "mono", use_cache=False).run()
        sharded = (_base().persist(tmp_path / "sh", use_cache=False)
                   .shard(3).run())
        assert _strip(sharded.records) == _strip(mono.records)
        assert sharded.result.jsonl_path.name == "t.jsonl"

    def test_single_shard_worker_covers_only_its_slice(self, tmp_path):
        full = _base().persist(tmp_path / "a", use_cache=False).shard(2).run()
        worker = (_base().persist(tmp_path / "b", use_cache=False)
                  .shard(2, index=0).run())
        assert 0 < len(worker.records) < len(full.records)
        assert worker.result.shard_index == 0
        assert worker.result.jsonl_path.name == "t.shard-0-of-2.jsonl"

    def test_resume_replays_a_complete_session(self, tmp_path):
        session = _base().persist(tmp_path, use_cache=False)
        cold = session.run()
        warm = session.resume().run()
        assert warm.result.resumed == len(cold.records)
        assert warm.result.cache_misses == 0
        assert _strip(warm.records) == _strip(cold.records)

    def test_shard_validation_fails_at_chain_time(self):
        with pytest.raises(ProtocolError, match="shards must be >= 1"):
            Session().shard(0)
        with pytest.raises(ProtocolError, match="out of range"):
            Session().shard(2, index=2)

    def test_shard_without_persist_fails_at_run_time(self):
        with pytest.raises(ProtocolError, match="results_dir"):
            _base().shard(2).run()

    def test_copy_on_write_shard_does_not_leak(self, tmp_path):
        base = _base().persist(tmp_path, use_cache=False)
        sharded = base.shard(2)
        assert base._shards is None  # the prefix is untouched
        assert sharded._shards == 2
        resumed = sharded.resume()
        assert not sharded._resume and resumed._resume
