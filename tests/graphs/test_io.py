"""Tests for graph6 serialization, cross-validated against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import LabeledGraph
from repro.graphs.families import petersen
from repro.graphs.generators import complete_graph, erdos_renyi, path_graph
from repro.graphs.io import from_graph6, to_graph6


class TestRoundTrip:
    @pytest.mark.parametrize("gen", [
        lambda: LabeledGraph(0),
        lambda: LabeledGraph(1),
        lambda: LabeledGraph(5),
        lambda: path_graph(7),
        lambda: complete_graph(6),
        lambda: petersen(),
        lambda: erdos_renyi(30, 0.3, seed=1),
        lambda: erdos_renyi(63, 0.1, seed=2),   # n = 62 boundary + 1
        lambda: erdos_renyi(64, 0.05, seed=3),  # long-form header
    ])
    def test_roundtrip(self, gen):
        g = gen()
        assert from_graph6(to_graph6(g)) == g

    def test_known_encodings(self):
        # from the format spec: K4 minus an edge variants...
        assert to_graph6(complete_graph(2)) == "A_"
        assert to_graph6(LabeledGraph(2)) == "A?"
        assert to_graph6(path_graph(3)) in ("Bg", "BW", "Bo")  # depends on edge layout

    def test_matches_networkx_writer(self):
        for seed in range(5):
            g = erdos_renyi(12, 0.4, seed=seed)
            nxg = nx.relabel_nodes(g.to_networkx(), {v: v - 1 for v in g.vertices()})
            expected = nx.to_graph6_bytes(nxg, header=False).decode().strip()
            assert to_graph6(g) == expected

    def test_reads_networkx_output(self):
        g = erdos_renyi(20, 0.3, seed=9)
        nxg = nx.relabel_nodes(g.to_networkx(), {v: v - 1 for v in g.vertices()})
        text = nx.to_graph6_bytes(nxg, header=True).decode().strip()
        assert from_graph6(text) == g  # header stripped automatically


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(GraphError):
            from_graph6("")

    def test_wrong_body_length(self):
        with pytest.raises(GraphError):
            from_graph6("D")  # n=5 needs 2 body bytes, got 0

    def test_invalid_byte(self):
        with pytest.raises(GraphError):
            from_graph6("B" + chr(20))

    def test_negative_n(self):
        from repro.graphs.io import _encode_n

        with pytest.raises(GraphError):
            _encode_n(-1)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(0, 40), p=st.floats(0, 1), seed=st.integers(0, 999))
def test_graph6_roundtrip_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed) if n else LabeledGraph(0)
    assert from_graph6(to_graph6(g)) == g
