"""Tests for graph generators: structural invariants of each family."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import degeneracy, is_bipartite, is_connected
from repro.graphs.generators import (
    apollonian,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    fat_tree,
    grid_2d,
    hypercube,
    k_tree,
    partial_k_tree,
    path_graph,
    random_bipartite,
    random_forest,
    random_k_degenerate,
    random_planar,
    random_tree,
    star_graph,
    torus_2d,
)
from repro.graphs.properties import connected_components, girth


class TestDeterministicTopologies:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4 and is_connected(g)

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(1) == 5 and g.m == 5

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15

    def test_complete_bipartite(self):
        g = complete_bipartite(2, 3)
        assert g.m == 6 and is_bipartite(g)

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4
        assert is_connected(g) and is_bipartite(g)
        assert degeneracy(g) == 2

    def test_grid_rejects_zero(self):
        with pytest.raises(GraphError):
            grid_2d(0, 3)

    def test_torus_regular(self):
        g = torus_2d(3, 4)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert is_connected(g)

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            torus_2d(2, 4)

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16 and g.m == 32
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert is_bipartite(g)

    def test_hypercube_dim0(self):
        assert hypercube(0).n == 1

    def test_fat_tree_structure(self):
        k = 4
        g = fat_tree(k)
        assert g.n == (k // 2) ** 2 + k * k  # 4 core + 16 pod switches
        assert is_connected(g)
        # core and aggregation switches have fabric degree k; edge switches
        # keep k/2 fabric ports (their other k/2 ports face hosts, omitted)
        degs = sorted(g.degrees())
        assert set(degs) == {k // 2, k}
        assert degs.count(k // 2) == k * (k // 2)
        # fat-trees are sparse: reconstructible by the paper's protocol
        assert degeneracy(g) <= k

    def test_fat_tree_rejects_odd(self):
        with pytest.raises(GraphError):
            fat_tree(3)


class TestRandomTreesForests:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_tree_is_tree(self, n):
        g = random_tree(n, seed=n)
        assert g.m == n - 1 and is_connected(g)

    def test_tree_deterministic_given_seed(self):
        assert random_tree(20, seed=5) == random_tree(20, seed=5)

    def test_forest_component_count(self):
        g = random_forest(20, 4, seed=9)
        assert g.m == 20 - 4
        assert len(connected_components(g)) == 4
        assert degeneracy(g) <= 1

    def test_forest_bad_args(self):
        with pytest.raises(GraphError):
            random_forest(5, 6)
        with pytest.raises(GraphError):
            random_forest(5, 0)

    def test_prufer_uniformity_smoke(self):
        # all 3 labelled trees on 3 vertices appear in 200 draws
        seen = {random_tree(3, seed=s).edge_set() for s in range(200)}
        assert len(seen) == 3


class TestErdosRenyi:
    def test_p_zero_and_one(self):
        assert erdos_renyi(6, 0.0, seed=1).m == 0
        assert erdos_renyi(6, 1.0, seed=1).m == 15

    def test_p_out_of_range(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 1.5)

    def test_bipartite_parts_respected(self):
        g = random_bipartite(4, 5, 0.5, seed=3)
        for u, v in g.edges():
            assert (u <= 4) != (v <= 4)


class TestDegeneracyFamilies:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_k_tree_degeneracy(self, k):
        g = k_tree(k + 8, k, seed=k)
        assert degeneracy(g) == k
        assert g.m == (k * (k + 1)) // 2 + (g.n - k - 1) * k

    def test_k_tree_too_small(self):
        with pytest.raises(GraphError):
            k_tree(2, 3)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_partial_k_tree_bound(self, k):
        g = partial_k_tree(20, k, keep_prob=0.6, seed=k)
        assert degeneracy(g) <= k

    def test_random_k_degenerate_negative_k(self):
        with pytest.raises(GraphError):
            random_k_degenerate(5, -1)

    def test_random_k_degenerate_exact_edge_count(self):
        g = random_k_degenerate(10, 2, seed=4, exact=True)
        # first vertex 0 edges, second 1, rest 2 each
        assert g.m == 0 + 1 + 8 * 2

    def test_apollonian_planar(self):
        g = apollonian(25, seed=2)
        ok, _ = nx.check_planarity(g.to_networkx())
        assert ok
        assert degeneracy(g) == 3
        assert g.m == 3 + 3 * (g.n - 3)

    def test_apollonian_too_small(self):
        with pytest.raises(GraphError):
            apollonian(2)

    def test_random_planar_is_planar(self):
        g = random_planar(30, keep_prob=0.7, seed=11)
        ok, _ = nx.check_planarity(g.to_networkx())
        assert ok
        assert degeneracy(g) <= 5

    def test_random_planar_tiny(self):
        assert random_planar(2, seed=1).n == 2


class TestDisjointUnion:
    def test_shifts_ids(self):
        g = disjoint_union(path_graph(2), cycle_graph(3))
        assert g.n == 5
        assert g.edge_set() == frozenset({(1, 2), (3, 4), (4, 5), (3, 5)})

    def test_empty_union(self):
        assert disjoint_union().n == 0


@settings(max_examples=25)
@given(n=st.integers(3, 30), seed=st.integers(0, 10_000))
def test_apollonian_girth_3(n, seed):
    """Property: Apollonian networks are triangulations — girth exactly 3."""
    assert girth(apollonian(n, seed=seed)) == 3


@settings(max_examples=25)
@given(
    a=st.integers(1, 8),
    b=st.integers(1, 8),
    p=st.floats(0, 1),
    seed=st.integers(0, 999),
)
def test_random_bipartite_is_bipartite(a, b, p, seed):
    assert is_bipartite(random_bipartite(a, b, p, seed=seed))
