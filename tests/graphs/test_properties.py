"""Tests for graph predicates, cross-validated against networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    LabeledGraph,
    bipartition,
    connected_components,
    diameter,
    eccentricities,
    girth,
    has_square,
    has_triangle,
    is_bipartite,
    is_connected,
)
from repro.graphs.families import bull, kite, paw, petersen
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    random_square_free,
    random_tree,
    star_graph,
)


class TestTriangle:
    def test_known_positive(self):
        assert has_triangle(complete_graph(3))
        assert has_triangle(paw())
        assert has_triangle(bull())
        assert has_triangle(kite())

    def test_known_negative(self):
        assert not has_triangle(path_graph(5))
        assert not has_triangle(cycle_graph(4))
        assert not has_triangle(complete_bipartite(3, 3))
        assert not has_triangle(petersen())

    @settings(max_examples=40)
    @given(n=st.integers(2, 12), p=st.floats(0, 1), seed=st.integers(0, 999))
    def test_matches_networkx(self, n, p, seed):
        g = erdos_renyi(n, p, seed=seed)
        expected = any(nx.triangles(g.to_networkx()).values())
        assert has_triangle(g) == expected


class TestSquare:
    def test_known_positive(self):
        assert has_square(cycle_graph(4))
        assert has_square(complete_bipartite(2, 2))
        assert has_square(complete_graph(4))
        assert has_square(kite())

    def test_known_negative(self):
        assert not has_square(complete_graph(3))
        assert not has_square(path_graph(6))
        assert not has_square(star_graph(8))
        assert not has_square(petersen())  # girth 5

    def test_cycle5_has_no_square(self):
        assert not has_square(cycle_graph(5))

    def test_two_common_neighbors_is_square(self):
        g = LabeledGraph(4, [(1, 2), (1, 3), (4, 2), (4, 3)])
        assert has_square(g)

    @settings(max_examples=30)
    @given(n=st.integers(4, 10), p=st.floats(0, 1), seed=st.integers(0, 999))
    def test_matches_cycle_search(self, n, p, seed):
        g = erdos_renyi(n, p, seed=seed)
        nxg = g.to_networkx()
        # C4 subgraph exists iff some pair of vertices has >= 2 common neighbours
        expected = any(
            len(set(nxg[u]) & set(nxg[v])) >= 2
            for u in nxg
            for v in nxg
            if u < v
        )
        assert has_square(g) == expected


class TestGirth:
    def test_forest_infinite(self):
        assert girth(random_tree(10, seed=1)) == math.inf

    @pytest.mark.parametrize("n", [3, 4, 5, 8])
    def test_cycles(self, n):
        assert girth(cycle_graph(n)) == n

    def test_petersen_is_5(self):
        assert girth(petersen()) == 5

    def test_kite_is_3(self):
        assert girth(kite()) == 3


class TestDiameter:
    def test_trivial(self):
        assert diameter(LabeledGraph(0)) == 0
        assert diameter(LabeledGraph(1)) == 0

    def test_disconnected_is_inf(self):
        assert diameter(LabeledGraph(2)) == math.inf

    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_petersen_is_2(self):
        assert diameter(petersen()) == 2

    @settings(max_examples=25)
    @given(n=st.integers(2, 12), p=st.floats(0.2, 1), seed=st.integers(0, 999))
    def test_matches_networkx(self, n, p, seed):
        g = erdos_renyi(n, p, seed=seed)
        nxg = g.to_networkx()
        if nx.is_connected(nxg):
            assert diameter(g) == nx.diameter(nxg)
        else:
            assert diameter(g) == math.inf

    def test_eccentricities_connected(self):
        g = path_graph(4)
        assert eccentricities(g) == {1: 3, 2: 2, 3: 2, 4: 3}


class TestConnectivity:
    def test_empty_and_single(self):
        assert is_connected(LabeledGraph(0))
        assert is_connected(LabeledGraph(1))

    def test_two_isolated(self):
        assert not is_connected(LabeledGraph(2))

    def test_components(self):
        g = LabeledGraph(5, [(1, 2), (4, 5)])
        assert connected_components(g) == [frozenset({1, 2}), frozenset({3}), frozenset({4, 5})]

    @settings(max_examples=40)
    @given(n=st.integers(1, 14), p=st.floats(0, 1), seed=st.integers(0, 999))
    def test_matches_networkx(self, n, p, seed):
        g = erdos_renyi(n, p, seed=seed)
        assert is_connected(g) == nx.is_connected(g.to_networkx())


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(5))

    def test_bipartition_is_proper(self):
        g = complete_bipartite(3, 4)
        a, b = bipartition(g)
        assert a | b == set(g.vertices()) and not a & b
        for u, v in g.edges():
            assert (u in a) != (v in a)

    def test_isolated_vertices_covered(self):
        g = LabeledGraph(3, [(1, 2)])
        a, b = bipartition(g)
        assert a | b == {1, 2, 3}

    @settings(max_examples=40)
    @given(n=st.integers(1, 12), p=st.floats(0, 1), seed=st.integers(0, 999))
    def test_matches_networkx(self, n, p, seed):
        g = erdos_renyi(n, p, seed=seed)
        assert is_bipartite(g) == nx.is_bipartite(g.to_networkx())


@settings(max_examples=20)
@given(n=st.integers(4, 14), p=st.floats(0.1, 0.6), seed=st.integers(0, 999))
def test_square_free_generator_output_is_square_free(n, p, seed):
    """Property: the Theorem 1 family generator never emits a C4."""
    g = random_square_free(n, p, seed=seed)
    assert not has_square(g)
