"""Unit tests for the LabeledGraph type."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidVertexError
from repro.graphs import LabeledGraph


class TestConstruction:
    def test_empty(self):
        g = LabeledGraph(0)
        assert g.n == 0 and g.m == 0
        assert list(g.vertices()) == []

    def test_edges_in_constructor(self):
        g = LabeledGraph(3, [(1, 2), (2, 3)])
        assert g.m == 2
        assert g.has_edge(1, 2) and g.has_edge(3, 2)
        assert not g.has_edge(1, 3)

    def test_duplicate_edges_ignored(self):
        g = LabeledGraph(2, [(1, 2), (2, 1), (1, 2)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidVertexError):
            LabeledGraph(2, [(1, 1)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(InvalidVertexError):
            LabeledGraph(2, [(1, 3)])
        with pytest.raises(InvalidVertexError):
            LabeledGraph(2, [(0, 1)])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidVertexError):
            LabeledGraph(-1)


class TestAccessors:
    def setup_method(self):
        self.g = LabeledGraph(4, [(1, 2), (1, 3), (2, 3), (3, 4)])

    def test_neighbors(self):
        assert self.g.neighbors(3) == {1, 2, 4}
        assert self.g.neighbors(4) == {3}

    def test_degree_and_degrees(self):
        assert self.g.degree(3) == 3
        assert self.g.degrees() == [2, 2, 3, 1]

    def test_edges_sorted(self):
        assert list(self.g.edges()) == [(1, 2), (1, 3), (2, 3), (3, 4)]

    def test_edge_set(self):
        assert self.g.edge_set() == frozenset({(1, 2), (1, 3), (2, 3), (3, 4)})

    def test_neighborhood_mask(self):
        assert self.g.neighborhood_mask(4) == 1 << 3
        assert self.g.neighborhood_mask(3) == (1 << 1) | (1 << 2) | (1 << 4)

    def test_remove_edge(self):
        self.g.remove_edge(3, 4)
        assert self.g.m == 3
        assert not self.g.has_edge(3, 4)

    def test_remove_absent_edge_raises(self):
        with pytest.raises(InvalidVertexError):
            self.g.remove_edge(1, 4)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = LabeledGraph(3, [(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.m == 1 and h.m == 2

    def test_extended_keeps_ids(self):
        g = LabeledGraph(3, [(1, 2)])
        h = g.extended(2, [(4, 5), (3, 4)])
        assert h.n == 5
        assert h.has_edge(1, 2) and h.has_edge(4, 5) and h.has_edge(3, 4)
        assert g.n == 3  # original untouched

    def test_extended_rejects_negative(self):
        with pytest.raises(InvalidVertexError):
            LabeledGraph(1).extended(-1)

    def test_induced_subgraph_relabels(self):
        g = LabeledGraph(5, [(1, 3), (3, 5), (2, 4)])
        h = g.induced_subgraph([1, 3, 5])
        assert h.n == 3
        assert h.edge_set() == frozenset({(1, 2), (2, 3)})

    def test_induced_edges_keeps_ids(self):
        g = LabeledGraph(5, [(1, 3), (3, 5), (2, 4)])
        assert g.induced_edges([1, 3, 5]) == [(1, 3), (3, 5)]

    def test_complement(self):
        g = LabeledGraph(3, [(1, 2)])
        c = g.complement()
        assert c.edge_set() == frozenset({(1, 3), (2, 3)})

    def test_complement_involution(self):
        g = LabeledGraph(4, [(1, 2), (3, 4), (1, 4)])
        assert g.complement().complement() == g

    def test_relabeled(self):
        g = LabeledGraph(3, [(1, 2)])
        h = g.relabeled({1: 3, 2: 1, 3: 2})
        assert h.edge_set() == frozenset({(1, 3)})

    def test_relabeled_rejects_non_permutation(self):
        g = LabeledGraph(2, [(1, 2)])
        with pytest.raises(InvalidVertexError):
            g.relabeled({1: 1, 2: 1})


class TestConversions:
    def test_networkx_roundtrip(self):
        g = LabeledGraph(4, [(1, 2), (2, 3), (3, 4), (4, 1)])
        assert LabeledGraph.from_networkx(g.to_networkx()) == g

    def test_from_networkx_relabels(self):
        nxg = nx.Graph([("b", "c"), ("a", "b")])
        g = LabeledGraph.from_networkx(nxg)
        assert g.n == 3
        assert g.edge_set() == frozenset({(1, 2), (2, 3)})

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.Graph()
        nxg.add_edges_from([(1, 1), (1, 2)])
        g = LabeledGraph.from_networkx(nxg)
        assert g.edge_set() == frozenset({(1, 2)})

    def test_adjacency_matrix(self):
        pytest.importorskip("numpy", exc_type=ImportError)  # the one LabeledGraph view that needs it
        g = LabeledGraph(3, [(1, 3)])
        a = g.adjacency_matrix()
        assert a.shape == (3, 3)
        assert a[0, 2] == 1 and a[2, 0] == 1
        assert a.sum() == 2


class TestEquality:
    def test_eq_and_hash(self):
        g = LabeledGraph(3, [(1, 2)])
        h = LabeledGraph(3, [(1, 2)])
        assert g == h and hash(g) == hash(h)
        h.add_edge(2, 3)
        assert g != h

    def test_eq_other_type(self):
        assert LabeledGraph(1) != "graph"


@given(
    n=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_edge_count_invariant(n, data):
    """Property: m always equals the number of distinct edges inserted minus removed."""
    g = LabeledGraph(n)
    pairs = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
    if not pairs:
        return
    chosen = data.draw(st.lists(st.sampled_from(pairs), max_size=30))
    present = set()
    for u, v in chosen:
        g.add_edge(u, v)
        present.add((u, v))
    assert g.m == len(present)
    assert g.edge_set() == frozenset(present)
    assert sum(g.degrees()) == 2 * g.m
