"""Tests for degeneracy orderings, validated against networkx and by definition."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph, core_numbers, degeneracy, degeneracy_ordering, is_k_degenerate
from repro.graphs.generators import (
    apollonian,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    k_tree,
    path_graph,
    random_k_degenerate,
    random_tree,
    star_graph,
)


def ordering_is_valid(g: LabeledGraph, k: int, order: list[int]) -> bool:
    """Check Definition 2 directly: each vertex has <= k not-yet-removed neighbours."""
    remaining = set(g.vertices())
    for v in order:
        if len(g.neighbors(v) & remaining) - (v in remaining and v in g.neighbors(v)) > k:
            return False
        if len(g.neighbors(v) & remaining - {v}) > k:
            return False
        remaining.discard(v)
    return not remaining


class TestKnownValues:
    def test_empty_and_trivial(self):
        assert degeneracy(LabeledGraph(0)) == 0
        assert degeneracy(LabeledGraph(5)) == 0

    def test_path_and_star_are_1(self):
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(star_graph(10)) == 1

    def test_cycle_is_2(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_tree_is_1(self):
        assert degeneracy(random_tree(40, seed=7)) == 1

    def test_k_tree_is_k(self):
        for k in (1, 2, 3):
            assert degeneracy(k_tree(20, k, seed=k)) == k

    def test_apollonian_is_3(self):
        assert degeneracy(apollonian(30, seed=1)) == 3


class TestOrderingValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = erdos_renyi(25, 0.3, seed=seed)
        k, order = degeneracy_ordering(g)
        assert sorted(order) == list(g.vertices())
        assert ordering_is_valid(g, k, order)
        # minimality: networkx agrees on the value
        assert k == max(nx.core_number(g.to_networkx()).values(), default=0)

    def test_is_k_degenerate(self):
        g = cycle_graph(5)
        assert not is_k_degenerate(g, 1)
        assert is_k_degenerate(g, 2)
        assert is_k_degenerate(g, 3)


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(20, 0.35, seed=seed)
        assert core_numbers(g) == nx.core_number(g.to_networkx())

    def test_empty(self):
        assert core_numbers(LabeledGraph(0)) == {}


@settings(max_examples=40)
@given(
    n=st.integers(min_value=1, max_value=20),
    k=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_k_degenerate_respects_bound(n, k, seed):
    """Property: the constructive generator's output really has degeneracy <= k."""
    g = random_k_degenerate(n, k, seed=seed)
    kk, order = degeneracy_ordering(g)
    assert kk <= k or n <= k  # tiny graphs may not reach k
    assert ordering_is_valid(g, kk, order)


@settings(max_examples=30)
@given(n=st.integers(min_value=2, max_value=14), p=st.floats(min_value=0, max_value=1), seed=st.integers(0, 999))
def test_degeneracy_matches_networkx_core(n, p, seed):
    """Property: degeneracy equals the max core number (classical identity)."""
    g = erdos_renyi(n, p, seed=seed)
    assert degeneracy(g) == max(nx.core_number(g.to_networkx()).values(), default=0)
