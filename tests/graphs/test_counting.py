"""Tests for the Lemma 1 counting module: closed forms vs exhaustive enumeration."""

import math

import pytest

from repro.errors import GraphError
from repro.graphs import is_connected
from repro.graphs.counting import (
    MAX_ENUM_N,
    bipartite_fixed_parts_count,
    connected_graph_count,
    count_graphs_satisfying,
    count_square_free,
    count_triangle_free,
    enumerate_labeled_graphs,
    frugal_capacity_bits,
    labeled_forest_count,
    labeled_graph_count,
    labeled_tree_count,
    zarankiewicz_lower_bound,
)
from repro.graphs.properties import girth, has_square, has_triangle


class TestClosedForms:
    def test_labeled_graph_count(self):
        assert [labeled_graph_count(n) for n in range(5)] == [1, 1, 2, 8, 64]

    def test_connected_graph_count_oeis_a001187(self):
        # 1, 1, 1, 4, 38, 728, 26704, 1866256, ...
        assert [connected_graph_count(n) for n in range(8)] == [
            1, 1, 1, 4, 38, 728, 26704, 1866256,
        ]

    def test_tree_count_cayley(self):
        assert [labeled_tree_count(n) for n in range(1, 7)] == [1, 1, 3, 16, 125, 1296]

    def test_forest_count_oeis_a001858(self):
        # 1, 1, 2, 7, 38, 291, 2932, 36961
        assert [labeled_forest_count(n) for n in range(8)] == [
            1, 1, 2, 7, 38, 291, 2932, 36961,
        ]

    def test_bipartite_fixed_parts(self):
        assert bipartite_fixed_parts_count(4) == 2**4
        assert bipartite_fixed_parts_count(6) == 2**9
        assert bipartite_fixed_parts_count(5) == 2**6  # odd split 2/3

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            connected_graph_count(-1)
        with pytest.raises(GraphError):
            labeled_tree_count(-1)
        with pytest.raises(GraphError):
            labeled_forest_count(-1)


class TestEnumeration:
    def test_enumerate_count(self):
        assert sum(1 for _ in enumerate_labeled_graphs(3)) == 8

    def test_enumerate_guard(self):
        with pytest.raises(GraphError):
            list(enumerate_labeled_graphs(MAX_ENUM_N + 1))

    def test_connected_count_matches_recurrence(self):
        for n in range(1, 6):
            assert count_graphs_satisfying(n, is_connected) == connected_graph_count(n)

    def test_forest_count_matches_enumeration(self):
        for n in range(1, 6):
            forests = count_graphs_satisfying(n, lambda g: girth(g) == math.inf)
            assert forests == labeled_forest_count(n)


class TestVectorizedCounts:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_square_free_matches_bruteforce(self, n):
        expected = count_graphs_satisfying(n, lambda g: not has_square(g))
        assert count_square_free(n) == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_triangle_free_matches_bruteforce(self, n):
        expected = count_graphs_satisfying(n, lambda g: not has_triangle(g))
        assert count_triangle_free(n) == expected

    def test_square_free_n6(self):
        # cross-check the vectorized path on the largest cheap instance
        assert count_square_free(6) == count_graphs_satisfying(6, lambda g: not has_square(g))

    def test_guards(self):
        with pytest.raises(GraphError):
            count_square_free(MAX_ENUM_N + 1)
        with pytest.raises(GraphError):
            count_triangle_free(MAX_ENUM_N + 1)


class TestCapacityBound:
    def test_capacity_formula(self):
        assert frugal_capacity_bits(8, 2.0) == pytest.approx(2.0 * 8 * 3)

    def test_capacity_n1(self):
        assert frugal_capacity_bits(1, 5.0) == 0.0

    def test_capacity_rejects_zero(self):
        with pytest.raises(GraphError):
            frugal_capacity_bits(0, 1.0)

    def test_lemma1_shape_dense_families_exceed_capacity(self):
        """log2 |family| grows strictly faster than n log n for the hard families."""
        n = 512
        cap = frugal_capacity_bits(n, 10.0)  # generous constant
        assert math.log2(labeled_graph_count(n)) > cap
        assert math.log2(bipartite_fixed_parts_count(n)) > cap
        assert zarankiewicz_lower_bound(n) > frugal_capacity_bits(n, 1.0)

    def test_lemma1_shape_sparse_families_within_capacity(self):
        """Reconstructible families stay within O(n log n) bits."""
        for n in (16, 64, 256):
            assert math.log2(labeled_forest_count(n)) <= frugal_capacity_bits(n, 2.0)

    def test_zarankiewicz_monotone(self):
        vals = [zarankiewicz_lower_bound(n) for n in (4, 16, 64, 256)]
        assert vals == sorted(vals)
        assert zarankiewicz_lower_bound(1) == 0.0


class TestPureFallbackParity:
    """The big-int fallback counts exactly what the numpy path counts."""

    def test_bit_columns_match_bit_arrays(self):
        from repro.graphs import counting

        if counting.np is None:
            pytest.skip("numpy not installed; the fallback IS the active path")
        for n in (3, 4, 5):
            pairs_np, bits = counting._pair_bit_arrays(n)
            pairs_py, cols, total = counting._pair_bit_columns(n)
            assert pairs_np == pairs_py and total == bits.shape[0]
            for e, col in enumerate(cols):
                want = sum(int(b) << g for g, b in enumerate(bits[:, e]))
                assert col == want, (n, e)

    def test_counts_identical_with_numpy_disabled(self, monkeypatch):
        from repro.graphs import counting

        if counting.np is None:
            pytest.skip("numpy not installed; the fallback IS the active path")
        want = [(counting.count_square_free(n), counting.count_triangle_free(n))
                for n in (4, 5, 6)]
        monkeypatch.setattr(counting, "np", None)
        got = [(counting.count_square_free(n), counting.count_triangle_free(n))
               for n in (4, 5, 6)]
        assert got == want
