"""Tests for treewidth invariants and the polarity graph (extremal C4-free)."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import LabeledGraph, degeneracy, has_square
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    k_tree,
    partial_k_tree,
    path_graph,
    polarity_graph,
    random_tree,
)
from repro.graphs.invariants import treewidth_exact, treewidth_upper_bound


class TestTreewidthExact:
    def test_known_values(self):
        assert treewidth_exact(LabeledGraph(0)) == 0
        assert treewidth_exact(LabeledGraph(3)) == 0
        assert treewidth_exact(path_graph(6)) == 1
        assert treewidth_exact(random_tree(10, seed=1)) == 1
        assert treewidth_exact(cycle_graph(7)) == 2
        assert treewidth_exact(complete_graph(6)) == 5

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_tree_has_treewidth_k(self, k):
        assert treewidth_exact(k_tree(k + 6, k, seed=k)) == k

    def test_guard(self):
        with pytest.raises(GraphError):
            treewidth_exact(LabeledGraph(20))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 9), p=st.floats(0, 1), seed=st.integers(0, 300))
    def test_degeneracy_at_most_treewidth(self, n, p, seed):
        """The inequality Section III leans on, verified exhaustively-ish."""
        g = erdos_renyi(n, p, seed=seed)
        assert degeneracy(g) <= treewidth_exact(g)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 9), p=st.floats(0.1, 0.9), seed=st.integers(0, 200))
    def test_matches_networkx_heuristic_bound(self, n, p, seed):
        """Exact value never exceeds networkx's min-fill upper bound."""
        g = erdos_renyi(n, p, seed=seed)
        ub, _ = nx.algorithms.approximation.treewidth_min_fill_in(g.to_networkx())
        assert treewidth_exact(g) <= ub


class TestTreewidthUpperBound:
    @pytest.mark.parametrize("heuristic", ["min-degree", "min-fill"])
    def test_is_an_upper_bound(self, heuristic):
        for seed in range(5):
            g = erdos_renyi(9, 0.4, seed=seed)
            assert treewidth_upper_bound(g, heuristic) >= treewidth_exact(g)

    def test_tight_on_k_trees(self):
        g = k_tree(15, 3, seed=4)
        assert treewidth_upper_bound(g, "min-degree") == 3

    def test_partial_k_tree_bounded(self):
        g = partial_k_tree(20, 3, seed=5)
        assert treewidth_upper_bound(g, "min-fill") <= 3

    def test_bad_heuristic(self):
        with pytest.raises(GraphError):
            treewidth_upper_bound(path_graph(3), "magic")


class TestPolarityGraph:
    @pytest.mark.parametrize("q", [2, 3, 5, 7])
    def test_square_free(self, q):
        g = polarity_graph(q)
        assert g.n == q * q + q + 1
        assert not has_square(g)

    @pytest.mark.parametrize("q", [3, 5, 7])
    def test_edge_density_is_half_n_to_three_halves(self, q):
        """ER_q has ~ ½ q(q+1)² ≈ ½ n^{3/2} edges — the extremal density."""
        g = polarity_graph(q)
        assert g.m >= 0.35 * g.n**1.5  # within a constant of ½ n^{3/2}

    def test_rejects_composite(self):
        with pytest.raises(GraphError):
            polarity_graph(4)
        with pytest.raises(GraphError):
            polarity_graph(1)

    def test_degrees_q_or_q_plus_one(self):
        g = polarity_graph(5)
        assert set(g.degrees()) <= {5, 6}

    def test_reconstruction_via_theorem5(self):
        """The extremal square-free graph is itself degeneracy-bounded:
        the paper's protocol reconstructs it in one round."""
        from repro.protocols import DegeneracyReconstructionProtocol

        g = polarity_graph(5)
        k = degeneracy(g)
        assert k <= 6
        assert DegeneracyReconstructionProtocol(k).reconstruct(g) == g

    def test_square_reduction_on_polarity_graph(self):
        """Theorem 1's reduction reconstructs ER_3 from a square detector."""
        from repro.reductions import OracleSquareDetector, SquareReduction

        g = polarity_graph(2)  # 7 vertices
        assert SquareReduction(OracleSquareDetector()).reconstruct(g) == g
