"""Tests for the fixed named instances."""

import math

from repro.graphs import diameter, girth, has_square, has_triangle, is_bipartite, is_connected
from repro.graphs.families import bull, figure1_base, figure2_base, kite, paw, petersen


class TestPetersen:
    def test_structure(self):
        g = petersen()
        assert g.n == 10 and g.m == 15
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert girth(g) == 5
        assert diameter(g) == 2

    def test_square_and_triangle_free(self):
        g = petersen()
        assert not has_square(g) and not has_triangle(g)


class TestFigureBases:
    def test_figure1_base_connected_and_queryable(self):
        g = figure1_base()
        assert g.n == 7 and is_connected(g)
        assert not g.has_edge(1, 7)  # the absent query edge of Figure 1
        assert g.has_edge(1, 2)  # a present edge for the other branch

    def test_figure2_base_bipartite(self):
        g = figure2_base()
        assert g.n == 7 and is_bipartite(g)
        assert g.has_edge(2, 7)  # the present query edge of Figure 2
        assert not g.has_edge(1, 7)
        assert not has_triangle(g)


class TestSmallNamed:
    def test_bull(self):
        g = bull()
        assert g.n == 5 and g.m == 5 and has_triangle(g) and not has_square(g)

    def test_paw(self):
        g = paw()
        assert has_triangle(g) and not has_square(g) and girth(g) == 3

    def test_kite(self):
        g = kite()
        assert has_triangle(g) and has_square(g)
        assert math.isfinite(diameter(g))
